//! Deterministic I/O fault injection and retry machinery for the
//! out-of-core read path.
//!
//! Production kNN serving must survive the storage layer misbehaving: a
//! transient `EIO` from a congested device, an `EINTR`-interrupted
//! positioned read, a short read, a bit flip caught by a record checksum.
//! None of those should fail a query — they should be retried with bounded
//! backoff and, only if the budget runs out or the error is permanent,
//! surface as a typed failure. This module provides both halves:
//!
//! * [`FaultyDataset`] wraps an [`OocDataset`] and
//!   injects faults on a *seeded, reproducible* schedule described by a
//!   [`FaultPlan`], so every failure path can be exercised by deterministic
//!   tests instead of hope;
//! * [`RetryPolicy`] + [`RetryBudget`] classify errors as transient vs.
//!   permanent ([`is_transient`]) and retry transients with bounded
//!   exponential backoff under a per-query budget.
//!
//! The injection schedule is a pure function of `(plan.seed, row,
//! attempt)` where `attempt` counts how many times that row (or row span)
//! has been read. Faults are only injected for the first
//! [`FaultPlan::max_faults_per_read`] attempts of any given row, so a
//! retry loop with at least that many attempts *always* recovers from
//! transient faults — which is what lets the chaos tests assert
//! bit-identical results against the fault-free run.

use crate::dataset::Dataset;
use crate::ooc::{OocDataset, RowSource};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The classes of fault [`FaultyDataset`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A transient `EIO` (raw OS error 5), as a congested or briefly
    /// flaky device would return.
    Eio,
    /// An `EINTR`-interrupted read (raw OS error 4, `ErrorKind::Interrupted`).
    Eintr,
    /// A short read: only part of the requested range arrives.
    ShortRead,
    /// A bit flip in the payload, caught by the (simulated) record
    /// checksum before the corrupt data reaches the caller.
    BitFlip,
    /// Added latency — the read succeeds, just slowly.
    Latency,
}

impl FaultKind {
    /// All injectable fault kinds, in schedule-priority order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Eio,
        FaultKind::Eintr,
        FaultKind::ShortRead,
        FaultKind::BitFlip,
        FaultKind::Latency,
    ];
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultKind::Eio => "eio",
            FaultKind::Eintr => "eintr",
            FaultKind::ShortRead => "short-read",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::Latency => "latency",
        };
        write!(f, "{name}")
    }
}

/// Marker payload carried inside injected (and detected) transient I/O
/// errors, so [`is_transient`] can classify them without string matching.
#[derive(Debug)]
pub struct TransientFault {
    /// Which fault class produced this error.
    pub kind: FaultKind,
}

impl std::fmt::Display for TransientFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FaultKind::ShortRead => write!(f, "short read (injected)"),
            FaultKind::BitFlip => write!(f, "record checksum mismatch (injected bit flip)"),
            kind => write!(f, "injected transient fault: {kind}"),
        }
    }
}

impl std::error::Error for TransientFault {}

/// Classifies an I/O error as transient (worth retrying) or permanent.
///
/// Transient: `Interrupted` (EINTR), `TimedOut`, `WouldBlock`, a raw
/// `EIO` (OS error 5), and any error whose payload is a
/// [`TransientFault`] (covers injected short reads and
/// checksum-detected bit flips — a re-read fetches clean bytes).
/// Everything else — `NotFound`, `PermissionDenied`, genuine
/// `InvalidData` from a malformed record — is permanent.
pub fn is_transient(e: &io::Error) -> bool {
    if matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    ) {
        return true;
    }
    if e.raw_os_error() == Some(5) {
        return true; // EIO: device-level hiccup, worth a bounded retry.
    }
    e.get_ref().is_some_and(|inner| inner.is::<TransientFault>())
}

/// A seeded, per-class fault schedule for [`FaultyDataset`].
///
/// Rates are probabilities in `[0, 1]` evaluated independently per read
/// attempt (first match in [`FaultKind::ALL`] order wins, so the sum may
/// exceed 1 without panicking — later classes just starve).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the deterministic schedule.
    pub seed: u64,
    /// Probability of a transient `EIO` per read attempt.
    pub eio: f64,
    /// Probability of an `EINTR` per read attempt.
    pub eintr: f64,
    /// Probability of a short read per read attempt.
    pub short_read: f64,
    /// Probability of a checksum-detected bit flip per read attempt.
    pub bit_flip: f64,
    /// Probability of added latency per read attempt.
    pub latency: f64,
    /// How long an injected latency fault sleeps.
    pub latency_dur: Duration,
    /// Faults are only injected for this many attempts of any given row:
    /// attempt `max_faults_per_read` and later always succeed, so a retry
    /// loop with at least this many retries is guaranteed to recover.
    pub max_faults_per_read: u32,
    /// Rows whose reads *always* fail with a permanent (non-retryable)
    /// error — for exercising the permanent-failure path.
    pub permanent_rows: Vec<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for builders).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            eio: 0.0,
            eintr: 0.0,
            short_read: 0.0,
            bit_flip: 0.0,
            latency: 0.0,
            latency_dur: Duration::from_micros(50),
            max_faults_per_read: 2,
            permanent_rows: Vec::new(),
        }
    }

    /// A plan injecting every transient class at `rate` each.
    pub fn transient_mix(seed: u64, rate: f64) -> Self {
        Self { eio: rate, eintr: rate, short_read: rate, bit_flip: rate, ..Self::none(seed) }
    }

    /// Builder-style rate for one fault class.
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        match kind {
            FaultKind::Eio => self.eio = rate,
            FaultKind::Eintr => self.eintr = rate,
            FaultKind::ShortRead => self.short_read = rate,
            FaultKind::BitFlip => self.bit_flip = rate,
            FaultKind::Latency => self.latency = rate,
        }
        self
    }

    /// Builder-style permanent-failure rows.
    pub fn with_permanent_rows(mut self, rows: Vec<usize>) -> Self {
        self.permanent_rows = rows;
        self
    }

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::Eio => self.eio,
            FaultKind::Eintr => self.eintr,
            FaultKind::ShortRead => self.short_read,
            FaultKind::BitFlip => self.bit_flip,
            FaultKind::Latency => self.latency,
        }
    }

    /// Decides the fault class (if any) that fires for `event` at attempt
    /// `attempt` — the same deterministic `(seed, event, attempt)` draw
    /// [`FaultyDataset`] uses for row reads, exposed so non-storage layers
    /// share one schedule format (the TCP front end injects per-request
    /// latency through this in its hedging tests). First matching class in
    /// [`FaultKind::ALL`] order wins; attempts at or past
    /// [`FaultPlan::max_faults_per_read`] never fault.
    pub fn decide(&self, event: u64, attempt: u32) -> Option<FaultKind> {
        if attempt >= self.max_faults_per_read {
            return None;
        }
        for (salt, &kind) in FaultKind::ALL.iter().enumerate() {
            let rate = self.rate(kind);
            if rate > 0.0 && draw(self.seed, event, attempt, salt as u64) < rate {
                return Some(kind);
            }
        }
        None
    }
}

/// Counters for every fault [`FaultyDataset`] injected, by class.
#[derive(Debug, Default)]
pub struct FaultStats {
    eio: AtomicU64,
    eintr: AtomicU64,
    short_read: AtomicU64,
    bit_flip: AtomicU64,
    latency: AtomicU64,
    permanent: AtomicU64,
}

impl FaultStats {
    fn count(&self, kind: FaultKind) {
        let counter = match kind {
            FaultKind::Eio => &self.eio,
            FaultKind::Eintr => &self.eintr,
            FaultKind::ShortRead => &self.short_read,
            FaultKind::BitFlip => &self.bit_flip,
            FaultKind::Latency => &self.latency,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Injected faults of `kind` so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        let counter = match kind {
            FaultKind::Eio => &self.eio,
            FaultKind::Eintr => &self.eintr,
            FaultKind::ShortRead => &self.short_read,
            FaultKind::BitFlip => &self.bit_flip,
            FaultKind::Latency => &self.latency,
        };
        counter.load(Ordering::Relaxed)
    }

    /// Injected permanent failures so far.
    pub fn permanent(&self) -> u64 {
        self.permanent.load(Ordering::Relaxed)
    }

    /// Total injected faults across every class (transient + permanent).
    pub fn total(&self) -> u64 {
        FaultKind::ALL.iter().map(|&k| self.injected(k)).sum::<u64>() + self.permanent()
    }
}

/// splitmix64 — tiny, seedable, and good enough for a fault schedule.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` from a hash of `(seed, row, attempt, salt)`.
fn draw(seed: u64, row: u64, attempt: u32, salt: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(row ^ splitmix64(attempt as u64 ^ salt)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A fault-injecting view over an [`OocDataset`]: implements
/// [`RowSource`], so an out-of-core index built over it sees the same
/// rows as the clean dataset — interleaved with scheduled faults.
///
/// Thread-safe: per-row attempt counters live behind a mutex (poison-
/// recovering, so a panicking reader thread cannot brick injection).
#[derive(Debug)]
pub struct FaultyDataset<'a> {
    inner: &'a OocDataset,
    plan: FaultPlan,
    stats: FaultStats,
    /// Attempt counter per starting row, shared by row and span reads.
    attempts: Mutex<HashMap<u64, u32>>,
}

impl<'a> FaultyDataset<'a> {
    /// Wraps `inner` with the fault schedule in `plan`.
    pub fn new(inner: &'a OocDataset, plan: FaultPlan) -> Self {
        Self { inner, plan, stats: FaultStats::default(), attempts: Mutex::new(HashMap::new()) }
    }

    /// The injected-fault counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The clean dataset underneath.
    pub fn inner(&self) -> &'a OocDataset {
        self.inner
    }

    /// Decides the fault (if any) for this read attempt of `row`, and
    /// advances the row's attempt counter.
    fn decide(&self, row: u64) -> Option<FaultKind> {
        if self.plan.permanent_rows.contains(&(row as usize)) {
            self.stats.permanent.fetch_add(1, Ordering::Relaxed);
            return None; // caller checks permanent_rows itself; counted here
        }
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
            let slot = attempts.entry(row).or_insert(0);
            let a = *slot;
            *slot += 1;
            a
        };
        let fired = self.plan.decide(row, attempt);
        if let Some(kind) = fired {
            self.stats.count(kind);
        }
        fired
    }

    /// Applies an injected fault to a read that has already filled `buf`
    /// with clean bytes. Returns `Ok(())` when the read should proceed.
    fn apply(&self, kind: FaultKind, buf: &mut [f32]) -> io::Result<()> {
        match kind {
            FaultKind::Eio => Err(io::Error::from_raw_os_error(5)),
            FaultKind::Eintr => Err(io::Error::from_raw_os_error(4)),
            FaultKind::ShortRead => {
                // Only part of the payload arrived; poison the tail so a
                // caller ignoring the error cannot silently use it.
                let keep = buf.len() / 2;
                for v in &mut buf[keep..] {
                    *v = f32::NAN;
                }
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    TransientFault { kind: FaultKind::ShortRead },
                ))
            }
            FaultKind::BitFlip => {
                // Flip a real bit, detect it with the record checksum a
                // production storage layer would carry, reject the read.
                let before = checksum(buf);
                if let Some(v) = buf.first_mut() {
                    *v = f32::from_bits(v.to_bits() ^ 1);
                }
                debug_assert_ne!(before, checksum(buf), "bit flip must change the checksum");
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    TransientFault { kind: FaultKind::BitFlip },
                ))
            }
            FaultKind::Latency => {
                std::thread::sleep(self.plan.latency_dur);
                Ok(())
            }
        }
    }

    fn permanent_error(&self, row: usize) -> io::Error {
        io::Error::other(format!("injected permanent fault on row {row}"))
    }

    /// Whether the span `[start, start+rows)` contains a permanent row.
    fn permanent_in_span(&self, start: usize, rows: usize) -> Option<usize> {
        self.plan.permanent_rows.iter().copied().find(|&r| r >= start && r < start + rows)
    }
}

/// FNV-1a over the raw bytes — stands in for the record checksum a
/// production storage layer would maintain.
fn checksum(vs: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in vs {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl RowSource for FaultyDataset<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn read_row_into(&self, i: usize, buf: &mut [f32]) -> io::Result<()> {
        if self.plan.permanent_rows.contains(&i) {
            self.stats.permanent.fetch_add(1, Ordering::Relaxed);
            return Err(self.permanent_error(i));
        }
        let fault = self.decide(i as u64);
        self.inner.read_row_into(i, buf)?;
        match fault {
            Some(kind) => self.apply(kind, buf),
            None => Ok(()),
        }
    }

    fn read_rows_into(&self, start: usize, rows: usize, out: &mut [f32]) -> io::Result<()> {
        if let Some(row) = self.permanent_in_span(start, rows) {
            self.stats.permanent.fetch_add(1, Ordering::Relaxed);
            return Err(self.permanent_error(row));
        }
        let fault = self.decide(start as u64);
        self.inner.read_rows_into(start, rows, out)?;
        match fault {
            Some(kind) => self.apply(kind, out),
            None => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// Retry machinery.
// ---------------------------------------------------------------------------

/// Bounded-exponential-backoff retry policy for transient I/O errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per individual read (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Retry budget shared by all reads of one query — bounds the extra
    /// latency a single degraded query can accumulate.
    pub budget_per_query: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            budget_per_query: 256,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — every error propagates immediately.
    pub fn no_retries() -> Self {
        Self { max_attempts: 1, budget_per_query: 0, ..Self::default() }
    }

    /// A fresh per-query budget for this policy.
    pub fn budget(&self) -> RetryBudget {
        RetryBudget { remaining: self.budget_per_query }
    }

    /// Runs `op`, retrying transient errors ([`is_transient`]) with
    /// bounded exponential backoff while both the per-read attempt limit
    /// and the per-query `budget` allow. Permanent errors propagate
    /// immediately; a transient error that exhausts the attempts or the
    /// budget propagates as-is. Every retry is counted into `stats`.
    pub fn run<T>(
        &self,
        budget: &mut RetryBudget,
        stats: &RetryStats,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let mut backoff = self.base_backoff;
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => {
                    if attempt > 0 {
                        stats.recovered.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(v);
                }
                Err(e) => {
                    attempt += 1;
                    if !is_transient(&e) {
                        stats.permanent_failures.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                    if attempt >= self.max_attempts.max(1) || !budget.consume() {
                        stats.exhausted.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                    stats.retries.fetch_add(1, Ordering::Relaxed);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(self.max_backoff);
                    }
                }
            }
        }
    }
}

/// Per-query retry budget (see [`RetryPolicy::budget_per_query`]).
#[derive(Debug)]
pub struct RetryBudget {
    remaining: u32,
}

impl RetryBudget {
    /// Takes one retry from the budget; `false` when it is spent.
    fn consume(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        true
    }

    /// Retries still available to this query.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }
}

/// Shared counters for retry activity, exported by whatever owns the
/// retrying read path (e.g. the out-of-core index).
#[derive(Debug, Default)]
pub struct RetryStats {
    /// Transient errors retried.
    pub retries: AtomicU64,
    /// Reads that succeeded after at least one retry.
    pub recovered: AtomicU64,
    /// Transient errors surfaced because attempts or budget ran out.
    pub exhausted: AtomicU64,
    /// Permanent errors surfaced without retrying.
    pub permanent_failures: AtomicU64,
}

impl RetryStats {
    /// A plain-number snapshot `(retries, recovered, exhausted, permanent)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.retries.load(Ordering::Relaxed),
            self.recovered.load(Ordering::Relaxed),
            self.exhausted.load(Ordering::Relaxed),
            self.permanent_failures.load(Ordering::Relaxed),
        )
    }
}

/// Reads the whole source into an in-memory [`Dataset`] with retries —
/// a convenience for tests comparing faulty and clean reads.
pub fn materialize_with_retries<S: RowSource>(
    source: &S,
    policy: &RetryPolicy,
) -> io::Result<Dataset> {
    let stats = RetryStats::default();
    let mut budget = policy.budget();
    let mut out = Dataset::with_capacity(source.dim(), source.len());
    let mut buf = vec![0.0f32; source.dim()];
    for i in 0..source.len() {
        policy.run(&mut budget, &stats, || source.read_row_into(i, &mut buf))?;
        out.push(&buf);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::write_fvecs;
    use crate::synth;

    fn on_disk(name: &str, dim: usize, n: usize) -> (std::path::PathBuf, Dataset) {
        let ds = synth::gaussian(dim, n, 1.0, 7);
        let dir = std::env::temp_dir().join("vecstore_fault_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        write_fvecs(&path, &ds).unwrap();
        (path, ds)
    }

    #[test]
    fn clean_plan_reads_identically() {
        let (path, ds) = on_disk("clean.fvecs", 6, 50);
        let ooc = OocDataset::open(&path).unwrap();
        let faulty = FaultyDataset::new(&ooc, FaultPlan::none(1));
        let got = materialize_with_retries(&faulty, &RetryPolicy::no_retries()).unwrap();
        assert_eq!(got, ds);
        assert_eq!(faulty.stats().total(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_faults_recover_under_retries() {
        let (path, ds) = on_disk("transient.fvecs", 5, 80);
        let ooc = OocDataset::open(&path).unwrap();
        // Aggressive mix: ~40% of first-attempt reads fault somehow.
        let faulty = FaultyDataset::new(&ooc, FaultPlan::transient_mix(99, 0.1));
        let got = materialize_with_retries(&faulty, &RetryPolicy::default()).unwrap();
        assert_eq!(got, ds, "transient faults must never change results");
        assert!(faulty.stats().total() > 0, "a 10% x 4-class plan on 80 rows must fire");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn faults_stop_after_max_attempts() {
        let (path, _) = on_disk("maxattempts.fvecs", 4, 20);
        let ooc = OocDataset::open(&path).unwrap();
        let mut plan = FaultPlan::none(3).with_rate(FaultKind::Eio, 1.0);
        plan.max_faults_per_read = 2;
        let faulty = FaultyDataset::new(&ooc, plan);
        let mut buf = vec![0.0f32; 4];
        // Certain fault: attempts 0 and 1 fail, attempt 2 succeeds.
        assert!(faulty.read_row_into(0, &mut buf).is_err());
        assert!(faulty.read_row_into(0, &mut buf).is_err());
        assert!(faulty.read_row_into(0, &mut buf).is_ok());
        assert_eq!(faulty.stats().injected(FaultKind::Eio), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn permanent_rows_fail_without_retry() {
        let (path, _) = on_disk("permanent.fvecs", 4, 20);
        let ooc = OocDataset::open(&path).unwrap();
        let faulty = FaultyDataset::new(&ooc, FaultPlan::none(5).with_permanent_rows(vec![3]));
        let mut buf = vec![0.0f32; 4];
        let err = faulty.read_row_into(3, &mut buf).unwrap_err();
        assert!(!is_transient(&err));
        // The retry loop must not mask it either.
        let stats = RetryStats::default();
        let policy = RetryPolicy::default();
        let mut budget = policy.budget();
        let err =
            policy.run(&mut budget, &stats, || faulty.read_row_into(3, &mut buf)).unwrap_err();
        assert!(!is_transient(&err));
        assert_eq!(stats.snapshot().3, 1, "one permanent failure recorded");
        assert_eq!(budget.remaining(), policy.budget_per_query, "no budget spent");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn classification_covers_all_kinds() {
        assert!(is_transient(&io::Error::from_raw_os_error(5))); // EIO
        assert!(is_transient(&io::Error::from_raw_os_error(4))); // EINTR
        assert!(is_transient(&io::Error::new(
            io::ErrorKind::UnexpectedEof,
            TransientFault { kind: FaultKind::ShortRead }
        )));
        assert!(is_transient(&io::Error::new(
            io::ErrorKind::InvalidData,
            TransientFault { kind: FaultKind::BitFlip }
        )));
        assert!(!is_transient(&io::Error::new(io::ErrorKind::InvalidData, "bad record")));
        assert!(!is_transient(&io::Error::new(io::ErrorKind::NotFound, "gone")));
    }

    #[test]
    fn budget_exhaustion_surfaces_the_error() {
        let (path, _) = on_disk("budget.fvecs", 4, 10);
        let ooc = OocDataset::open(&path).unwrap();
        let mut plan = FaultPlan::none(11).with_rate(FaultKind::Eio, 1.0);
        plan.max_faults_per_read = u32::MAX; // never stop faulting
        let faulty = FaultyDataset::new(&ooc, plan);
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            budget_per_query: 3,
        };
        let stats = RetryStats::default();
        let mut budget = policy.budget();
        let mut buf = vec![0.0f32; 4];
        let err =
            policy.run(&mut budget, &stats, || faulty.read_row_into(0, &mut buf)).unwrap_err();
        assert!(is_transient(&err), "budget exhaustion surfaces the transient error itself");
        assert_eq!(budget.remaining(), 0);
        assert_eq!(stats.snapshot().0, 3, "exactly budget_per_query retries happened");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn latency_fault_does_not_error() {
        let (path, ds) = on_disk("latency.fvecs", 4, 10);
        let ooc = OocDataset::open(&path).unwrap();
        let mut plan = FaultPlan::none(13).with_rate(FaultKind::Latency, 1.0);
        plan.latency_dur = Duration::from_micros(10);
        let faulty = FaultyDataset::new(&ooc, plan);
        let mut buf = vec![0.0f32; 4];
        faulty.read_row_into(2, &mut buf).unwrap();
        assert_eq!(&buf[..], ds.row(2));
        assert!(faulty.stats().injected(FaultKind::Latency) >= 1);
        std::fs::remove_file(&path).ok();
    }
}
