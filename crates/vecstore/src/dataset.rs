//! Contiguous row-major storage for fixed-dimension `f32` vectors.

use serde::{Deserialize, Serialize};

/// A dense collection of `D`-dimensional `f32` vectors stored row-major in a
/// single contiguous allocation.
///
/// Row-major flat storage keeps sequential scans (the short-list search hot
/// loop) cache friendly and lets every consumer borrow rows as `&[f32]`
/// without per-row allocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    data: Vec<f32>,
}

impl Dataset {
    /// Creates an empty dataset of the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dataset dimension must be positive");
        Self { dim, data: Vec::new() }
    }

    /// Creates an empty dataset with capacity reserved for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dataset dimension must be positive");
        Self { dim, data: Vec::with_capacity(dim * n) }
    }

    /// Builds a dataset from an iterator of rows.
    ///
    /// # Panics
    ///
    /// Panics if rows disagree on length or the input is empty.
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R]) -> Self {
        assert!(!rows.is_empty(), "cannot infer dimension from empty input");
        let dim = rows[0].as_ref().len();
        let mut ds = Self::with_capacity(dim, rows.len());
        for r in rows {
            ds.push(r.as_ref());
        }
        ds
    }

    /// Wraps an existing flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dataset dimension must be positive");
        assert_eq!(data.len() % dim, 0, "flat buffer length must be a multiple of dim");
        Self { dim, data }
    }

    /// Appends one vector.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    pub fn push(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        self.data.extend_from_slice(row);
    }

    /// Vector dimensionality `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the dataset holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Mutably borrows row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let start = i * self.dim;
        &mut self.data[start..start + self.dim]
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Iterates over rows in index order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Copies the rows selected by `ids` (in order) into a new dataset.
    ///
    /// Used to materialize RP-tree leaf clusters.
    pub fn gather(&self, ids: &[usize]) -> Self {
        let mut out = Self::with_capacity(self.dim, ids.len());
        for &i in ids {
            out.push(self.row(i));
        }
        out
    }

    /// Splits the dataset into a `(head, tail)` pair at row `n`.
    ///
    /// Handy for carving a query set off the end of a generated corpus.
    pub fn split_at(&self, n: usize) -> (Self, Self) {
        assert!(n <= self.len(), "split index out of range");
        let at = n * self.dim;
        (
            Self { dim: self.dim, data: self.data[..at].to_vec() },
            Self { dim: self.dim, data: self.data[at..].to_vec() },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access_roundtrip() {
        let mut ds = Dataset::new(3);
        ds.push(&[1.0, 2.0, 3.0]);
        ds.push(&[4.0, 5.0, 6.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_rows_infers_dim() {
        let ds = Dataset::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row dimension mismatch")]
    fn push_wrong_dim_panics() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn from_flat_bad_length_panics() {
        let _ = Dataset::from_flat(3, vec![1.0; 7]);
    }

    #[test]
    fn gather_selects_rows_in_order() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let g = ds.gather(&[3, 1]);
        assert_eq!(g.row(0), &[3.0]);
        assert_eq!(g.row(1), &[1.0]);
    }

    #[test]
    fn split_at_partitions_rows() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let (a, b) = ds.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(1), &[2.0]);
    }

    #[test]
    fn iter_matches_rows() {
        let ds = Dataset::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let rows: Vec<&[f32]> = ds.iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], ds.row(1));
    }

    #[test]
    fn row_mut_writes_through() {
        let mut ds = Dataset::from_rows(&[vec![1.0, 2.0]]);
        ds.row_mut(0)[1] = 9.0;
        assert_eq!(ds.row(0), &[1.0, 9.0]);
    }
}
