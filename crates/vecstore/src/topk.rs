//! Bounded top-k accumulators.
//!
//! The paper's short-list search keeps the k best candidates seen so far in a
//! size-k max-heap (Section V-B). [`TopK`] is that structure; it is also used
//! by the exact brute-force oracle. [`select_k_smallest`] is the
//! quickselect-based `O(n + k)` alternative referenced via Knuth in
//! Section II-A, used by the batched work-queue engine.

use crate::exact::Neighbor;
use std::collections::BinaryHeap;

/// A max-heap holding the `k` smallest-distance [`Neighbor`]s pushed so far.
///
/// Pushing is `O(log k)`; the heap root is the current worst kept candidate,
/// so a new candidate farther than the root is rejected in `O(1)`.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates an accumulator for the `k` nearest candidates.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers a candidate; keeps it only if it is among the best `k` so far.
    #[inline]
    pub fn push(&mut self, id: usize, dist: f32) {
        if self.heap.len() < self.k {
            self.heap.push(Neighbor { id, dist });
        } else if let Some(worst) = self.heap.peek() {
            // Strict ordering including the id tiebreak keeps results
            // deterministic regardless of candidate arrival order.
            if (Neighbor { id, dist }) < *worst {
                let mut root = self.heap.peek_mut().expect("non-empty");
                *root = Neighbor { id, dist };
            }
        }
    }

    /// The current worst kept distance, or `f32::INFINITY` while fewer than
    /// `k` candidates have been kept.
    ///
    /// Useful as a pruning bound: candidates at or beyond this distance
    /// cannot enter the result.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map_or(f32::INFINITY, |n| n.dist)
        }
    }

    /// Number of candidates currently kept (`<= k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been kept yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the accumulator, returning kept neighbors sorted by ascending
    /// distance (ties broken by ascending id, per [`Neighbor`]'s ordering).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

/// Returns the `k` smallest elements of `items` sorted ascending, using
/// quickselect for an expected `O(n + k log k)` cost.
///
/// If `items.len() <= k` the whole input is returned sorted.
pub fn select_k_smallest(mut items: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    if items.len() > k {
        // select_nth_unstable partitions so that elements [0, k) are the k
        // smallest (in arbitrary order) — expected linear time.
        items.select_nth_unstable_by(k, |a, b| a.cmp(b));
        items.truncate(k);
    }
    items.sort_unstable();
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: usize, dist: f32) -> Neighbor {
        Neighbor { id, dist }
    }

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(2);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 3.0), (3, 0.5)] {
            t.push(id, d);
        }
        let out = t.into_sorted();
        assert_eq!(out, vec![n(3, 0.5), n(1, 1.0)]);
    }

    #[test]
    fn threshold_is_infinite_until_full() {
        let mut t = TopK::new(3);
        t.push(0, 1.0);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(1, 2.0);
        t.push(2, 3.0);
        assert_eq!(t.threshold(), 3.0);
        t.push(3, 0.1);
        assert_eq!(t.threshold(), 2.0);
    }

    #[test]
    fn rejects_worse_than_threshold() {
        let mut t = TopK::new(1);
        t.push(0, 1.0);
        t.push(1, 2.0);
        let out = t.into_sorted();
        assert_eq!(out, vec![n(0, 1.0)]);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut t = TopK::new(10);
        t.push(7, 2.0);
        t.push(3, 1.0);
        let out = t.into_sorted();
        assert_eq!(out, vec![n(3, 1.0), n(7, 2.0)]);
    }

    #[test]
    fn ties_break_by_id() {
        let mut t = TopK::new(2);
        t.push(9, 1.0);
        t.push(4, 1.0);
        t.push(6, 1.0);
        let out = t.into_sorted();
        assert_eq!(out, vec![n(4, 1.0), n(6, 1.0)]);
    }

    #[test]
    fn select_k_smallest_matches_sort() {
        let items: Vec<Neighbor> =
            [(0, 4.0), (1, 2.0), (2, 9.0), (3, 1.0), (4, 7.0)].map(|(i, d)| n(i, d)).to_vec();
        let got = select_k_smallest(items.clone(), 3);
        let mut want = items;
        want.sort_unstable();
        want.truncate(3);
        assert_eq!(got, want);
    }

    #[test]
    fn select_k_smallest_short_input() {
        let items = vec![n(1, 2.0), n(0, 1.0)];
        let got = select_k_smallest(items, 5);
        assert_eq!(got, vec![n(0, 1.0), n(1, 2.0)]);
    }
}
