//! Synthetic high-dimensional feature generators.
//!
//! The paper evaluates on GIST descriptors of two image corpora (LabelMe,
//! Tiny Images). Those corpora are not redistributable here, so the harness
//! substitutes [`ClusteredSpec`]: a mixture of anisotropic Gaussian clusters
//! whose samples live on a low-dimensional latent manifold embedded into the
//! ambient space by a random linear map, plus isotropic noise. This
//! reproduces the three properties every experiment in the paper exercises —
//! high ambient dimension, low *intrinsic* dimension, and multi-modal,
//! non-uniformly dense cluster structure (Section IV-A3).

use crate::dataset::Dataset;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for the clustered-manifold generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusteredSpec {
    /// Ambient dimension `D` (512 for LabelMe GIST, 384 for Tiny Images).
    pub dim: usize,
    /// Latent (intrinsic) dimension `d << D`.
    pub intrinsic_dim: usize,
    /// Number of mixture components.
    pub clusters: usize,
    /// Total number of vectors to generate.
    pub n: usize,
    /// Spread of cluster centers in latent space.
    pub center_spread: f32,
    /// Base within-cluster standard deviation (scaled per cluster by a
    /// log-uniform factor in `[1/aspect, aspect]` per latent axis to create
    /// the anisotropy / aspect-ratio variation that motivates RP-trees).
    pub within_std: f32,
    /// Maximum per-axis anisotropy factor (`>= 1`).
    pub aspect: f32,
    /// Ambient isotropic noise standard deviation.
    pub noise_std: f32,
    /// Dirichlet-ish skew of cluster sizes: 0 = equal sizes, larger values
    /// make sizes increasingly unequal (non-uniform density).
    pub size_skew: f32,
    /// Per-cluster density heterogeneity (`>= 1`): each cluster's overall
    /// scale is multiplied by a log-uniform factor in
    /// `[1/scale_skew, scale_skew]`. This is the "non-uniform distribution
    /// of data items" of Section I — dense and diffuse clusters coexisting,
    /// so no single bucket width fits all (the paper's Figure 2 argument).
    pub scale_skew: f32,
}

impl ClusteredSpec {
    /// A small default mimicking GIST-like structure, sized for unit tests.
    pub fn small(n: usize) -> Self {
        Self {
            dim: 32,
            intrinsic_dim: 6,
            clusters: 8,
            n,
            center_spread: 10.0,
            within_std: 1.0,
            aspect: 3.0,
            noise_std: 0.05,
            size_skew: 1.0,
            scale_skew: 2.0,
        }
    }

    /// A second benchmark profile mirroring the *Tiny Images* corpus
    /// structure the paper also evaluates on: lower ambient dimension
    /// (384-dim GIST, scaled), many more categories, heavier size skew.
    pub fn benchmark_tiny(dim: usize, n: usize) -> Self {
        Self {
            dim,
            intrinsic_dim: 10,
            clusters: 32,
            n,
            center_spread: 24.0,
            within_std: 1.0,
            aspect: 3.0,
            noise_std: 0.08,
            size_skew: 2.5,
            scale_skew: 3.0,
        }
    }

    /// The benchmark-scale default used by the figure harnesses
    /// (a scaled-down stand-in for 512-dim LabelMe GIST).
    ///
    /// Clusters are well separated (`center_spread ≫ within_std · aspect`),
    /// mirroring the category structure of image-descriptor corpora that the
    /// paper's level-1 partitioning is designed to exploit ("used to compute
    /// well-separated clusters", Section I).
    pub fn benchmark(dim: usize, n: usize) -> Self {
        Self {
            dim,
            intrinsic_dim: 12,
            clusters: 16,
            n,
            center_spread: 30.0,
            within_std: 1.0,
            aspect: 3.0,
            noise_std: 0.05,
            size_skew: 1.5,
            scale_skew: 3.0,
        }
    }
}

/// Standard-normal sample via Box–Muller (avoids a rand_distr dependency).
#[inline]
fn std_normal<R: Rng>(rng: &mut R) -> f32 {
    // Draw in (0, 1] so ln is finite.
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// A `Distribution`-style handle for standard normals, for callers that want
/// to sample projection vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdNormal;

impl Distribution<f32> for StdNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let u1: f32 = 1.0 - rng.gen::<f32>();
        let u2: f32 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }
}

/// Generates a clustered-manifold dataset together with the ground-truth
/// cluster label of each row (labels are useful for partitioner tests).
pub fn clustered_with_labels(spec: &ClusteredSpec, seed: u64) -> (Dataset, Vec<usize>) {
    assert!(spec.intrinsic_dim <= spec.dim, "intrinsic dim must not exceed ambient dim");
    assert!(spec.clusters > 0 && spec.n > 0, "need at least one cluster and one point");
    assert!(spec.aspect >= 1.0, "aspect must be >= 1");
    assert!(spec.scale_skew >= 1.0, "scale_skew must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let d = spec.intrinsic_dim;
    let dim = spec.dim;

    // Shared random embedding: latent R^d -> ambient R^D, columns ~ N(0, 1/d)
    // so embedded scales stay comparable to latent scales.
    let embed: Vec<f32> = (0..dim * d).map(|_| std_normal(&mut rng) / (d as f32).sqrt()).collect();

    // Cluster centers and per-axis scales.
    let centers: Vec<Vec<f32>> = (0..spec.clusters)
        .map(|_| (0..d).map(|_| std_normal(&mut rng) * spec.center_spread).collect())
        .collect();
    let scales: Vec<Vec<f32>> = (0..spec.clusters)
        .map(|_| {
            // Whole-cluster density factor times per-axis anisotropy.
            let log_s = spec.scale_skew.ln();
            let cluster_scale = (rng.gen_range(-log_s..=log_s)).exp() * spec.within_std;
            (0..d)
                .map(|_| {
                    let log_a = spec.aspect.max(1.0).ln();
                    (rng.gen_range(-log_a..=log_a)).exp() * cluster_scale
                })
                .collect()
        })
        .collect();

    // Unequal cluster weights: w_i proportional to exp(skew * u_i).
    let raw: Vec<f32> =
        (0..spec.clusters).map(|_| (spec.size_skew * rng.gen::<f32>()).exp()).collect();
    let total: f32 = raw.iter().sum();
    let weights: Vec<f32> = raw.iter().map(|w| w / total).collect();
    // Cumulative distribution for label sampling.
    let mut cdf = Vec::with_capacity(spec.clusters);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }

    let mut data = Dataset::with_capacity(dim, spec.n);
    let mut labels = Vec::with_capacity(spec.n);
    let mut latent = vec![0.0f32; d];
    let mut ambient = vec![0.0f32; dim];
    for _ in 0..spec.n {
        let u: f32 = rng.gen();
        let c = cdf.iter().position(|&p| u <= p).unwrap_or(spec.clusters - 1);
        for j in 0..d {
            latent[j] = centers[c][j] + std_normal(&mut rng) * scales[c][j];
        }
        for (i, out) in ambient.iter_mut().enumerate() {
            let mut s = 0.0;
            for (j, &l) in latent.iter().enumerate() {
                s += embed[i * d + j] * l;
            }
            *out = s + std_normal(&mut rng) * spec.noise_std;
        }
        data.push(&ambient);
        labels.push(c);
    }
    (data, labels)
}

/// Generates a clustered-manifold dataset (labels discarded).
pub fn clustered(spec: &ClusteredSpec, seed: u64) -> Dataset {
    clustered_with_labels(spec, seed).0
}

/// `n` vectors uniform in the hypercube `[lo, hi]^dim`.
pub fn uniform(dim: usize, n: usize, lo: f32, hi: f32, seed: u64) -> Dataset {
    assert!(lo < hi, "empty range");
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..dim * n).map(|_| rng.gen_range(lo..hi)).collect();
    Dataset::from_flat(dim, data)
}

/// `n` vectors from an isotropic Gaussian `N(0, std^2 I)`.
pub fn gaussian(dim: usize, n: usize, std: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..dim * n).map(|_| std_normal(&mut rng) * std).collect();
    Dataset::from_flat(dim, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::squared_l2;

    #[test]
    fn clustered_shapes_match_spec() {
        let spec = ClusteredSpec::small(100);
        let (ds, labels) = clustered_with_labels(&spec, 1);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.dim(), 32);
        assert_eq!(labels.len(), 100);
        assert!(labels.iter().all(|&l| l < spec.clusters));
    }

    #[test]
    fn clustered_is_deterministic_per_seed() {
        let spec = ClusteredSpec::small(50);
        assert_eq!(clustered(&spec, 7), clustered(&spec, 7));
        assert_ne!(clustered(&spec, 7), clustered(&spec, 8));
    }

    #[test]
    fn same_cluster_is_closer_than_different_on_average() {
        let spec = ClusteredSpec::small(300);
        let (ds, labels) = clustered_with_labels(&spec, 3);
        let mut same = (0.0f64, 0u64);
        let mut diff = (0.0f64, 0u64);
        for i in (0..ds.len()).step_by(7) {
            for j in (i + 1..ds.len()).step_by(11) {
                let d = squared_l2(ds.row(i), ds.row(j)) as f64;
                if labels[i] == labels[j] {
                    same = (same.0 + d, same.1 + 1);
                } else {
                    diff = (diff.0 + d, diff.1 + 1);
                }
            }
        }
        assert!(same.1 > 0 && diff.1 > 0);
        assert!(same.0 / (same.1 as f64) < diff.0 / (diff.1 as f64));
    }

    #[test]
    fn uniform_respects_bounds() {
        let ds = uniform(4, 200, -2.0, 3.0, 9);
        assert!(ds.as_flat().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn gaussian_has_roughly_zero_mean() {
        let ds = gaussian(2, 5000, 1.0, 11);
        let mean: f32 = ds.as_flat().iter().sum::<f32>() / ds.as_flat().len() as f32;
        assert!(mean.abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn std_normal_distribution_has_unit_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f32> = (0..20000).map(|_| StdNormal.sample(&mut rng)).collect();
        let mean: f32 = xs.iter().sum::<f32>() / xs.len() as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    #[should_panic(expected = "intrinsic dim")]
    fn intrinsic_dim_larger_than_ambient_panics() {
        let mut spec = ClusteredSpec::small(10);
        spec.intrinsic_dim = 64;
        let _ = clustered(&spec, 0);
    }
}
