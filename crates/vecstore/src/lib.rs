#![warn(missing_docs)]

//! Flat `f32` vector datasets, distance metrics, exact k-nearest-neighbor
//! search, and synthetic high-dimensional feature generators.
//!
//! This crate is the data substrate for the Bi-level LSH reproduction: every
//! other crate consumes [`Dataset`] views and the [`Metric`] implementations
//! defined here. The exact search in [`exact`] doubles as the ground-truth
//! oracle against which all approximate indexes are scored.
//!
//! # Example
//!
//! ```
//! use vecstore::{Dataset, SquaredL2, exact::knn};
//!
//! let data = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![5.0, 5.0]]);
//! let hits = knn(&data, &[0.9, 0.1], 2, &SquaredL2);
//! assert_eq!(hits[0].id, 1);
//! assert_eq!(hits[1].id, 0);
//! ```

pub mod dataset;
pub mod exact;
pub mod fault;
pub mod io;
pub mod kernel;
pub mod metric;
pub mod ooc;
pub mod preprocess;
pub mod quant;
pub mod stats;
pub mod synth;
pub mod tombstone;
pub mod topk;

pub use dataset::Dataset;
pub use exact::{knn, knn_batch, Neighbor};
pub use fault::{
    is_transient, FaultKind, FaultPlan, FaultStats, FaultyDataset, RetryBudget, RetryPolicy,
    RetryStats, TransientFault,
};
pub use kernel::total_dist_cmp;
pub use metric::{Cosine, CosineWithNorms, InnerProduct, Lp, Metric, SquaredL2, L1, L2};
pub use ooc::{OocDataset, RowSource};
pub use quant::{PreparedQuery, QuantizedCorpus};
pub use tombstone::Tombstones;
pub use topk::TopK;
