//! Exact (brute-force) k-nearest-neighbor search.
//!
//! This is the `O(n)`-per-query linear scan the paper uses as ground truth
//! (the `N(v)` of Equations 3 and 4). A threaded batch variant spreads
//! queries over worker threads for the large ground-truth computations the
//! benchmark harnesses need.

use crate::dataset::Dataset;
use crate::metric::Metric;
use crate::topk::TopK;
use std::cmp::Ordering;

/// One search result: a dataset row id and its distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the searched dataset.
    pub id: usize,
    /// Distance under the metric the search ran with.
    pub dist: f32,
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    /// Orders by distance descending is NOT what we want globally; `Neighbor`
    /// implements max-heap-friendly ordering: larger distance compares
    /// greater, ties broken by larger id, so a `BinaryHeap<Neighbor>` keeps
    /// the *worst* candidate at the root.
    ///
    /// Distances compare under [`crate::kernel::total_dist_cmp`]: a total
    /// order in which every NaN (any sign or payload) is the worst value.
    /// Metrics return finite values on finite input, but fault injection
    /// ([`crate::fault::FaultyDataset`]) can poison rows into NaN distances;
    /// under this ordering a poisoned candidate can never evict a finite
    /// neighbor from a [`crate::TopK`] and merges stay deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        crate::kernel::total_dist_cmp(self.dist, other.dist).then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact k-nearest neighbors of `query` in `data`, sorted by ascending
/// distance (ties by ascending id). Returns fewer than `k` results only when
/// the dataset is smaller than `k`.
pub fn knn(data: &Dataset, query: &[f32], k: usize, metric: &dyn Metric) -> Vec<Neighbor> {
    assert_eq!(query.len(), data.dim(), "query dimension mismatch");
    let mut top = TopK::new(k);
    for (id, row) in data.iter().enumerate() {
        top.push(id, metric.distance(query, row));
    }
    top.into_sorted()
}

/// Exact KNN for every row of `queries`, computed on `threads` worker
/// threads. Results are in query order.
///
/// With `threads == 1` this degenerates to a serial loop (no spawn overhead
/// paths differ only in scheduling, not arithmetic).
pub fn knn_batch(
    data: &Dataset,
    queries: &Dataset,
    k: usize,
    metric: &dyn Metric,
    threads: usize,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(queries.dim(), data.dim(), "query dimension mismatch");
    let nq = queries.len();
    if threads <= 1 || nq < 2 {
        return queries.iter().map(|q| knn(data, q, k, metric)).collect();
    }
    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); nq];
    let chunk = nq.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (tid, out_chunk) in results.chunks_mut(chunk).enumerate() {
            let start = tid * chunk;
            s.spawn(move |_| {
                for (j, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = knn(data, queries.row(start + j), k, metric);
                }
            });
        }
    })
    .expect("ground-truth worker panicked");
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::SquaredL2;

    fn grid() -> Dataset {
        // Points at x = 0, 1, 2, ..., 9 on a line.
        Dataset::from_rows(&(0..10).map(|i| vec![i as f32, 0.0]).collect::<Vec<_>>())
    }

    #[test]
    fn knn_finds_nearest_on_line() {
        let ds = grid();
        let hits = knn(&ds, &[3.4, 0.0], 3, &SquaredL2);
        assert_eq!(hits.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 4, 2]);
    }

    #[test]
    fn knn_results_sorted_ascending() {
        let ds = grid();
        let hits = knn(&ds, &[7.0, 3.0], 5, &SquaredL2);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn knn_k_larger_than_dataset() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0]]);
        let hits = knn(&ds, &[0.0], 5, &SquaredL2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn batch_matches_single_queries() {
        let ds = grid();
        let queries = Dataset::from_rows(&[vec![1.2, 0.0], vec![8.7, 0.0], vec![4.5, 1.0]]);
        let serial = knn_batch(&ds, &queries, 4, &SquaredL2, 1);
        let parallel = knn_batch(&ds, &queries, 4, &SquaredL2, 3);
        assert_eq!(serial, parallel);
        assert_eq!(serial[0][0].id, 1);
        assert_eq!(serial[1][0].id, 9);
    }

    #[test]
    fn neighbor_ordering_is_max_heap_friendly() {
        let a = Neighbor { id: 0, dist: 1.0 };
        let b = Neighbor { id: 1, dist: 2.0 };
        assert!(b > a);
        let c = Neighbor { id: 2, dist: 1.0 };
        assert!(c > a); // tie on distance falls back to id
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn knn_dim_mismatch_panics() {
        let ds = grid();
        let _ = knn(&ds, &[1.0], 1, &SquaredL2);
    }
}
