//! Scalar-quantized (i8) corpus mirror for cheap first-pass distance.
//!
//! [`QuantizedCorpus`] stores an i8 approximation of a [`Dataset`] using
//! per-dimension affine quantization: `x[d] ≈ offset[d] + scale[d] · code`,
//! with codes clamped to `[-127, 127]`. At 1 byte per component it costs a
//! quarter of the f32 corpus and scans ~4× as many candidates per cache
//! line, which is what makes a prune-then-rerank first pass profitable.
//!
//! # Blocked, lane-interleaved layout
//!
//! Codes are stored in blocks of [`LANES`] (8) consecutive rows, interleaved
//! by dimension: block `b` occupies `codes[b·8·dim ..]` with component `d`
//! of row `8b + lane` at `codes[b·8·dim + d·8 + lane]`. One pass over a
//! block therefore advances all 8 row accumulators in lockstep — the inner
//! loop is an 8-wide f32 FMA the autovectorizer maps directly onto SIMD
//! registers — and candidate runs emitted by the bucket/interval tables
//! stream linearly through memory instead of gather-loading rows.
//!
//! # Distance approximation
//!
//! For squared L2, with `qs[d] = (q[d] − offset[d]) / scale[d]` and
//! `w[d] = scale[d]²`, expand the weighted square:
//!
//! ```text
//! ‖q − x̂‖² = Σ_d w·qs²  −  Σ_d 2·w·qs·code  +  Σ_d w·code²
//!           =    s0      −       t · code    +   wnorm[row]
//! ```
//!
//! `wnorm[row]` depends only on the corpus, so it is precomputed once at
//! build; [`PreparedQuery`] precomputes `s0` and `t` (plus the exact
//! constant for zero-spread dimensions, folded into `s0`). The per-row cost
//! is then a single i8·f32 fused multiply-add per dimension — less
//! arithmetic than the exact f32 kernel at a quarter of the memory traffic.
//! The approximation is used only to *select* rerank survivors; reported
//! distances always come from the exact f32 kernels.

use crate::dataset::Dataset;

/// Rows per interleaved block. 8 f32 accumulators fill one AVX2 register;
/// on narrower ISAs the compiler splits the block into two 4-wide ops.
pub const LANES: usize = 8;

/// An i8 scalar-quantized mirror of a [`Dataset`], stored in blocked
/// lane-interleaved layout (see module docs).
#[derive(Debug, Clone)]
pub struct QuantizedCorpus {
    dim: usize,
    len: usize,
    /// Per-dimension quantization step; `0.0` marks a zero-spread dimension
    /// represented exactly by `offset`.
    scale: Vec<f32>,
    /// Per-dimension affine offset (the midpoint of the observed range).
    offset: Vec<f32>,
    /// `ceil(len / LANES)` blocks of `dim · LANES` codes; lanes past `len`
    /// in the final block are zero padding and never read.
    codes: Vec<i8>,
    /// Per-row `Σ_d scale[d]² · code[d]²` — the corpus-constant term of the
    /// expanded squared-L2 form (see module docs).
    wnorm: Vec<f32>,
}

/// A query preprocessed against a [`QuantizedCorpus`]'s affine parameters.
///
/// Reusable across corpora only if they share quantization parameters;
/// in practice callers prepare once per (query, corpus) pair.
#[derive(Debug, Clone, Default)]
pub struct PreparedQuery {
    /// Dot-product weights `2 · scale[d]² · qs[d]` (`0` for zero-spread
    /// dims, whose codes are zero anyway).
    t: Vec<f32>,
    /// Query-constant term: `Σ_d scale[d]²·qs[d]²` plus the exact
    /// contribution of zero-spread dimensions `Σ (q[d] − offset[d])²`.
    s0: f32,
}

impl QuantizedCorpus {
    /// Quantizes `data`, deriving per-dimension ranges from its rows.
    ///
    /// Deterministic: the same dataset always yields the same parameters and
    /// codes, so a corpus reloaded from disk rebuilds an identical mirror.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn from_dataset(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot quantize an empty dataset");
        let dim = data.dim();
        let mut min = data.row(0).to_vec();
        let mut max = data.row(0).to_vec();
        for row in data.iter().skip(1) {
            for d in 0..dim {
                min[d] = min[d].min(row[d]);
                max[d] = max[d].max(row[d]);
            }
        }
        let mut scale = vec![0.0f32; dim];
        let mut offset = vec![0.0f32; dim];
        for d in 0..dim {
            offset[d] = min[d] + (max[d] - min[d]) * 0.5;
            // 254 steps across the observed range maps extremes to ±127.
            let step = (max[d] - min[d]) / 254.0;
            scale[d] = if step.is_finite() && step > 0.0 { step } else { 0.0 };
        }
        let mut qc = Self { dim, len: 0, scale, offset, codes: Vec::new(), wnorm: Vec::new() };
        qc.append_rows(data);
        qc
    }

    /// Appends every row of `data` to the code store using the *existing*
    /// affine parameters (codes clamp to `[-127, 127]`, so rows outside the
    /// original range lose accuracy but stay valid).
    ///
    /// # Panics
    ///
    /// Panics if `data.dim() != self.dim()`.
    pub fn append_rows(&mut self, data: &Dataset) {
        assert_eq!(data.dim(), self.dim, "appended rows must match corpus dimension");
        let new_len = self.len + data.len();
        let blocks = new_len.div_ceil(LANES);
        self.codes.resize(blocks * self.dim * LANES, 0);
        self.wnorm.reserve(data.len());
        for (i, row) in data.iter().enumerate() {
            let r = self.len + i;
            let block = r / LANES;
            let lane = r % LANES;
            let base = block * self.dim * LANES;
            let mut wnorm = 0.0f32;
            for (d, &x) in row.iter().enumerate() {
                let code = if self.scale[d] > 0.0 {
                    ((x - self.offset[d]) / self.scale[d]).round().clamp(-127.0, 127.0)
                } else {
                    0.0
                };
                self.codes[base + d * LANES + lane] = code as i8;
                wnorm += (self.scale[d] * self.scale[d]) * (code * code);
            }
            self.wnorm.push(wnorm);
        }
        self.len = new_len;
    }

    /// Re-encodes row `r` in place from `row`, using the existing affine
    /// parameters — the quantized half of an in-place vector update. Only
    /// the one (block, lane) slice and `wnorm[r]` change; every other row's
    /// codes are untouched, so scores for unrelated candidates are
    /// bit-identical before and after.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.len()` or `row.len() != self.dim()`.
    pub fn update_row(&mut self, r: usize, row: &[f32]) {
        assert!(r < self.len, "row id out of range");
        assert_eq!(row.len(), self.dim, "updated row must match corpus dimension");
        let base = (r / LANES) * self.dim * LANES;
        let lane = r % LANES;
        let mut wnorm = 0.0f32;
        for (d, &x) in row.iter().enumerate() {
            let code = if self.scale[d] > 0.0 {
                ((x - self.offset[d]) / self.scale[d]).round().clamp(-127.0, 127.0)
            } else {
                0.0
            };
            self.codes[base + d * LANES + lane] = code as i8;
            wnorm += (self.scale[d] * self.scale[d]) * (code * code);
        }
        self.wnorm[r] = wnorm;
    }

    /// Number of quantized rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the corpus holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bytes held by the code store (excludes the two f32 parameter rows).
    pub fn code_bytes(&self) -> usize {
        self.codes.len()
    }

    /// Transforms `query` into the corpus's quantized coordinate system,
    /// reusing `prep`'s allocations.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn prepare_into(&self, query: &[f32], prep: &mut PreparedQuery) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        prep.t.clear();
        prep.s0 = 0.0;
        for (d, &q) in query.iter().enumerate() {
            if self.scale[d] > 0.0 {
                let qs = (q - self.offset[d]) / self.scale[d];
                let w = self.scale[d] * self.scale[d];
                prep.t.push(2.0 * w * qs);
                prep.s0 += w * (qs * qs);
            } else {
                // Zero-spread dimension: every row stores exactly offset[d],
                // so its term is a per-query constant (its codes are zero,
                // so the dot-product term vanishes on its own).
                let diff = q - self.offset[d];
                prep.s0 += diff * diff;
                prep.t.push(0.0);
            }
        }
    }

    /// Convenience allocating wrapper around [`Self::prepare_into`].
    pub fn prepare(&self, query: &[f32]) -> PreparedQuery {
        let mut prep = PreparedQuery::default();
        self.prepare_into(query, &mut prep);
        prep
    }

    /// Approximate squared-L2 score from the prepared query to each id in
    /// `ids`, appended to `out` in input order.
    ///
    /// `ids` must be sorted ascending (candidate lists are sorted before
    /// dedup everywhere in the workspace); sorted input lets the scan visit
    /// each touched block exactly once. A block is evaluated for all 8 lanes
    /// in one vector pass and the requested lanes are then emitted — for the
    /// bucket-run-shaped candidate sets this layout targets, most blocks are
    /// fully populated and no work is wasted.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range or `ids` is not sorted ascending.
    pub fn approx_scores_into(&self, prep: &PreparedQuery, ids: &[u32], out: &mut Vec<f32>) {
        assert_eq!(prep.t.len(), self.dim, "prepared query dimension mismatch");
        out.reserve(ids.len());
        let block_stride = self.dim * LANES;
        let mut i = 0;
        let mut acc = [0.0f32; LANES];
        while i < ids.len() {
            let block = ids[i] as usize / LANES;
            // Find every requested lane that falls inside this block.
            let mut j = i;
            while j < ids.len() && (ids[j] as usize) / LANES == block {
                assert!((ids[j] as usize) < self.len, "candidate id out of range");
                debug_assert!(j == i || ids[j - 1] < ids[j], "ids must be sorted ascending");
                j += 1;
            }
            // Dense blocks amortize the 8-wide pass across their hits;
            // sparsely hit blocks score only the requested lanes (same cache
            // lines either way — the lane stride is within one line — but an
            // eighth of the arithmetic per skipped lane). The two paths
            // accumulate over dimensions in the same order, so scores are
            // bit-identical regardless of which one ran.
            if j - i >= LANES / 2 {
                self.score_block(prep, &mut acc, block * block_stride);
                for &id in &ids[i..j] {
                    let r = id as usize;
                    out.push(prep.s0 - acc[r % LANES] + self.wnorm[r]);
                }
            } else {
                for &id in &ids[i..j] {
                    let r = id as usize;
                    let dot = self.score_lane(prep, block * block_stride, r % LANES);
                    out.push(prep.s0 - dot + self.wnorm[r]);
                }
            }
            i = j;
        }
    }

    /// Accumulates the dot product `t · code` for all [`LANES`] rows of the
    /// block starting at `base` into `acc` — one i8·f32 FMA per element.
    #[inline]
    fn score_block(&self, prep: &PreparedQuery, acc: &mut [f32; LANES], base: usize) {
        *acc = [0.0; LANES];
        let block = &self.codes[base..base + self.dim * LANES];
        for (d, group) in block.chunks_exact(LANES).enumerate() {
            let t = prep.t[d];
            for lane in 0..LANES {
                acc[lane] += t * group[lane] as f32;
            }
        }
    }

    /// Dot product `t · code` for a single lane of the block starting at
    /// `base` — the sparse-hit path of [`Self::approx_scores_into`].
    /// Accumulates over dimensions in the same order as
    /// [`Self::score_block`] so both paths agree bit for bit.
    #[inline]
    fn score_lane(&self, prep: &PreparedQuery, base: usize, lane: usize) -> f32 {
        let block = &self.codes[base..base + self.dim * LANES];
        let mut acc = 0.0f32;
        for (d, group) in block.chunks_exact(LANES).enumerate() {
            acc += prep.t[d] * group[lane] as f32;
        }
        acc
    }

    /// Approximate squared-L2 score for a single row id (scalar path; used
    /// by tests and spot checks — the batch path is the hot one).
    pub fn approx_score(&self, prep: &PreparedQuery, id: usize) -> f32 {
        assert!(id < self.len, "row id out of range");
        let mut acc = [0.0f32; LANES];
        self.score_block(prep, &mut acc, (id / LANES) * self.dim * LANES);
        prep.s0 - acc[id % LANES] + self.wnorm[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::squared_l2;
    use crate::synth;

    #[test]
    fn roundtrip_error_is_bounded_by_half_step() {
        let data = synth::gaussian(13, 100, 2.0, 42);
        let qc = QuantizedCorpus::from_dataset(&data);
        // Reconstruct each component and compare against the original: the
        // affine scheme guarantees |x − x̂| ≤ scale/2 inside the range.
        for (r, row) in data.iter().enumerate() {
            let block = r / LANES;
            let lane = r % LANES;
            for (d, &x) in row.iter().enumerate().take(qc.dim) {
                let code = qc.codes[block * qc.dim * LANES + d * LANES + lane] as f32;
                let decoded = qc.offset[d] + qc.scale[d] * code;
                let step = if qc.scale[d] > 0.0 { qc.scale[d] } else { f32::EPSILON };
                assert!((decoded - x).abs() <= 0.51 * step, "row {r} dim {d}: {decoded} vs {x}");
            }
        }
    }

    #[test]
    fn approx_scores_track_exact_distances() {
        let data = synth::gaussian(24, 200, 1.5, 7);
        let qc = QuantizedCorpus::from_dataset(&data);
        let query = data.row(3).to_vec();
        let prep = qc.prepare(&query);
        let ids: Vec<u32> = (0..data.len() as u32).collect();
        let mut approx = Vec::new();
        qc.approx_scores_into(&prep, &ids, &mut approx);
        // Error per dimension is ≤ quantization step ⇒ the approx score must
        // stay within a modest additive band of the exact distance.
        let max_step: f32 = qc.scale.iter().fold(0.0f32, |m, &s| m.max(s));
        for (i, row) in data.iter().enumerate() {
            let exact = squared_l2(&query, row);
            let d = exact.sqrt();
            // |approx − exact| ≤ step·d·√dim + dim·step²/4 (cross + square terms).
            let bound = max_step * d * (qc.dim as f32).sqrt() + qc.dim as f32 * max_step * max_step;
            assert!(
                (approx[i] - exact).abs() <= bound.max(1e-4),
                "row {i}: approx {} exact {exact} bound {bound}",
                approx[i]
            );
        }
    }

    #[test]
    fn scattered_ids_match_scalar_path() {
        let data = synth::gaussian(9, 50, 1.0, 3);
        let qc = QuantizedCorpus::from_dataset(&data);
        let prep = qc.prepare(data.row(0));
        let ids: Vec<u32> = vec![0, 1, 7, 8, 9, 23, 24, 49];
        let mut got = Vec::new();
        qc.approx_scores_into(&prep, &ids, &mut got);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(got[i].to_bits(), qc.approx_score(&prep, id as usize).to_bits());
        }
    }

    #[test]
    fn append_rows_matches_single_shot_params() {
        let data = synth::gaussian(6, 40, 1.0, 11);
        let (head, tail) = data.split_at(25);
        let whole = QuantizedCorpus::from_dataset(&data);
        // Build from the head's *full-range* params then append: codes agree
        // wherever the parameters agree. Here we reuse whole's params by
        // quantizing head+tail through append on a clone with len reset.
        let mut incremental =
            QuantizedCorpus { len: 0, codes: Vec::new(), wnorm: Vec::new(), ..whole.clone() };
        incremental.append_rows(&head);
        incremental.append_rows(&tail);
        assert_eq!(incremental.len(), whole.len());
        assert_eq!(incremental.codes, whole.codes);
    }

    #[test]
    fn constant_dimension_is_exact() {
        let data = Dataset::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]]);
        let qc = QuantizedCorpus::from_dataset(&data);
        assert_eq!(qc.scale[0], 0.0);
        let prep = qc.prepare(&[7.0, 2.0]);
        // Dimension 0 contributes exactly (7 − 5)² = 4 through the base term.
        let s = qc.approx_score(&prep, 1);
        assert!((s - 4.0).abs() < 1e-5, "score {s}");
    }

    #[test]
    fn update_row_matches_append_reencoding() {
        // Updating row r in place must produce exactly the codes/wnorm a
        // fresh append of the new value under the same params would.
        let data = synth::gaussian(7, 30, 1.0, 5);
        let mut qc = QuantizedCorpus::from_dataset(&data);
        let reference = qc.clone();
        let replacement = data.row(29).to_vec();
        qc.update_row(4, &replacement);
        let mut expected =
            QuantizedCorpus { len: 0, codes: Vec::new(), wnorm: Vec::new(), ..reference.clone() };
        let mut mutated_rows = Dataset::new(data.dim());
        for (i, row) in data.iter().enumerate() {
            mutated_rows.push(if i == 4 { &replacement } else { row });
        }
        expected.append_rows(&mutated_rows);
        assert_eq!(qc.codes, expected.codes);
        assert_eq!(
            qc.wnorm.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            expected.wnorm.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "candidate id out of range")]
    fn out_of_range_id_panics() {
        let data = synth::gaussian(4, 10, 1.0, 1);
        let qc = QuantizedCorpus::from_dataset(&data);
        let prep = qc.prepare(data.row(0));
        let mut out = Vec::new();
        qc.approx_scores_into(&prep, &[10], &mut out);
    }
}
