//! Blocked, autovectorizer-friendly distance kernels.
//!
//! Every exact distance computed anywhere in the workspace funnels through
//! this module. The pair kernels ([`dot`], [`squared_l2`], [`l1`]) use a
//! fixed 4-lane accumulator scheme: independent partial sums over
//! `chunks_exact(4)` plus a scalar tail, combined left-to-right. That shape
//! gives LLVM independent dependency chains to vectorize while pinning the
//! floating-point summation order, which the workspace's bit-identity
//! contracts (parallel == serial, sharded == unsharded, persisted == rebuilt)
//! all rely on.
//!
//! The `*_batch` kernels evaluate one query against a *contiguous run* of
//! rows — the layout [`crate::Dataset`] stores and the bucket/interval tables
//! in `bilevel-lsh` emit. Per row they perform exactly the same arithmetic in
//! exactly the same order as the corresponding pair kernel, so switching a
//! call site from a per-pair loop to a batch kernel can never change a
//! result bit. The win is structural: one bounds check per run instead of
//! per row, no virtual dispatch per pair, and a hot loop the compiler can
//! keep in registers.
//!
//! # Accuracy
//!
//! The 4-lane scheme is a fixed summation order, not a compensated sum. For
//! inputs of magnitude `M` and dimension `d`, accumulated error is bounded by
//! `O(d · ulp(M²))` — the same bound as the naive loop, with a ~4× smaller
//! constant because each lane sums a quarter of the terms. The property
//! tests in this module check every kernel against an `f64` reference at a
//! relative tolerance of `1e-5` over adversarial lengths (1..=67) and mixed
//! magnitudes; see `prop_matches_f64_reference`.

/// Dot product of two equal-length slices (4-lane blocked).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Chunked accumulation gives the autovectorizer independent lanes.
    let mut acc = [0.0f32; 4];
    let mut chunks = a.chunks_exact(4).zip(b.chunks_exact(4));
    for (ca, cb) in &mut chunks {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let rem = a.len() - a.len() % 4;
    let mut tail = 0.0;
    for i in rem..a.len() {
        tail += a[i] * b[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared Euclidean distance between two equal-length slices (4-lane
/// blocked).
#[inline]
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let mut chunks = a.chunks_exact(4).zip(b.chunks_exact(4));
    for (ca, cb) in &mut chunks {
        let d0 = ca[0] - cb[0];
        let d1 = ca[1] - cb[1];
        let d2 = ca[2] - cb[2];
        let d3 = ca[3] - cb[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let rem = a.len() - a.len() % 4;
    let mut tail = 0.0;
    for i in rem..a.len() {
        let d = a[i] - b[i];
        tail += d * d;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Manhattan (`l_1`) distance between two equal-length slices (4-lane
/// blocked).
#[inline]
pub fn l1(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let mut chunks = a.chunks_exact(4).zip(b.chunks_exact(4));
    for (ca, cb) in &mut chunks {
        acc[0] += (ca[0] - cb[0]).abs();
        acc[1] += (ca[1] - cb[1]).abs();
        acc[2] += (ca[2] - cb[2]).abs();
        acc[3] += (ca[3] - cb[3]).abs();
    }
    let rem = a.len() - a.len() % 4;
    let mut tail = 0.0;
    for i in rem..a.len() {
        tail += (a[i] - b[i]).abs();
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared Euclidean distance from `query` to every `dim`-length row of the
/// contiguous `rows` buffer, appended to `out` in row order.
///
/// Each row's result is bit-identical to `squared_l2(query, row)`.
///
/// # Panics
///
/// Panics if `rows.len()` is not a multiple of `dim` or `query.len() != dim`.
#[inline]
pub fn squared_l2_batch(query: &[f32], rows: &[f32], dim: usize, out: &mut Vec<f32>) {
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(rows.len() % dim, 0, "rows buffer must be a multiple of dim");
    out.reserve(rows.len() / dim);
    for row in rows.chunks_exact(dim) {
        out.push(squared_l2(query, row));
    }
}

/// Dot product of `query` with every `dim`-length row of `rows`, appended to
/// `out` in row order. Bit-identical per row to `dot(query, row)`.
///
/// # Panics
///
/// Panics if `rows.len()` is not a multiple of `dim` or `query.len() != dim`.
#[inline]
pub fn dot_batch(query: &[f32], rows: &[f32], dim: usize, out: &mut Vec<f32>) {
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(rows.len() % dim, 0, "rows buffer must be a multiple of dim");
    out.reserve(rows.len() / dim);
    for row in rows.chunks_exact(dim) {
        out.push(dot(query, row));
    }
}

/// `l_1` distance from `query` to every `dim`-length row of `rows`, appended
/// to `out` in row order. Bit-identical per row to `l1(query, row)`.
///
/// # Panics
///
/// Panics if `rows.len()` is not a multiple of `dim` or `query.len() != dim`.
#[inline]
pub fn l1_batch(query: &[f32], rows: &[f32], dim: usize, out: &mut Vec<f32>) {
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(rows.len() % dim, 0, "rows buffer must be a multiple of dim");
    out.reserve(rows.len() / dim);
    for row in rows.chunks_exact(dim) {
        out.push(l1(query, row));
    }
}

/// Sum of `|a_i - b_i|^p` over two equal-length slices (4-lane blocked).
///
/// This is the `p`-th power of the `l_p` distance; callers that need the
/// actual distance apply `.powf(1.0 / p)` once at the end. For `p = 1`
/// prefer [`l1`] — same value, no `powf` per component.
#[inline]
pub fn lp_pow(a: &[f32], b: &[f32], p: f32) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let mut chunks = a.chunks_exact(4).zip(b.chunks_exact(4));
    for (ca, cb) in &mut chunks {
        acc[0] += (ca[0] - cb[0]).abs().powf(p);
        acc[1] += (ca[1] - cb[1]).abs().powf(p);
        acc[2] += (ca[2] - cb[2]).abs().powf(p);
        acc[3] += (ca[3] - cb[3]).abs().powf(p);
    }
    let rem = a.len() - a.len() % 4;
    let mut tail = 0.0;
    for i in rem..a.len() {
        tail += (a[i] - b[i]).abs().powf(p);
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Sum of `|q_i - r_i|^p` from `query` to every `dim`-length row of `rows`,
/// appended to `out` in row order. Bit-identical per row to
/// `lp_pow(query, row, p)`.
///
/// # Panics
///
/// Panics if `rows.len()` is not a multiple of `dim` or `query.len() != dim`.
#[inline]
pub fn lp_pow_batch(query: &[f32], rows: &[f32], dim: usize, p: f32, out: &mut Vec<f32>) {
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(rows.len() % dim, 0, "rows buffer must be a multiple of dim");
    out.reserve(rows.len() / dim);
    for row in rows.chunks_exact(dim) {
        out.push(lp_pow(query, row, p));
    }
}

/// Cosine distance (`1 - cos`) from a query with precomputed Euclidean norm
/// `query_norm` to every `dim`-length row of `rows`, appended to `out` in
/// row order. A zero query or zero row is at distance 1 (the
/// [`crate::metric::Cosine`] convention).
///
/// Each row's result is bit-identical to `Cosine::distance(query, row)`
/// provided `query_norm == dot(query, query).sqrt()` — the row norm is
/// recomputed here through that same expression.
///
/// # Panics
///
/// Panics if `rows.len()` is not a multiple of `dim` or `query.len() != dim`.
#[inline]
pub fn cosine_batch(query: &[f32], rows: &[f32], dim: usize, query_norm: f32, out: &mut Vec<f32>) {
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(rows.len() % dim, 0, "rows buffer must be a multiple of dim");
    out.reserve(rows.len() / dim);
    for row in rows.chunks_exact(dim) {
        let nb = dot(row, row).sqrt();
        if query_norm == 0.0 || nb == 0.0 {
            out.push(1.0);
        } else {
            out.push(1.0 - dot(query, row) / (query_norm * nb));
        }
    }
}

/// Total order on distances that treats every NaN as the *worst* value.
///
/// [`f32::total_cmp`] alone would order a negative-payload NaN *below*
/// `-inf`, letting a poisoned distance (e.g. injected by
/// [`crate::fault::FaultyDataset`]) evict finite neighbors from a top-k.
/// Canonicalizing NaNs to the positive side first guarantees: finite and
/// infinite distances order exactly as `total_cmp`, and any NaN compares
/// greater than every non-NaN (NaNs tie among themselves, regardless of
/// payload or sign).
#[inline]
pub fn total_dist_cmp(a: f32, b: f32) -> std::cmp::Ordering {
    let canon = |x: f32| if x.is_nan() { f32::NAN } else { x };
    canon(a).total_cmp(&canon(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::cmp::Ordering;

    fn dot_f64(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
    }

    fn sql2_f64(a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum()
    }

    fn l1_f64(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(&x, &y)| (x as f64 - y as f64).abs()).sum()
    }

    fn close(got: f32, want: f64, scale: f64, what: &str) {
        // Documented tolerance: relative 1e-5 against the f64 reference,
        // floored at 1e-5 * scale for results near zero. The 4-lane f32 sum
        // stays well inside this for d <= 67 and |x| <= 1e3.
        let tol = 1e-5 * scale.max(want.abs());
        assert!((got as f64 - want).abs() <= tol, "{what}: got {got}, want {want}, tol {tol}");
    }

    /// Every kernel vs an f64 naive reference, over adversarial lengths
    /// (1..=67 — every residue mod the 4-lane block width, plus lengths
    /// around 64) and mixed magnitudes drawn from [-1e3, 1e3].
    #[test]
    fn prop_matches_f64_reference() {
        let mut rng = StdRng::seed_from_u64(0x6b65726e);
        for len in 1..=67usize {
            for trial in 0..8 {
                let mag = [1e-3f32, 1.0, 37.5, 1e3][trial % 4];
                let a: Vec<f32> = (0..len).map(|_| rng.gen_range(-mag..=mag)).collect();
                let b: Vec<f32> = (0..len).map(|_| rng.gen_range(-mag..=mag)).collect();
                let scale = (mag as f64) * (mag as f64) * len as f64;
                close(dot(&a, &b), dot_f64(&a, &b), scale, &format!("dot len={len}"));
                close(squared_l2(&a, &b), sql2_f64(&a, &b), scale, &format!("sql2 len={len}"));
                close(
                    l1(&a, &b),
                    l1_f64(&a, &b),
                    (mag as f64) * len as f64,
                    &format!("l1 len={len}"),
                );
            }
        }
    }

    /// Batch kernels must be bit-identical to per-pair kernel calls on every
    /// row — this is the contract that lets rank paths switch freely.
    #[test]
    fn batch_is_bit_identical_to_pairs() {
        let mut rng = StdRng::seed_from_u64(7);
        for dim in [1usize, 3, 4, 7, 16, 33] {
            let n = 11;
            let rows: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
            let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
            let mut got = Vec::new();
            squared_l2_batch(&q, &rows, dim, &mut got);
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                assert_eq!(
                    got[i].to_bits(),
                    squared_l2(&q, row).to_bits(),
                    "sql2 dim={dim} row={i}"
                );
            }
            got.clear();
            dot_batch(&q, &rows, dim, &mut got);
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                assert_eq!(got[i].to_bits(), dot(&q, row).to_bits(), "dot dim={dim} row={i}");
            }
            got.clear();
            l1_batch(&q, &rows, dim, &mut got);
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                assert_eq!(got[i].to_bits(), l1(&q, row).to_bits(), "l1 dim={dim} row={i}");
            }
            for p in [0.5f32, 1.3, 1.7] {
                got.clear();
                lp_pow_batch(&q, &rows, dim, p, &mut got);
                for (i, row) in rows.chunks_exact(dim).enumerate() {
                    assert_eq!(
                        got[i].to_bits(),
                        lp_pow(&q, row, p).to_bits(),
                        "lp p={p} dim={dim} row={i}"
                    );
                }
            }
            got.clear();
            let nq = dot(&q, &q).sqrt();
            cosine_batch(&q, &rows, dim, nq, &mut got);
            for (i, row) in rows.chunks_exact(dim).enumerate() {
                let nb = dot(row, row).sqrt();
                let want =
                    if nq == 0.0 || nb == 0.0 { 1.0 } else { 1.0 - dot(&q, row) / (nq * nb) };
                assert_eq!(got[i].to_bits(), want.to_bits(), "cosine dim={dim} row={i}");
            }
        }
    }

    #[test]
    fn lp_pow_reduces_to_known_norms() {
        let a = [1.0f32, -2.0, 3.0, 0.0, 4.5];
        let b = [0.0f32, 1.0, 1.0, -2.0, 4.5];
        // p = 1: same value as the l1 kernel (up to powf(1.0) rounding,
        // which is exact for IEEE pow).
        assert!((lp_pow(&a, &b, 1.0) - l1(&a, &b)).abs() < 1e-6);
        // p = 2: same value as squared l2.
        assert!((lp_pow(&a, &b, 2.0) - squared_l2(&a, &b)).abs() < 1e-4);
        // p = 0.5 weights many small differences above one large one.
        let spread = [1.0f32, 1.0, 1.0, 1.0];
        let spike = [4.0f32, 0.0, 0.0, 0.0];
        let zero = [0.0f32; 4];
        assert!(lp_pow(&spread, &zero, 0.5) > lp_pow(&spike, &zero, 0.5));
    }

    #[test]
    fn cosine_batch_zero_rows_and_queries_hit_unit_distance() {
        let rows = [0.0f32, 0.0, 1.0, 1.0];
        let q = [1.0f32, 0.0];
        let mut out = Vec::new();
        cosine_batch(&q, &rows, 2, dot(&q, &q).sqrt(), &mut out);
        assert_eq!(out[0], 1.0, "zero row");
        let mut out = Vec::new();
        cosine_batch(&[0.0, 0.0], &rows, 2, 0.0, &mut out);
        assert_eq!(out, vec![1.0, 1.0], "zero query");
    }

    #[test]
    fn batch_appends_without_clearing() {
        let mut out = vec![42.0];
        squared_l2_batch(&[0.0], &[1.0, 2.0], 1, &mut out);
        assert_eq!(out, vec![42.0, 1.0, 4.0]);
    }

    #[test]
    fn total_dist_cmp_orders_all_nans_last() {
        let neg_nan = f32::from_bits(0xFFC0_0001); // NaN with sign bit set
        assert!(neg_nan.is_nan() && neg_nan.is_sign_negative());
        for nan in [f32::NAN, neg_nan] {
            for finite in [f32::NEG_INFINITY, -1.0, -0.0, 0.0, 1.0, f32::INFINITY] {
                assert_eq!(total_dist_cmp(nan, finite), Ordering::Greater, "{nan} vs {finite}");
                assert_eq!(total_dist_cmp(finite, nan), Ordering::Less);
            }
        }
        assert_eq!(total_dist_cmp(f32::NAN, neg_nan), Ordering::Equal);
        assert_eq!(total_dist_cmp(-0.0, 0.0), Ordering::Less);
        assert_eq!(total_dist_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(total_dist_cmp(2.0, 1.0), Ordering::Greater);
    }
}
