//! Tombstone bitmap: the deleted-row set of a mutable index.
//!
//! Deletion in the bi-level index is logical first, physical later: a
//! deleted row keeps its slot in the dataset, the hash tables, and the
//! quantized mirror, but its id is recorded here and filtered out of every
//! short-list at rank time. Compaction eventually rebuilds the index over
//! the surviving rows and resets the bitmap.
//!
//! The bitmap is intentionally opaque — callers outside the core crate go
//! through the accessor API (`contains`/`set`/`clear`/`count`) so the
//! storage representation can change without breaking the read-path
//! contract. The word-level views ([`Tombstones::as_words`],
//! [`Tombstones::from_words`]) exist only for snapshot (de)serialization.

/// A growable bitmap over `u32` row ids marking logically deleted rows.
///
/// Ids are never remapped by this type: bit `i` is row `i` of the corpus
/// the bitmap shadows. The bitmap grows lazily on [`Tombstones::set`], so
/// it stays empty (zero heap) for append-only workloads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tombstones {
    /// Little-endian bit order: row `i` lives at `words[i / 64]` bit `i % 64`.
    words: Vec<u64>,
    /// Number of set bits, maintained incrementally.
    count: usize,
}

impl Tombstones {
    /// An empty bitmap (no deleted rows).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether row `id` is tombstoned.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        let w = id as usize / 64;
        self.words.get(w).is_some_and(|word| word & (1u64 << (id % 64)) != 0)
    }

    /// Marks row `id` deleted. Returns `true` if the bit was newly set,
    /// `false` if the row was already tombstoned.
    pub fn set(&mut self, id: u32) -> bool {
        let w = id as usize / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (id % 64);
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.count += 1;
        true
    }

    /// Revives row `id` (an upsert over a previously deleted slot). Returns
    /// `true` if the bit was set before the call.
    pub fn clear(&mut self, id: u32) -> bool {
        let w = id as usize / 64;
        let mask = 1u64 << (id % 64);
        if self.words.get(w).is_some_and(|word| word & mask != 0) {
            self.words[w] &= !mask;
            self.count -= 1;
            return true;
        }
        false
    }

    /// Number of tombstoned rows.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether no row is tombstoned — the fast-path guard every filtered
    /// read checks before touching the bitmap.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Deleted fraction of a corpus of `len` rows (0.0 for an empty corpus).
    pub fn fraction(&self, len: usize) -> f64 {
        if len == 0 {
            0.0
        } else {
            self.count as f64 / len as f64
        }
    }

    /// Iterates the tombstoned ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64).filter_map(move |b| (word & (1u64 << b) != 0).then_some((w * 64 + b) as u32))
        })
    }

    /// The raw bitmap words, for snapshot serialization. Trailing zero
    /// words are not trimmed; the count is recomputed on load.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from persisted words, recounting set bits.
    pub fn from_words(words: Vec<u64>) -> Self {
        let count = words.iter().map(|w| w.count_ones() as usize).sum();
        Self { words, count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_clear_roundtrip() {
        let mut t = Tombstones::new();
        assert!(t.is_empty());
        assert!(!t.contains(100));
        assert!(t.set(100));
        assert!(!t.set(100), "double-set must report already-present");
        assert!(t.contains(100));
        assert_eq!(t.count(), 1);
        assert!(t.clear(100));
        assert!(!t.clear(100));
        assert!(!t.contains(100));
        assert!(t.is_empty());
    }

    #[test]
    fn word_boundaries_are_exact() {
        let mut t = Tombstones::new();
        for id in [0u32, 63, 64, 127, 128, 4095] {
            assert!(t.set(id));
        }
        assert_eq!(t.count(), 6);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 4095]);
        assert!(!t.contains(62));
        assert!(!t.contains(65));
    }

    #[test]
    fn words_roundtrip_recounts() {
        let mut t = Tombstones::new();
        t.set(3);
        t.set(200);
        let back = Tombstones::from_words(t.as_words().to_vec());
        assert_eq!(back, t);
        assert_eq!(back.count(), 2);
    }

    #[test]
    fn fraction_handles_empty_corpus() {
        let mut t = Tombstones::new();
        assert_eq!(t.fraction(0), 0.0);
        t.set(1);
        assert_eq!(t.fraction(4), 0.25);
    }
}
