//! Per-dataset summary statistics used by partitioners and the parameter
//! tuner: centroid, per-axis spread, average radius, and pairwise-distance
//! sampling.

use crate::dataset::Dataset;
use crate::metric::squared_l2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Centroid (component-wise mean) of a dataset.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn centroid(data: &Dataset) -> Vec<f32> {
    assert!(!data.is_empty(), "centroid of empty dataset");
    let mut mean = vec![0.0f64; data.dim()];
    for row in data.iter() {
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += v as f64;
        }
    }
    let n = data.len() as f64;
    mean.into_iter().map(|m| (m / n) as f32).collect()
}

/// Centroid of a subset of rows.
pub fn centroid_of(data: &Dataset, ids: &[usize]) -> Vec<f32> {
    assert!(!ids.is_empty(), "centroid of empty subset");
    let mut mean = vec![0.0f64; data.dim()];
    for &i in ids {
        for (m, &v) in mean.iter_mut().zip(data.row(i)) {
            *m += v as f64;
        }
    }
    let n = ids.len() as f64;
    mean.into_iter().map(|m| (m / n) as f32).collect()
}

/// Mean squared distance of the rows `ids` to their centroid — the "average
/// diameter" quantity `Δ_A²(S)` used by the RP-tree *mean* rule (up to the
/// conventional factor of 2: `Δ_A²(S) = 2 · mean squared distance to mean`).
pub fn mean_sq_dist_to_centroid(data: &Dataset, ids: &[usize]) -> f32 {
    let c = centroid_of(data, ids);
    let sum: f64 = ids.iter().map(|&i| squared_l2(data.row(i), &c) as f64).sum();
    (sum / ids.len() as f64) as f32
}

/// Per-axis min/max bounding box.
pub fn bounding_box(data: &Dataset) -> (Vec<f32>, Vec<f32>) {
    assert!(!data.is_empty(), "bounding box of empty dataset");
    let mut lo = data.row(0).to_vec();
    let mut hi = data.row(0).to_vec();
    for row in data.iter().skip(1) {
        for ((l, h), &v) in lo.iter_mut().zip(hi.iter_mut()).zip(row) {
            if v < *l {
                *l = v;
            }
            if v > *h {
                *h = v;
            }
        }
    }
    (lo, hi)
}

/// Samples `pairs` random point pairs and returns their L2 distances.
/// Used by the LSH parameter tuner to estimate the distance distribution.
pub fn sample_pairwise_distances(data: &Dataset, pairs: usize, seed: u64) -> Vec<f32> {
    assert!(data.len() >= 2, "need at least two points");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..pairs)
        .map(|_| {
            let i = rng.gen_range(0..data.len());
            let mut j = rng.gen_range(0..data.len());
            while j == i {
                j = rng.gen_range(0..data.len());
            }
            squared_l2(data.row(i), data.row(j)).sqrt()
        })
        .collect()
}

/// Exact diameter by the `O(n^2)` scan. Only for tests and tiny sets; the
/// production path is `rptree::diameter::approx_diameter`.
pub fn exact_diameter(data: &Dataset, ids: &[usize]) -> f32 {
    let mut best = 0.0f32;
    for (a, &i) in ids.iter().enumerate() {
        for &j in &ids[a + 1..] {
            best = best.max(squared_l2(data.row(i), data.row(j)));
        }
    }
    best.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Dataset {
        Dataset::from_rows(&[vec![0.0, 0.0], vec![2.0, 0.0], vec![0.0, 2.0], vec![2.0, 2.0]])
    }

    #[test]
    fn centroid_of_square_is_center() {
        assert_eq!(centroid(&square()), vec![1.0, 1.0]);
    }

    #[test]
    fn centroid_of_subset() {
        let c = centroid_of(&square(), &[0, 1]);
        assert_eq!(c, vec![1.0, 0.0]);
    }

    #[test]
    fn mean_sq_dist_on_square() {
        let ids: Vec<usize> = (0..4).collect();
        // Every corner is at squared distance 2 from the center.
        assert!((mean_sq_dist_to_centroid(&square(), &ids) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn bbox_on_square() {
        let (lo, hi) = bounding_box(&square());
        assert_eq!(lo, vec![0.0, 0.0]);
        assert_eq!(hi, vec![2.0, 2.0]);
    }

    #[test]
    fn exact_diameter_of_square_is_diagonal() {
        let ids: Vec<usize> = (0..4).collect();
        assert!((exact_diameter(&square(), &ids) - (8.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn pairwise_samples_positive_and_bounded() {
        let ds = square();
        let d = sample_pairwise_distances(&ds, 100, 5);
        assert_eq!(d.len(), 100);
        let diag = (8.0f32).sqrt();
        assert!(d.iter().all(|&x| x > 0.0 && x <= diag + 1e-6));
    }
}
