//! Distance metrics over `f32` slices.
//!
//! All LSH theory in the reproduced paper is stated for `l_p` spaces; the
//! experiments use Euclidean distance. [`SquaredL2`] is the workhorse: it
//! induces the same ranking as [`L2`] without the square root, so every
//! internal top-k structure uses it and only user-facing results take roots.

/// A distance function between two equal-length vectors.
///
/// Implementations must be non-negative and symmetric; they need not satisfy
/// the triangle inequality (e.g. [`SquaredL2`], [`InnerProduct`]).
pub trait Metric: Sync + Send {
    /// Distance between `a` and `b`.
    ///
    /// Callers guarantee `a.len() == b.len()`.
    fn distance(&self, a: &[f32], b: &[f32]) -> f32;

    /// Short stable name used in benchmark reports.
    fn name(&self) -> &'static str;
}

/// Euclidean (`l_2`) distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct L2;

/// Squared Euclidean distance — same ordering as [`L2`], cheaper to compute.
#[derive(Debug, Clone, Copy, Default)]
pub struct SquaredL2;

/// Manhattan (`l_1`) distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1;

/// Cosine distance, `1 - cos(a, b)`. Zero vectors are at distance 1 from
/// everything (their angle is undefined; this choice keeps the metric total).
#[derive(Debug, Clone, Copy, Default)]
pub struct Cosine;

/// Negative inner product, `-(a · b)`. Not a metric in the mathematical sense
/// but a common similarity-search objective; smaller is more similar.
#[derive(Debug, Clone, Copy, Default)]
pub struct InnerProduct;

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Chunked accumulation gives the autovectorizer independent lanes.
    let mut acc = [0.0f32; 4];
    let mut chunks = a.chunks_exact(4).zip(b.chunks_exact(4));
    for (ca, cb) in &mut chunks {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let rem = a.len() - a.len() % 4;
    let mut tail = 0.0;
    for i in rem..a.len() {
        tail += a[i] * b[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let mut chunks = a.chunks_exact(4).zip(b.chunks_exact(4));
    for (ca, cb) in &mut chunks {
        let d0 = ca[0] - cb[0];
        let d1 = ca[1] - cb[1];
        let d2 = ca[2] - cb[2];
        let d3 = ca[3] - cb[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let rem = a.len() - a.len() % 4;
    let mut tail = 0.0;
    for i in rem..a.len() {
        let d = a[i] - b[i];
        tail += d * d;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

impl Metric for L2 {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        squared_l2(a, b).sqrt()
    }
    fn name(&self) -> &'static str {
        "l2"
    }
}

impl Metric for SquaredL2 {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        squared_l2(a, b)
    }
    fn name(&self) -> &'static str {
        "sql2"
    }
}

impl Metric for L1 {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }
    fn name(&self) -> &'static str {
        "l1"
    }
}

impl Metric for Cosine {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        let na = norm(a);
        let nb = norm(b);
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        1.0 - dot(a, b) / (na * nb)
    }
    fn name(&self) -> &'static str {
        "cosine"
    }
}

impl Metric for InnerProduct {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        -dot(a, b)
    }
    fn name(&self) -> &'static str {
        "ip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_hand_computation() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(L2.distance(&a, &b), 5.0);
        assert_eq!(SquaredL2.distance(&a, &b), 25.0);
    }

    #[test]
    fn l1_matches_hand_computation() {
        assert_eq!(L1.distance(&[1.0, -2.0], &[-1.0, 1.0]), 5.0);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let d = Cosine.distance(&[1.0, 0.0], &[0.0, 2.0]);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_parallel_is_zero() {
        let d = Cosine.distance(&[1.0, 2.0], &[2.0, 4.0]);
        assert!(d.abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_one() {
        assert_eq!(Cosine.distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn inner_product_negates_dot() {
        assert_eq!(InnerProduct.distance(&[1.0, 2.0], &[3.0, 4.0]), -11.0);
    }

    #[test]
    fn dot_handles_non_multiple_of_four_lengths() {
        for len in 1..10usize {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let naive: f32 = a.iter().map(|x| x * x).sum();
            assert_eq!(dot(&a, &a), naive, "len={len}");
        }
    }

    #[test]
    fn squared_l2_symmetry() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(squared_l2(&a, &b), squared_l2(&b, &a));
    }
}
