//! Distance metrics over `f32` slices.
//!
//! All LSH theory in the reproduced paper is stated for `l_p` spaces; the
//! experiments use Euclidean distance. [`SquaredL2`] is the workhorse: it
//! induces the same ranking as [`L2`] without the square root, so every
//! internal top-k structure uses it and only user-facing results take roots.

use crate::dataset::Dataset;

/// A distance function between two equal-length vectors.
///
/// Implementations must be non-negative and symmetric; they need not satisfy
/// the triangle inequality (e.g. [`SquaredL2`], [`InnerProduct`]).
pub trait Metric: Sync + Send {
    /// Distance between `a` and `b`.
    ///
    /// Callers guarantee `a.len() == b.len()`.
    fn distance(&self, a: &[f32], b: &[f32]) -> f32;

    /// Short stable name used in benchmark reports.
    fn name(&self) -> &'static str;

    /// Distance from `query` to each of `ids` (row indices into `data`),
    /// appended to `out` in input order.
    ///
    /// The default implementation is a per-pair loop over
    /// [`Metric::distance`]. Metrics backed by [`crate::kernel`] override it
    /// to stream *runs* of consecutive ids through the contiguous batch
    /// kernels — bucket and interval tables emit candidate lists full of
    /// such runs, so sorted inputs turn most of the work into linear scans.
    ///
    /// # Contract
    ///
    /// Every override must be **bit-identical** to the default per-pair
    /// loop: same distances, same order. Rank paths switch between the two
    /// freely and the workspace's determinism tests compare them directly.
    fn distance_batch_into(&self, query: &[f32], data: &Dataset, ids: &[u32], out: &mut Vec<f32>) {
        out.reserve(ids.len());
        for &id in ids {
            out.push(self.distance(query, data.row(id as usize)));
        }
    }
}

/// Streams sorted `ids` as maximal runs of consecutive row indices, invoking
/// `run` with the contiguous flat slice backing each run. Non-sorted inputs
/// still work (runs just degrade to length 1).
#[inline]
fn for_each_run(data: &Dataset, ids: &[u32], mut run: impl FnMut(&[f32])) {
    let dim = data.dim();
    let flat = data.as_flat();
    let mut i = 0;
    while i < ids.len() {
        let start = ids[i] as usize;
        let mut j = i + 1;
        while j < ids.len() && ids[j] as usize == start + (j - i) {
            j += 1;
        }
        run(&flat[start * dim..(start + (j - i)) * dim]);
        i = j;
    }
}

/// Euclidean (`l_2`) distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct L2;

/// Squared Euclidean distance — same ordering as [`L2`], cheaper to compute.
#[derive(Debug, Clone, Copy, Default)]
pub struct SquaredL2;

/// Manhattan (`l_1`) distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1;

/// Cosine distance, `1 - cos(a, b)`. Zero vectors are at distance 1 from
/// everything (their angle is undefined; this choice keeps the metric total).
#[derive(Debug, Clone, Copy, Default)]
pub struct Cosine;

/// Negative inner product, `-(a · b)`. Not a metric in the mathematical sense
/// but a common similarity-search objective; smaller is more similar.
#[derive(Debug, Clone, Copy, Default)]
pub struct InnerProduct;

// The blocked pair kernels live in `crate::kernel`; these re-exports keep
// the long-standing `vecstore::metric::{dot, squared_l2}` paths working.
pub use crate::kernel::{dot, l1, squared_l2};

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

impl Metric for L2 {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        squared_l2(a, b).sqrt()
    }
    fn name(&self) -> &'static str {
        "l2"
    }
}

impl Metric for SquaredL2 {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        squared_l2(a, b)
    }
    fn name(&self) -> &'static str {
        "sql2"
    }
    fn distance_batch_into(&self, query: &[f32], data: &Dataset, ids: &[u32], out: &mut Vec<f32>) {
        for_each_run(data, ids, |rows| {
            crate::kernel::squared_l2_batch(query, rows, data.dim(), out)
        });
    }
}

impl Metric for L1 {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        l1(a, b)
    }
    fn name(&self) -> &'static str {
        "l1"
    }
    fn distance_batch_into(&self, query: &[f32], data: &Dataset, ids: &[u32], out: &mut Vec<f32>) {
        for_each_run(data, ids, |rows| crate::kernel::l1_batch(query, rows, data.dim(), out));
    }
}

impl Metric for Cosine {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        let na = norm(a);
        let nb = norm(b);
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        1.0 - dot(a, b) / (na * nb)
    }
    fn name(&self) -> &'static str {
        "cosine"
    }
    fn distance_batch_into(&self, query: &[f32], data: &Dataset, ids: &[u32], out: &mut Vec<f32>) {
        let nq = norm(query);
        for_each_run(data, ids, |rows| {
            crate::kernel::cosine_batch(query, rows, data.dim(), nq, out)
        });
    }
}

/// Minkowski `l_p` distance, `(Σ |a_i − b_i|^p)^{1/p}`.
///
/// A true metric for `p ≥ 1`; for `p ∈ (0, 1)` the triangle inequality
/// fails but the quantity is still the standard robust-distance objective
/// the `l_p` LSH families target. `p = 1` short-circuits to the [`L1`]
/// kernels (bit-identical to [`L1`] and much cheaper than `powf` per
/// component).
#[derive(Debug, Clone, Copy)]
pub struct Lp {
    p: f32,
}

impl Lp {
    /// An `l_p` metric for the given order.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is positive and finite.
    pub fn new(p: f32) -> Self {
        assert!(p > 0.0 && p.is_finite(), "lp order must be positive and finite, got {p}");
        Self { p }
    }

    /// The order `p`.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Metric for Lp {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        if self.p == 1.0 {
            l1(a, b)
        } else {
            crate::kernel::lp_pow(a, b, self.p).powf(1.0 / self.p)
        }
    }
    fn name(&self) -> &'static str {
        "lp"
    }
    fn distance_batch_into(&self, query: &[f32], data: &Dataset, ids: &[u32], out: &mut Vec<f32>) {
        if self.p == 1.0 {
            for_each_run(data, ids, |rows| crate::kernel::l1_batch(query, rows, data.dim(), out));
            return;
        }
        let before = out.len();
        for_each_run(data, ids, |rows| {
            crate::kernel::lp_pow_batch(query, rows, data.dim(), self.p, out)
        });
        for d in &mut out[before..] {
            *d = d.powf(1.0 / self.p);
        }
    }
}

impl Metric for InnerProduct {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        -dot(a, b)
    }
    fn name(&self) -> &'static str {
        "ip"
    }
    fn distance_batch_into(&self, query: &[f32], data: &Dataset, ids: &[u32], out: &mut Vec<f32>) {
        let before = out.len();
        for_each_run(data, ids, |rows| crate::kernel::dot_batch(query, rows, data.dim(), out));
        for d in &mut out[before..] {
            *d = -*d;
        }
    }
}

/// [`Cosine`] with the corpus row norms precomputed at construction.
///
/// Plain [`Cosine::distance`] recomputes both operand norms on every call —
/// `O(3d)` per candidate. With the corpus norms cached (and the query norm
/// computed once per batch), ranking does **one dot per candidate**.
///
/// Bit-identity: the cached norms are produced by the same
/// `dot(row, row).sqrt()` expression `Cosine` evaluates inline, and the
/// query norm is a pure function of the query, so results are bit-identical
/// to [`Cosine`] for rows of the wrapped corpus.
#[derive(Debug, Clone)]
pub struct CosineWithNorms {
    norms: Vec<f32>,
}

impl CosineWithNorms {
    /// Precomputes the Euclidean norm of every row of `data`.
    pub fn new(data: &Dataset) -> Self {
        Self { norms: data.iter().map(norm).collect() }
    }

    /// Number of cached row norms.
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// Whether no norms are cached.
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }
}

impl Metric for CosineWithNorms {
    /// Pairwise fallback (recomputes both norms); only the batch path uses
    /// the cache, because only there is the row identity known.
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        Cosine.distance(a, b)
    }
    fn name(&self) -> &'static str {
        "cosine"
    }
    fn distance_batch_into(&self, query: &[f32], data: &Dataset, ids: &[u32], out: &mut Vec<f32>) {
        debug_assert_eq!(self.norms.len(), data.len(), "norm cache built for a different corpus");
        let nq = norm(query);
        out.reserve(ids.len());
        for &id in ids {
            let nb = self.norms[id as usize];
            if nq == 0.0 || nb == 0.0 {
                out.push(1.0);
            } else {
                out.push(1.0 - dot(query, data.row(id as usize)) / (nq * nb));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_hand_computation() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(L2.distance(&a, &b), 5.0);
        assert_eq!(SquaredL2.distance(&a, &b), 25.0);
    }

    #[test]
    fn l1_matches_hand_computation() {
        assert_eq!(L1.distance(&[1.0, -2.0], &[-1.0, 1.0]), 5.0);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let d = Cosine.distance(&[1.0, 0.0], &[0.0, 2.0]);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_parallel_is_zero() {
        let d = Cosine.distance(&[1.0, 2.0], &[2.0, 4.0]);
        assert!(d.abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_one() {
        assert_eq!(Cosine.distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn inner_product_negates_dot() {
        assert_eq!(InnerProduct.distance(&[1.0, 2.0], &[3.0, 4.0]), -11.0);
    }

    #[test]
    fn lp_orders_match_known_norms() {
        let a = [1.0f32, -2.0, 3.0];
        let b = [0.0f32, 1.0, 1.0];
        assert_eq!(Lp::new(1.0).distance(&a, &b).to_bits(), L1.distance(&a, &b).to_bits());
        assert!((Lp::new(2.0).distance(&a, &b) - L2.distance(&a, &b)).abs() < 1e-5);
        // p = 0.5: many small coordinates cost more than one concentrated
        // difference of the same l1 mass.
        let spread = [1.0f32, 1.0, 1.0];
        let spike = [3.0f32, 0.0, 0.0];
        let zero = [0.0f32; 3];
        let p_half = Lp::new(0.5);
        assert!(p_half.distance(&spread, &zero) > p_half.distance(&spike, &zero));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn lp_rejects_nonpositive_order() {
        let _ = Lp::new(0.0);
    }

    #[test]
    fn dot_handles_non_multiple_of_four_lengths() {
        for len in 1..10usize {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let naive: f32 = a.iter().map(|x| x * x).sum();
            assert_eq!(dot(&a, &a), naive, "len={len}");
        }
    }

    #[test]
    fn squared_l2_symmetry() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(squared_l2(&a, &b), squared_l2(&b, &a));
    }

    /// Every batch override must be bit-identical to the default per-pair
    /// loop, for sorted runs and scattered ids alike.
    #[test]
    fn batch_overrides_match_per_pair_default() {
        let data = crate::synth::gaussian(13, 60, 1.0, 5);
        let query: Vec<f32> = data.row(2).to_vec();
        let id_sets: Vec<Vec<u32>> = vec![
            (0..60).collect(),             // one long run
            vec![0, 1, 2, 10, 11, 40, 59], // runs + singletons
            vec![7],                       // single id
            vec![],                        // empty
            vec![5, 3, 9],                 // unsorted still works (len-1 runs)
        ];
        let cos_cached = CosineWithNorms::new(&data);
        let (lp_half, lp_one, lp_mid) = (Lp::new(0.5), Lp::new(1.0), Lp::new(1.5));
        let metrics: Vec<&dyn Metric> = vec![
            &SquaredL2,
            &L1,
            &InnerProduct,
            &L2,
            &Cosine,
            &cos_cached,
            &lp_half,
            &lp_one,
            &lp_mid,
        ];
        for metric in metrics {
            for ids in &id_sets {
                let mut got = Vec::new();
                metric.distance_batch_into(&query, &data, ids, &mut got);
                let want: Vec<f32> =
                    ids.iter().map(|&i| metric.distance(&query, data.row(i as usize))).collect();
                let got_bits: Vec<u32> = got.iter().map(|d| d.to_bits()).collect();
                let want_bits: Vec<u32> = want.iter().map(|d| d.to_bits()).collect();
                assert_eq!(got_bits, want_bits, "metric {} ids {ids:?}", metric.name());
            }
        }
    }

    #[test]
    fn cosine_with_norms_matches_plain_cosine_bitwise() {
        let mut rows: Vec<Vec<f32>> =
            crate::synth::gaussian(8, 20, 1.0, 9).iter().map(|r| r.to_vec()).collect();
        rows.push(vec![0.0; 8]); // zero vector exercises the unit-distance path
        let data = Dataset::from_rows(&rows);
        let cached = CosineWithNorms::new(&data);
        let query = data.row(1).to_vec();
        let ids: Vec<u32> = (0..data.len() as u32).collect();
        let mut got = Vec::new();
        cached.distance_batch_into(&query, &data, &ids, &mut got);
        for (i, &d) in got.iter().enumerate() {
            assert_eq!(d.to_bits(), Cosine.distance(&query, data.row(i)).to_bits(), "row {i}");
        }
    }

    #[test]
    fn batch_appends_in_input_order() {
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let mut out = vec![99.0];
        SquaredL2.distance_batch_into(&[0.0], &data, &[2, 0], &mut out);
        assert_eq!(out, vec![99.0, 4.0, 0.0]);
    }
}
