//! Binary vector-file I/O in the `fvecs`/`ivecs` formats.
//!
//! These are the de-facto interchange formats for ANN benchmark corpora
//! (TEXMEX, GIST descriptors): each record is a little-endian `u32`
//! dimension followed by `dim` values (`f32` for fvecs, `i32` for ivecs).
//! Supporting them means real GIST files can be dropped into the harness in
//! place of the synthetic substitute.

use crate::dataset::Dataset;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an entire `.fvecs` file into a [`Dataset`].
///
/// # Errors
///
/// Returns an error on I/O failure, inconsistent per-record dimensions, or a
/// truncated record.
pub fn read_fvecs(path: &Path) -> io::Result<Dataset> {
    let mut reader = BufReader::new(File::open(path)?);
    read_fvecs_from(&mut reader)
}

/// Reads `.fvecs` records from an arbitrary reader until EOF.
pub fn read_fvecs_from<R: Read>(reader: &mut R) -> io::Result<Dataset> {
    let mut dim: Option<usize> = None;
    let mut flat: Vec<f32> = Vec::new();
    let mut head = [0u8; 4];
    loop {
        if !read_exact_or_eof(reader, &mut head)? {
            break;
        }
        let d = u32::from_le_bytes(head) as usize;
        if d == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "zero-dimension record"));
        }
        match dim {
            None => dim = Some(d),
            Some(expected) if expected != d => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("inconsistent dimensions: {expected} vs {d}"),
                ));
            }
            Some(_) => {}
        }
        let mut buf = vec![0u8; d * 4];
        reader.read_exact(&mut buf)?;
        flat.extend(buf.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])));
    }
    let dim = dim.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty fvecs file"))?;
    Ok(Dataset::from_flat(dim, flat))
}

/// Writes a [`Dataset`] as `.fvecs`.
pub fn write_fvecs(path: &Path, data: &Dataset) -> io::Result<()> {
    let mut writer = BufWriter::new(File::create(path)?);
    write_fvecs_to(&mut writer, data)
}

/// Writes `.fvecs` records to an arbitrary writer.
pub fn write_fvecs_to<W: Write>(writer: &mut W, data: &Dataset) -> io::Result<()> {
    let dim_le = (data.dim() as u32).to_le_bytes();
    for row in data.iter() {
        writer.write_all(&dim_le)?;
        for v in row {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    writer.flush()
}

/// Reads an `.ivecs` file (e.g. precomputed ground-truth neighbor ids).
pub fn read_ivecs(path: &Path) -> io::Result<Vec<Vec<i32>>> {
    let mut reader = BufReader::new(File::open(path)?);
    read_ivecs_from(&mut reader)
}

/// Reads `.ivecs` records from an arbitrary reader until EOF.
pub fn read_ivecs_from<R: Read>(reader: &mut R) -> io::Result<Vec<Vec<i32>>> {
    let mut out = Vec::new();
    let mut head = [0u8; 4];
    while read_exact_or_eof(reader, &mut head)? {
        let d = u32::from_le_bytes(head) as usize;
        let mut buf = vec![0u8; d * 4];
        reader.read_exact(&mut buf)?;
        out.push(
            buf.chunks_exact(4).map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect(),
        );
    }
    Ok(out)
}

/// Writes `.ivecs` records (each row may have its own length).
pub fn write_ivecs_to<W: Write>(writer: &mut W, rows: &[Vec<i32>]) -> io::Result<()> {
    for row in rows {
        writer.write_all(&(row.len() as u32).to_le_bytes())?;
        for v in row {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    writer.flush()
}

/// Reads exactly `buf.len()` bytes, or returns `Ok(false)` on clean EOF at a
/// record boundary. EOF mid-record is an error.
fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(false)
            } else {
                Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated record"))
            };
        }
        filled += n;
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fvecs_roundtrip_in_memory() {
        let ds = Dataset::from_rows(&[vec![1.0, -2.5, 3.25], vec![0.0, 7.0, -0.125]]);
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &ds).unwrap();
        let back = read_fvecs_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn ivecs_roundtrip_in_memory() {
        let rows = vec![vec![1, 2, 3], vec![-4, 5]];
        let mut buf = Vec::new();
        write_ivecs_to(&mut buf, &rows).unwrap();
        let back = read_ivecs_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn empty_fvecs_is_invalid() {
        let err = read_fvecs_from(&mut [].as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_record_is_error() {
        let ds = Dataset::from_rows(&[vec![1.0, 2.0]]);
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &ds).unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_fvecs_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn inconsistent_dims_rejected() {
        let mut buf = Vec::new();
        buf.extend(1u32.to_le_bytes());
        buf.extend(1.0f32.to_le_bytes());
        buf.extend(2u32.to_le_bytes());
        buf.extend(1.0f32.to_le_bytes());
        buf.extend(2.0f32.to_le_bytes());
        let err = read_fvecs_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn fvecs_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("vecstore_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fvecs");
        let ds = Dataset::from_rows(&[vec![9.0, 8.0], vec![7.0, 6.0]]);
        write_fvecs(&path, &ds).unwrap();
        let back = read_fvecs(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, ds);
    }
}
