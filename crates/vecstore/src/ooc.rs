//! Out-of-core datasets: vectors that live on disk in `.fvecs` format and
//! are read on demand.
//!
//! The paper's future work calls for "efficient out-of-core algorithms to
//! handle very large datasets (e.g. > 100GB)". The enabler is a dataset
//! whose rows are fetched by offset instead of held in memory:
//! [`OocDataset`] wraps an `.fvecs` file with fixed-size records, giving
//! `O(1)` positioned reads (`pread`), sequential chunk streaming for index
//! construction, and strided sampling for fitting partitioners and tuning
//! parameters in memory.

use crate::dataset::Dataset;
use std::cell::RefCell;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::os::unix::fs::FileExt;
use std::path::Path;

thread_local! {
    /// Reusable raw-byte buffer for positioned reads. Row fetches sit on the
    /// query hot path (one per candidate, or one per coalesced run); a
    /// per-call `Vec` allocation there is pure overhead, and threading a
    /// scratch parameter through every caller would couple them to the
    /// record layout. The buffer holds no state between calls.
    static READ_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Abstract row-read interface over disk-resident vectors.
///
/// Everything downstream of the out-of-core path — index construction,
/// candidate re-ranking, coalesced fetches — needs only these four
/// operations, so they are a trait: [`OocDataset`] is the production
/// implementation, and [`FaultyDataset`](crate::fault::FaultyDataset)
/// wraps any of it with deterministic fault injection for chaos tests.
///
/// `Sync` is a supertrait because batch queries share one source across
/// worker threads; implementations must support concurrent positioned
/// reads (as `pread`-style access does).
pub trait RowSource: Sync {
    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Number of vectors in the source.
    fn len(&self) -> usize;

    /// Reads row `i` into `buf` (`buf.len() == dim`).
    fn read_row_into(&self, i: usize, buf: &mut [f32]) -> io::Result<()>;

    /// Reads the contiguous row span `[start, start + rows)` into `out`
    /// (`rows × dim` values, row-major), ideally with one positioned read.
    fn read_rows_into(&self, start: usize, rows: usize, out: &mut [f32]) -> io::Result<()>;

    /// Whether the source holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads a contiguous block `[start, start + rows)` into an in-memory
    /// [`Dataset`].
    fn read_block(&self, start: usize, rows: usize) -> io::Result<Dataset> {
        let mut flat = vec![0.0f32; rows * self.dim()];
        self.read_rows_into(start, rows, &mut flat)?;
        Ok(Dataset::from_flat(self.dim(), flat))
    }

    /// Iterates the source as in-memory chunks of at most `rows` vectors —
    /// the streaming pattern out-of-core index construction uses.
    fn chunks(&self, rows: usize) -> Chunks<'_, Self>
    where
        Self: Sized,
    {
        assert!(rows > 0, "chunk size must be positive");
        Chunks { ds: self, next: 0, rows }
    }

    /// Strided deterministic sample of up to `n` rows, materialized in
    /// memory. Used to fit partitioners and tune widths without loading
    /// the full file.
    fn sample(&self, n: usize) -> io::Result<Dataset> {
        let n = n.clamp(1, self.len());
        let stride = (self.len() / n).max(1);
        let mut out = Dataset::with_capacity(self.dim(), n);
        let mut buf = vec![0.0f32; self.dim()];
        let mut taken = 0;
        let mut i = 0;
        while taken < n && i < self.len() {
            self.read_row_into(i, &mut buf)?;
            out.push(&buf);
            taken += 1;
            i += stride;
        }
        Ok(out)
    }
}

/// A read-only, disk-resident `.fvecs` dataset with uniform dimension.
///
/// Positioned reads (`read_row_into`) are thread-safe: the file handle is
/// never seeked, all access goes through `pread`-style offsets.
#[derive(Debug)]
pub struct OocDataset {
    file: File,
    dim: usize,
    len: usize,
}

/// Bytes per record: 4-byte dimension header plus `dim` little-endian f32s.
#[inline]
fn record_bytes(dim: usize) -> u64 {
    4 + 4 * dim as u64
}

impl OocDataset {
    /// Opens an `.fvecs` file for out-of-core access.
    ///
    /// # Errors
    ///
    /// Fails when the file is empty, its size is not a whole number of
    /// records, or spot-checked record headers disagree on the dimension.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let total = file.seek(SeekFrom::End(0))?;
        file.seek(SeekFrom::Start(0))?;
        let mut head = [0u8; 4];
        file.read_exact(&mut head)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "empty fvecs file"))?;
        let dim = u32::from_le_bytes(head) as usize;
        if dim == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "zero-dimension record"));
        }
        let rec = record_bytes(dim);
        if total % rec != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file size {total} is not a multiple of the record size {rec}"),
            ));
        }
        let len = (total / rec) as usize;
        let ds = Self { file, dim, len };
        // Spot-check a few headers across the file (cheap O(1) validation
        // instead of a full scan — the full scan is what we're avoiding).
        for probe in [0, len / 2, len.saturating_sub(1)] {
            if probe < len {
                let mut h = [0u8; 4];
                ds.file.read_exact_at(&mut h, probe as u64 * rec)?;
                let d = u32::from_le_bytes(h) as usize;
                if d != dim {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("record {probe} has dimension {d}, expected {dim}"),
                    ));
                }
            }
        }
        Ok(ds)
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors in the file.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file holds no vectors (open() rejects empty files, so
    /// this is always `false` for a successfully opened dataset).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads row `i` into `buf` with one positioned read.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` or `buf.len() != dim`.
    pub fn read_row_into(&self, i: usize, buf: &mut [f32]) -> io::Result<()> {
        assert!(i < self.len, "row index out of range");
        assert_eq!(buf.len(), self.dim, "buffer dimension mismatch");
        READ_SCRATCH.with_borrow_mut(|bytes| {
            bytes.resize(4 * self.dim, 0);
            let offset = i as u64 * record_bytes(self.dim) + 4;
            self.file.read_exact_at(bytes, offset)?;
            for (v, c) in buf.iter_mut().zip(bytes.chunks_exact(4)) {
                *v = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            }
            Ok(())
        })
    }

    /// Reads the contiguous row span `[start, start + rows)` into `out`
    /// (`rows × dim` values, row-major) with **one** positioned read — the
    /// coalesced fetch batch queries use to merge adjacent candidates into a
    /// single syscall. Record headers in the span are validated.
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds the file or `out.len() != rows * dim`.
    pub fn read_rows_into(&self, start: usize, rows: usize, out: &mut [f32]) -> io::Result<()> {
        assert!(start + rows <= self.len, "row span out of range");
        assert_eq!(out.len(), rows * self.dim, "output length must be rows * dim");
        let rec = record_bytes(self.dim) as usize;
        READ_SCRATCH.with_borrow_mut(|bytes| {
            bytes.resize(rec * rows, 0);
            self.file.read_exact_at(bytes, start as u64 * rec as u64)?;
            for (i, r) in bytes.chunks_exact(rec).enumerate() {
                let d = u32::from_le_bytes([r[0], r[1], r[2], r[3]]) as usize;
                if d != self.dim {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("record {} has dimension {d}, expected {}", start + i, self.dim),
                    ));
                }
                for (v, c) in
                    out[i * self.dim..(i + 1) * self.dim].iter_mut().zip(r[4..].chunks_exact(4))
                {
                    *v = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                }
            }
            Ok(())
        })
    }
}

impl RowSource for OocDataset {
    #[inline]
    fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    fn read_row_into(&self, i: usize, buf: &mut [f32]) -> io::Result<()> {
        OocDataset::read_row_into(self, i, buf)
    }

    fn read_rows_into(&self, start: usize, rows: usize, out: &mut [f32]) -> io::Result<()> {
        OocDataset::read_rows_into(self, start, rows, out)
    }
}

/// Iterator over sequential in-memory chunks of a [`RowSource`].
pub struct Chunks<'a, S: RowSource> {
    ds: &'a S,
    next: usize,
    rows: usize,
}

impl<S: RowSource> Iterator for Chunks<'_, S> {
    /// `(start_row, chunk)` — the start offset names the global row ids.
    type Item = io::Result<(usize, Dataset)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.ds.len() {
            return None;
        }
        let start = self.next;
        let rows = self.rows.min(self.ds.len() - start);
        self.next += rows;
        Some(self.ds.read_block(start, rows).map(|d| (start, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::write_fvecs;
    use crate::synth;

    fn write_temp(ds: &Dataset, name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vecstore_ooc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        write_fvecs(&path, ds).unwrap();
        path
    }

    #[test]
    fn open_reports_shape() {
        let ds = synth::gaussian(8, 57, 1.0, 1);
        let path = write_temp(&ds, "shape.fvecs");
        let ooc = OocDataset::open(&path).unwrap();
        assert_eq!(ooc.dim(), 8);
        assert_eq!(ooc.len(), 57);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn random_access_matches_memory() {
        let ds = synth::gaussian(6, 40, 2.0, 3);
        let path = write_temp(&ds, "rows.fvecs");
        let ooc = OocDataset::open(&path).unwrap();
        let mut buf = vec![0.0f32; 6];
        for i in [0usize, 7, 19, 39] {
            ooc.read_row_into(i, &mut buf).unwrap();
            assert_eq!(&buf[..], ds.row(i), "row {i}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn row_span_read_matches_per_row_reads() {
        let ds = synth::gaussian(5, 64, 1.5, 13);
        let path = write_temp(&ds, "span.fvecs");
        let ooc = OocDataset::open(&path).unwrap();
        let mut span = vec![0.0f32; 20 * 5];
        ooc.read_rows_into(17, 20, &mut span).unwrap();
        let mut row = vec![0.0f32; 5];
        for i in 0..20 {
            ooc.read_row_into(17 + i, &mut row).unwrap();
            assert_eq!(&span[i * 5..(i + 1) * 5], &row[..], "row {}", 17 + i);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "row span out of range")]
    fn row_span_past_eof_panics() {
        let ds = synth::gaussian(3, 10, 1.0, 15);
        let path = write_temp(&ds, "spanoob.fvecs");
        let ooc = OocDataset::open(&path).unwrap();
        let mut out = vec![0.0f32; 6 * 3];
        let _ = ooc.read_rows_into(5, 6, &mut out);
    }

    #[test]
    fn chunks_reassemble_the_whole_file() {
        let ds = synth::gaussian(4, 33, 1.0, 5);
        let path = write_temp(&ds, "chunks.fvecs");
        let ooc = OocDataset::open(&path).unwrap();
        let mut rebuilt = Dataset::new(4);
        let mut starts = Vec::new();
        for chunk in ooc.chunks(10) {
            let (start, block) = chunk.unwrap();
            starts.push(start);
            for row in block.iter() {
                rebuilt.push(row);
            }
        }
        assert_eq!(starts, vec![0, 10, 20, 30]);
        assert_eq!(rebuilt, ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sample_is_strided_subset() {
        let ds = synth::gaussian(3, 100, 1.0, 7);
        let path = write_temp(&ds, "sample.fvecs");
        let ooc = OocDataset::open(&path).unwrap();
        let s = ooc.sample(10).unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(s.row(0), ds.row(0));
        assert_eq!(s.row(1), ds.row(10));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let ds = synth::gaussian(5, 10, 1.0, 9);
        let path = write_temp(&ds, "trunc.fvecs");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(OocDataset::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "row index out of range")]
    fn out_of_range_read_panics() {
        let ds = synth::gaussian(2, 5, 1.0, 11);
        let path = write_temp(&ds, "oob.fvecs");
        let ooc = OocDataset::open(&path).unwrap();
        let mut buf = vec![0.0f32; 2];
        let _ = ooc.read_row_into(5, &mut buf);
    }
}
