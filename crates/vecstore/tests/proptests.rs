//! Property-based tests for the data substrate: metric identities, top-k
//! correctness against sorting, and I/O roundtrips on arbitrary inputs.

use proptest::prelude::*;
use vecstore::io::{read_fvecs_from, write_fvecs_to};
use vecstore::metric::{dot, squared_l2};
use vecstore::topk::select_k_smallest;
use vecstore::{Dataset, Neighbor, SquaredL2, TopK};

/// Finite, moderately sized floats keep the arithmetic comparisons exact
/// enough to check against naive implementations.
fn small_f32() -> impl Strategy<Value = f32> {
    (-1000i32..1000).prop_map(|x| x as f32 / 8.0)
}

fn vec_pair(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1..=max_len).prop_flat_map(|len| {
        (prop::collection::vec(small_f32(), len), prop::collection::vec(small_f32(), len))
    })
}

proptest! {
    #[test]
    fn dot_matches_naive((a, b) in vec_pair(64)) {
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = dot(&a, &b);
        prop_assert!((got - naive).abs() <= naive.abs() * 1e-4 + 1e-3,
            "dot {got} vs naive {naive}");
    }

    #[test]
    fn squared_l2_matches_naive((a, b) in vec_pair(64)) {
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let got = squared_l2(&a, &b);
        prop_assert!((got - naive).abs() <= naive.abs() * 1e-4 + 1e-3);
    }

    #[test]
    fn squared_l2_axioms((a, b) in vec_pair(32)) {
        prop_assert!(squared_l2(&a, &b) >= 0.0);
        prop_assert_eq!(squared_l2(&a, &b), squared_l2(&b, &a));
        prop_assert_eq!(squared_l2(&a, &a), 0.0);
    }

    #[test]
    fn topk_equals_sorted_prefix(
        dists in prop::collection::vec(small_f32().prop_map(|x| x.abs()), 1..200),
        k in 1usize..20,
    ) {
        let mut top = TopK::new(k);
        for (id, &d) in dists.iter().enumerate() {
            top.push(id, d);
        }
        let got = top.into_sorted();
        let mut want: Vec<Neighbor> = dists
            .iter()
            .enumerate()
            .map(|(id, &dist)| Neighbor { id, dist })
            .collect();
        want.sort_unstable();
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn select_k_equals_sorted_prefix(
        dists in prop::collection::vec(small_f32().prop_map(|x| x.abs()), 0..200),
        k in 0usize..30,
    ) {
        let items: Vec<Neighbor> = dists
            .iter()
            .enumerate()
            .map(|(id, &dist)| Neighbor { id, dist })
            .collect();
        let got = select_k_smallest(items.clone(), k.max(1));
        let mut want = items;
        want.sort_unstable();
        want.truncate(k.max(1));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn knn_is_sorted_and_unique(
        rows in prop::collection::vec(prop::collection::vec(small_f32(), 4), 1..60),
        k in 1usize..10,
    ) {
        let ds = Dataset::from_rows(&rows);
        let hits = vecstore::knn(&ds, ds.row(0), k, &SquaredL2);
        prop_assert!(hits.len() <= k);
        prop_assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
        let mut ids: Vec<usize> = hits.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), hits.len());
        // The query is its own nearest neighbor (distance 0 to row 0).
        prop_assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn fvecs_roundtrip(
        rows in prop::collection::vec(prop::collection::vec(small_f32(), 3), 1..40),
    ) {
        let ds = Dataset::from_rows(&rows);
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &ds).unwrap();
        let back = read_fvecs_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, ds);
    }

    #[test]
    fn dataset_gather_then_rows_match(
        rows in prop::collection::vec(prop::collection::vec(small_f32(), 2), 1..30),
        picks in prop::collection::vec(0usize..30, 0..30),
    ) {
        let ds = Dataset::from_rows(&rows);
        let valid: Vec<usize> = picks.into_iter().filter(|&i| i < ds.len()).collect();
        let g = ds.gather(&valid);
        prop_assert_eq!(g.len(), valid.len());
        for (out_idx, &src) in valid.iter().enumerate() {
            prop_assert_eq!(g.row(out_idx), ds.row(src));
        }
    }
}
