//! CPU analogs of the GPU data-parallel primitives the work-queue engine
//! uses: parallel map, exclusive prefix scan, stream compaction, and the
//! clustered sort of Figure 3 (sort candidates by distance *within* each
//! query's cluster while keeping clusters grouped).

/// One work-queue entry: a candidate for a specific query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueEntry {
    /// Query (cluster) index.
    pub query: u32,
    /// Candidate item id.
    pub id: u32,
    /// Distance of the candidate to the query (filled by the map phase).
    pub dist: f32,
}

/// Applies `f` to every element on `threads` workers, preserving order.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send + Default + Clone,
    F: Fn(&T) -> U + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    let mut out = vec![U::default(); items.len()];
    let chunk = items.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (ins, outs) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            s.spawn(move |_| {
                for (i, o) in ins.iter().zip(outs.iter_mut()) {
                    *o = f(i);
                }
            });
        }
    })
    .expect("parallel_map worker panicked");
    out
}

/// Fills every output slot on `threads` workers, giving each worker its own
/// scratch state from `init` — the shared fan-out primitive behind the
/// table build and the parallel candidate-generation pipeline.
///
/// Slots are block-partitioned in index order and `f` receives each slot's
/// global index, so the output is deterministic regardless of scheduling:
/// slot `i` depends only on `(i, scratch)` and never on which worker ran it.
pub fn parallel_fill_with<T, S, I, F>(out: &mut [T], threads: usize, init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut T) + Sync,
{
    if threads <= 1 || out.len() < 2 {
        let mut scratch = init();
        for (i, slot) in out.iter_mut().enumerate() {
            f(&mut scratch, i, slot);
        }
        return;
    }
    let chunk = out.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (tid, part) in out.chunks_mut(chunk).enumerate() {
            let (init, f) = (&init, &f);
            s.spawn(move |_| {
                let mut scratch = init();
                let start = tid * chunk;
                for (j, slot) in part.iter_mut().enumerate() {
                    f(&mut scratch, start + j, slot);
                }
            });
        }
    })
    .expect("parallel_fill worker panicked");
}

/// In-place variant of [`parallel_map`]: applies `f` to every element.
pub fn parallel_for_each<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    if threads <= 1 || items.len() < 2 {
        items.iter_mut().for_each(f);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for part in items.chunks_mut(chunk) {
            let f = &f;
            s.spawn(move |_| part.iter_mut().for_each(f));
        }
    })
    .expect("parallel_for_each worker panicked");
}

/// Exclusive prefix sum: `out[i] = Σ_{j<i} xs[j]`, plus the grand total.
pub fn exclusive_scan(xs: &[usize]) -> (Vec<usize>, usize) {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0usize;
    for &x in xs {
        out.push(acc);
        acc += x;
    }
    (out, acc)
}

/// Stream compaction: the elements satisfying `keep`, order preserved.
pub fn compact<T: Clone, F: Fn(&T) -> bool>(items: &[T], keep: F) -> Vec<T> {
    items.iter().filter(|x| keep(x)).cloned().collect()
}

/// Clustered sort (Figure 3): orders entries by `(query, dist, id)` so each
/// query's candidates become a contiguous ascending-distance run, using a
/// parallel chunk-sort + k-way merge (the CPU analog of a GPU segmented
/// radix sort).
///
/// Distances compare under [`vecstore::total_dist_cmp`]: NaN sorts after
/// every finite distance (it used to compare `Equal` to everything, which
/// let a NaN-poisoned entry land anywhere in its query's run — breaking
/// both the "duplicates are adjacent" invariant the compact phase relies
/// on and the first-k selection itself).
pub fn clustered_sort(entries: &mut Vec<QueueEntry>, threads: usize) {
    let cmp = |a: &QueueEntry, b: &QueueEntry| {
        a.query
            .cmp(&b.query)
            .then_with(|| vecstore::total_dist_cmp(a.dist, b.dist))
            .then_with(|| a.id.cmp(&b.id))
    };
    if threads <= 1 || entries.len() < 1024 {
        entries.sort_unstable_by(cmp);
        return;
    }
    // Sort chunks in parallel…
    let chunk = entries.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for part in entries.chunks_mut(chunk) {
            s.spawn(move |_| part.sort_unstable_by(cmp));
        }
    })
    .expect("clustered_sort worker panicked");
    // …then merge pairwise until one run remains.
    let mut runs: Vec<Vec<QueueEntry>> = entries.chunks(chunk).map(|c| c.to_vec()).collect();
    while runs.len() > 1 {
        let mut merged = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => merged.push(merge_two(a, b, cmp)),
                None => merged.push(a),
            }
        }
        runs = merged;
    }
    *entries = runs.pop().expect("at least one run");
}

fn merge_two<F: Fn(&QueueEntry, &QueueEntry) -> std::cmp::Ordering>(
    a: Vec<QueueEntry>,
    b: Vec<QueueEntry>,
    cmp: F,
) -> Vec<QueueEntry> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&a[i], &b[j]) != std::cmp::Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(query: u32, id: u32, dist: f32) -> QueueEntry {
        QueueEntry { query, id, dist }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<i64> = (0..1000).collect();
        let serial = parallel_map(&xs, 1, |x| x * 2);
        let threaded = parallel_map(&xs, 4, |x| x * 2);
        assert_eq!(serial, threaded);
        assert_eq!(serial[7], 14);
    }

    #[test]
    fn parallel_for_each_touches_everything() {
        let mut xs = vec![1i32; 500];
        parallel_for_each(&mut xs, 3, |x| *x += 1);
        assert!(xs.iter().all(|&x| x == 2));
    }

    #[test]
    fn exclusive_scan_basics() {
        let (scan, total) = exclusive_scan(&[3, 0, 2, 5]);
        assert_eq!(scan, vec![0, 3, 3, 5]);
        assert_eq!(total, 10);
        let (empty, zero) = exclusive_scan(&[]);
        assert!(empty.is_empty());
        assert_eq!(zero, 0);
    }

    #[test]
    fn compact_keeps_order() {
        let xs = vec![1, 2, 3, 4, 5, 6];
        assert_eq!(compact(&xs, |x| x % 2 == 0), vec![2, 4, 6]);
    }

    #[test]
    fn clustered_sort_groups_and_orders() {
        let mut entries = vec![
            entry(1, 10, 3.0),
            entry(0, 11, 2.0),
            entry(1, 12, 1.0),
            entry(0, 13, 5.0),
            entry(1, 14, 2.0),
        ];
        clustered_sort(&mut entries, 1);
        // Clusters contiguous, ascending distance within each.
        assert_eq!(
            entries,
            vec![
                entry(0, 11, 2.0),
                entry(0, 13, 5.0),
                entry(1, 12, 1.0),
                entry(1, 14, 2.0),
                entry(1, 10, 3.0),
            ]
        );
    }

    #[test]
    fn clustered_sort_parallel_matches_serial() {
        let mut a: Vec<QueueEntry> = (0..5000)
            .map(|i| entry((i * 7 % 13) as u32, i as u32, ((i * 31 % 997) as f32) * 0.1))
            .collect();
        let mut b = a.clone();
        clustered_sort(&mut a, 1);
        clustered_sort(&mut b, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_sort_handles_ties_deterministically() {
        let mut entries = vec![entry(0, 9, 1.0), entry(0, 3, 1.0), entry(0, 6, 1.0)];
        clustered_sort(&mut entries, 1);
        assert_eq!(entries.iter().map(|e| e.id).collect::<Vec<_>>(), vec![3, 6, 9]);
    }
}
