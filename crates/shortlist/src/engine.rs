//! The three short-list engines (serial heap, per-query parallel, work
//! queue). All three are exact over their candidate sets: they return the
//! same k-best results, differing only in execution organization — which is
//! precisely the comparison the paper's Figure 4 runs.

use crate::primitives::{clustered_sort, parallel_fill_with, parallel_for_each, QueueEntry};
use vecstore::{Dataset, Metric, Neighbor, Tombstones, TopK};

/// Serial baseline: one size-k max-heap per query (the paper's single-core
/// CPU reference).
pub fn shortlist_serial(
    data: &Dataset,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
    metric: &dyn Metric,
) -> Vec<Vec<Neighbor>> {
    shortlist_serial_filtered(data, queries, candidates, k, metric, None)
}

/// [`shortlist_serial`] with rank-time tombstone filtering: candidates in
/// `deleted` are dropped before they enter the heap, so a logically deleted
/// row can never surface as a neighbor. With `None` (or an empty bitmap)
/// the results are bit-identical to the unfiltered engine.
pub fn shortlist_serial_filtered(
    data: &Dataset,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
    metric: &dyn Metric,
    deleted: Option<&Tombstones>,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(queries.len(), candidates.len(), "one candidate set per query");
    candidates
        .iter()
        .enumerate()
        .map(|(q, cands)| rank_one_filtered(data, queries.row(q), cands, k, metric, deleted))
        .collect()
}

/// Quickselect organization: one `O(c + k log k)` selection per query
/// instead of a heap — the `O(|A(v)| + k)` k-selection the paper cites via
/// Knuth in Section II-A. Faster than the heap when `k` is a large fraction
/// of the candidate count (e.g. the paper's `k = 500`), since the heap pays
/// `O(c log k)`.
pub fn shortlist_select(
    data: &Dataset,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
    metric: &dyn Metric,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(queries.len(), candidates.len(), "one candidate set per query");
    candidates
        .iter()
        .enumerate()
        .map(|(q, cands)| {
            let mut unique = cands.clone();
            unique.sort_unstable();
            unique.dedup();
            // Sorted unique ids stream through the batch kernel: contiguous
            // id runs become single flat-slice passes instead of per-pair
            // row lookups.
            let mut dists = Vec::with_capacity(unique.len());
            metric.distance_batch_into(queries.row(q), data, &unique, &mut dists);
            let scored: Vec<Neighbor> = unique
                .iter()
                .zip(&dists)
                .map(|(&id, &dist)| Neighbor { id: id as usize, dist })
                .collect();
            vecstore::topk::select_k_smallest(scored, k)
        })
        .collect()
}

/// Per-thread-per-query organization: queries are block-partitioned over
/// `threads` workers. Mirrors the naive GPU kernel; with imbalanced
/// candidate counts some workers idle while the largest query finishes.
pub fn shortlist_per_query(
    data: &Dataset,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
    metric: &dyn Metric,
    threads: usize,
) -> Vec<Vec<Neighbor>> {
    shortlist_per_query_filtered(data, queries, candidates, k, metric, threads, None)
}

/// [`shortlist_per_query`] with rank-time tombstone filtering (see
/// [`shortlist_serial_filtered`] for the contract).
pub fn shortlist_per_query_filtered(
    data: &Dataset,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
    metric: &dyn Metric,
    threads: usize,
    deleted: Option<&Tombstones>,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(queries.len(), candidates.len(), "one candidate set per query");
    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
    parallel_fill_with(
        &mut results,
        threads,
        || (),
        |_, q, slot| {
            *slot = rank_one_filtered(data, queries.row(q), &candidates[q], k, metric, deleted)
        },
    );
    results
}

/// Work-queue engine (Figure 3).
///
/// Candidates from all queries are drained into a bounded global queue in
/// rounds. Each round: (1) distances of queued `(query, candidate)` pairs
/// are evaluated with a parallel map; (2) the queue — which also carries
/// each query's current k-best from prior rounds — is *clustered-sorted* by
/// `(query, distance)`; (3) a compact pass keeps the first `k` entries of
/// every query run as the new running k-best. `queue_capacity` plays the
/// role of the GPU global-memory budget.
///
/// # Capacity contract
///
/// `queue_capacity` must exceed `k` (asserted): an admitted query re-enters
/// its running k-best (up to `k` entries) and must still have room for at
/// least one fresh candidate, or a round could make no progress. This is
/// the single capacity contract for the whole pipeline — callers such as
/// `bilevel_lsh::Engine::WorkQueue` validate against it up front rather
/// than silently clamping.
pub fn shortlist_workqueue(
    data: &Dataset,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
    metric: &dyn Metric,
    threads: usize,
    queue_capacity: usize,
) -> Vec<Vec<Neighbor>> {
    shortlist_workqueue_filtered(
        data,
        queries,
        candidates,
        k,
        metric,
        threads,
        queue_capacity,
        None,
    )
}

/// [`shortlist_workqueue`] with rank-time tombstone filtering. Tombstoned
/// ids are dropped before queue admission — equivalent to running the
/// unfiltered engine on candidate lists with the deleted ids removed, which
/// is exactly what the serial filtered engine ranks, so all filtered
/// engines stay bit-identical to each other.
#[allow(clippy::too_many_arguments)]
pub fn shortlist_workqueue_filtered(
    data: &Dataset,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
    metric: &dyn Metric,
    threads: usize,
    queue_capacity: usize,
    deleted: Option<&Tombstones>,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(queries.len(), candidates.len(), "one candidate set per query");
    assert!(queue_capacity > k, "queue must hold more than one query's k-best");
    // Pre-filter the candidate lists once so the round/cursor machinery
    // below never has to special-case dead ids mid-queue.
    let filtered_storage: Vec<Vec<u32>>;
    let candidates: &[Vec<u32>] = match deleted {
        Some(t) if !t.is_empty() => {
            filtered_storage = candidates
                .iter()
                .map(|c| c.iter().copied().filter(|&id| !t.contains(id)).collect())
                .collect();
            &filtered_storage
        }
        _ => candidates,
    };
    let nq = queries.len();
    // Running k-best per query, kept sorted ascending.
    let mut best: Vec<Vec<QueueEntry>> = vec![Vec::new(); nq];
    // Per-query cursor into its candidate list.
    let mut cursor = vec![0usize; nq];
    let mut pending: Vec<u32> = (0..nq as u32).collect();

    let mut queue: Vec<QueueEntry> = Vec::with_capacity(queue_capacity);
    while !pending.is_empty() {
        queue.clear();
        let (scheduled, still_pending) =
            fill_round(candidates, &best, &mut cursor, &pending, &mut queue, queue_capacity);

        // Map phase: evaluate the distances of fresh entries in parallel.
        parallel_for_each(&mut queue, threads, |e| {
            if e.dist.is_nan() {
                e.dist = metric.distance(queries.row(e.query as usize), data.row(e.id as usize));
            }
        });

        // Clustered sort + compact phase.
        clustered_sort(&mut queue, threads);
        for &q in &scheduled {
            best[q as usize].clear();
        }
        let mut i = 0usize;
        while i < queue.len() {
            let q = queue[i].query;
            let mut j = i;
            while j < queue.len() && queue[j].query == q {
                j += 1;
            }
            // Walk the ascending run keeping the first k *unique* ids
            // (duplicates are adjacent: same id implies same distance).
            let b = &mut best[q as usize];
            let mut pos = i;
            while pos < j && b.len() < k {
                if b.last().map(|e| e.id) != Some(queue[pos].id) {
                    b.push(queue[pos]);
                }
                pos += 1;
            }
            i = j;
        }
        pending = still_pending;
    }

    best.into_iter()
        .map(|entries| {
            entries.into_iter().map(|e| Neighbor { id: e.id as usize, dist: e.dist }).collect()
        })
        .collect()
}

/// One fill round of the work queue: walks `pending` in order, copying each
/// admitted query's running k-best plus as many fresh candidates as fit
/// into `queue`. Returns `(scheduled, still_pending)` for the round.
///
/// Invariants:
/// * `pending` holds unique query ids, so both returned lists do too — a
///   query is never scheduled twice in one round;
/// * a query is admitted only if its k-best *and* at least one fresh
///   candidate (when it has any remaining) fit, so every admitted query
///   makes progress and no round stalls.
fn fill_round(
    candidates: &[Vec<u32>],
    best: &[Vec<QueueEntry>],
    cursor: &mut [usize],
    pending: &[u32],
    queue: &mut Vec<QueueEntry>,
    queue_capacity: usize,
) -> (Vec<u32>, Vec<u32>) {
    let mut scheduled: Vec<u32> = Vec::new();
    let mut still_pending: Vec<u32> = Vec::new();
    for (i, &q) in pending.iter().enumerate() {
        let qi = q as usize;
        let have = best[qi].len();
        let remaining = candidates[qi].len() - cursor[qi];
        // Admit the query only if its k-best plus one fresh candidate (when
        // any remain) fits; otherwise it waits for a later round.
        if queue.len() + have + remaining.min(1) > queue_capacity {
            still_pending.push(q);
            continue;
        }
        queue.extend(best[qi].iter().copied());
        let take = remaining.min(queue_capacity - queue.len());
        for &id in &candidates[qi][cursor[qi]..cursor[qi] + take] {
            queue.push(QueueEntry { query: q, id, dist: f32::NAN });
        }
        cursor[qi] += take;
        if cursor[qi] < candidates[qi].len() {
            still_pending.push(q); // more rounds needed for this query
        }
        scheduled.push(q);
        if queue.len() >= queue_capacity {
            // Queue full: defer the rest of the pending list untouched
            // (`pending` ids are unique, so a straight copy cannot
            // double-schedule anything).
            still_pending.extend_from_slice(&pending[i + 1..]);
            break;
        }
    }
    (scheduled, still_pending)
}

/// K-way merge of per-shard top-k lists into one global top-k.
///
/// Each input list must be sorted ascending by `(dist, id)` — the order
/// every engine in this crate produces. When the shards partition the
/// dataset into disjoint row ranges (so no id appears in two lists), the
/// merge is exactly the list that ranking the union of candidates would
/// produce: the global k-best under the same `(dist, id)` order.
pub fn merge_topk(lists: &[Vec<Neighbor>], k: usize) -> Vec<Neighbor> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    // Cursor heap over the heads of all lists; `Reverse` turns the
    // max-heap-friendly Neighbor ordering into a min-heap on (dist, id).
    let mut heap: BinaryHeap<Reverse<(Neighbor, usize)>> =
        lists.iter().enumerate().filter_map(|(s, l)| l.first().map(|&n| Reverse((n, s)))).collect();
    let mut cursor = vec![1usize; lists.len()];
    let mut out = Vec::with_capacity(k.min(lists.iter().map(Vec::len).sum()));
    while out.len() < k {
        let Some(Reverse((n, s))) = heap.pop() else { break };
        out.push(n);
        if let Some(&next) = lists[s].get(cursor[s]) {
            cursor[s] += 1;
            heap.push(Reverse((next, s)));
        }
    }
    out
}

/// Ranks one query's candidates with a size-k heap; duplicates in the
/// candidate list are tolerated (deduplicated by keeping ids unique in the
/// output), and tombstoned ids are dropped during the dedup pass, before
/// any distance is computed.
fn rank_one_filtered(
    data: &Dataset,
    query: &[f32],
    candidates: &[u32],
    k: usize,
    metric: &dyn Metric,
    deleted: Option<&Tombstones>,
) -> Vec<Neighbor> {
    // Candidate lists from multiple tables repeat ids; duplicates must not
    // enter the heap or they crowd out legitimate candidates.
    let mut unique = candidates.to_vec();
    unique.sort_unstable();
    unique.dedup();
    if let Some(t) = deleted {
        if !t.is_empty() {
            unique.retain(|&id| !t.contains(id));
        }
    }
    // Sorted unique ids let the metric's batch path stream contiguous id
    // runs straight out of the flat array (bit-identical to per-pair calls).
    let mut dists = Vec::with_capacity(unique.len());
    metric.distance_batch_into(query, data, &unique, &mut dists);
    let mut top = TopK::new(k);
    for (&id, &dist) in unique.iter().zip(&dists) {
        top.push(id as usize, dist);
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vecstore::{synth, SquaredL2};

    /// Random scenario: dataset, queries, and per-query candidate lists of
    /// wildly differing sizes (the imbalance the work queue targets).
    fn scenario(seed: u64) -> (Dataset, Dataset, Vec<Vec<u32>>) {
        let data = synth::gaussian(8, 300, 1.0, seed);
        let queries = synth::gaussian(8, 20, 1.0, seed + 1);
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let candidates = (0..queries.len())
            .map(|_| {
                let len = rng.gen_range(0..150);
                (0..len).map(|_| rng.gen_range(0..data.len()) as u32).collect()
            })
            .collect();
        (data, queries, candidates)
    }

    /// Reference result: sort + dedup + truncate.
    fn reference(
        data: &Dataset,
        queries: &Dataset,
        candidates: &[Vec<u32>],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        candidates
            .iter()
            .enumerate()
            .map(|(q, cands)| {
                let mut unique: Vec<u32> = cands.clone();
                unique.sort_unstable();
                unique.dedup();
                let mut hits: Vec<Neighbor> = unique
                    .into_iter()
                    .map(|id| Neighbor {
                        id: id as usize,
                        dist: SquaredL2.distance(queries.row(q), data.row(id as usize)),
                    })
                    .collect();
                hits.sort_unstable();
                hits.truncate(k);
                hits
            })
            .collect()
    }

    #[test]
    fn serial_matches_reference() {
        let (data, queries, candidates) = scenario(1);
        let got = shortlist_serial(&data, &queries, &candidates, 10, &SquaredL2);
        assert_eq!(got, reference(&data, &queries, &candidates, 10));
    }

    #[test]
    fn select_matches_reference() {
        let (data, queries, candidates) = scenario(9);
        let got = shortlist_select(&data, &queries, &candidates, 10, &SquaredL2);
        assert_eq!(got, reference(&data, &queries, &candidates, 10));
    }

    #[test]
    fn per_query_matches_reference() {
        let (data, queries, candidates) = scenario(2);
        let got = shortlist_per_query(&data, &queries, &candidates, 10, &SquaredL2, 4);
        assert_eq!(got, reference(&data, &queries, &candidates, 10));
    }

    #[test]
    fn workqueue_matches_reference() {
        let (data, queries, candidates) = scenario(3);
        for capacity in [64, 256, 4096] {
            let got =
                shortlist_workqueue(&data, &queries, &candidates, 10, &SquaredL2, 2, capacity);
            assert_eq!(got, reference(&data, &queries, &candidates, 10), "capacity {capacity}");
        }
    }

    #[test]
    fn all_engines_agree() {
        let (data, queries, candidates) = scenario(4);
        let a = shortlist_serial(&data, &queries, &candidates, 7, &SquaredL2);
        let b = shortlist_per_query(&data, &queries, &candidates, 7, &SquaredL2, 3);
        let c = shortlist_workqueue(&data, &queries, &candidates, 7, &SquaredL2, 3, 128);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn empty_candidate_sets_give_empty_results() {
        let data = synth::gaussian(4, 10, 1.0, 5);
        let queries = synth::gaussian(4, 3, 1.0, 6);
        let candidates = vec![Vec::new(), vec![0, 1], Vec::new()];
        for engine_result in [
            shortlist_serial(&data, &queries, &candidates, 5, &SquaredL2),
            shortlist_workqueue(&data, &queries, &candidates, 5, &SquaredL2, 2, 64),
        ] {
            assert!(engine_result[0].is_empty());
            assert_eq!(engine_result[1].len(), 2);
            assert!(engine_result[2].is_empty());
        }
    }

    #[test]
    fn duplicate_candidates_are_deduplicated() {
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let queries = Dataset::from_rows(&[vec![0.1]]);
        let candidates = vec![vec![1, 1, 0, 0, 1, 2, 0]];
        let got = shortlist_serial(&data, &queries, &candidates, 3, &SquaredL2);
        assert_eq!(got[0].iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        let wq = shortlist_workqueue(&data, &queries, &candidates, 3, &SquaredL2, 1, 16);
        assert_eq!(wq, got);
    }

    #[test]
    fn tiny_queue_capacity_still_exact() {
        let (data, queries, candidates) = scenario(7);
        // Capacity barely above k forces many rounds; results must not drift.
        let got = shortlist_workqueue(&data, &queries, &candidates, 5, &SquaredL2, 2, 6);
        assert_eq!(got, reference(&data, &queries, &candidates, 5));
    }

    #[test]
    fn k_larger_than_candidates_returns_all() {
        let data = Dataset::from_rows(&[vec![0.0], vec![3.0]]);
        let queries = Dataset::from_rows(&[vec![1.0]]);
        let candidates = vec![vec![0, 1]];
        let got = shortlist_workqueue(&data, &queries, &candidates, 10, &SquaredL2, 1, 32);
        assert_eq!(got[0].len(), 2);
    }

    #[test]
    fn minimum_capacity_is_exact() {
        // capacity == k + 1 is the smallest the contract allows: every round
        // admits one query with its k-best plus a single fresh candidate.
        let (data, queries, candidates) = scenario(11);
        let k = 5;
        let got = shortlist_workqueue(&data, &queries, &candidates, k, &SquaredL2, 2, k + 1);
        assert_eq!(got, reference(&data, &queries, &candidates, k));
    }

    #[test]
    #[should_panic(expected = "queue must hold more than one query's k-best")]
    fn capacity_not_above_k_is_rejected() {
        let (data, queries, candidates) = scenario(12);
        shortlist_workqueue(&data, &queries, &candidates, 5, &SquaredL2, 1, 5);
    }

    /// Drives `fill_round` directly and checks its two invariants on every
    /// round: no query id appears twice in `scheduled` or `still_pending`
    /// (regression for the deferral path, which used to re-filter the
    /// current id out of an already-unique pending list), and every admitted
    /// query with work left received at least one fresh candidate slot.
    #[test]
    fn fill_round_never_schedules_a_query_twice() {
        let mut rng = StdRng::seed_from_u64(21);
        let nq = 40;
        let candidates: Vec<Vec<u32>> = (0..nq)
            .map(|_| {
                let len = rng.gen_range(0..30);
                (0..len).map(|_| rng.gen_range(0..100u32)).collect()
            })
            .collect();
        let k = 4;
        let queue_capacity = k + 1; // smallest legal queue → maximal deferral
        let mut best: Vec<Vec<QueueEntry>> = vec![Vec::new(); nq];
        let mut cursor = vec![0usize; nq];
        let mut pending: Vec<u32> = (0..nq as u32).collect();
        let mut queue: Vec<QueueEntry> = Vec::new();
        let mut rounds = 0;
        while !pending.is_empty() {
            rounds += 1;
            assert!(rounds < 10_000, "work queue stopped making progress");
            queue.clear();
            let before: Vec<usize> = cursor.clone();
            let (scheduled, still_pending) =
                fill_round(&candidates, &best, &mut cursor, &pending, &mut queue, queue_capacity);
            for list in [&scheduled, &still_pending] {
                let mut seen = list.clone();
                seen.sort_unstable();
                let n = seen.len();
                seen.dedup();
                assert_eq!(seen.len(), n, "query scheduled twice in one round");
            }
            for &q in &scheduled {
                let qi = q as usize;
                if before[qi] < candidates[qi].len() {
                    assert!(cursor[qi] > before[qi], "admitted query got no fresh slot");
                }
                // Fake a running k-best so later rounds re-enter entries.
                best[qi] = candidates[qi][..cursor[qi].min(k)]
                    .iter()
                    .map(|&id| QueueEntry { query: q, id, dist: 0.0 })
                    .collect();
            }
            pending = still_pending;
        }
        assert!((0..nq).all(|q| cursor[q] == candidates[q].len()), "all candidates consumed");
    }

    /// Sharded ranking followed by `merge_topk` must equal ranking the
    /// union of candidates in one engine, for disjoint shard row ranges.
    #[test]
    fn merge_topk_equals_unsharded_ranking() {
        let (data, queries, candidates) = scenario(77);
        let metric = SquaredL2;
        let k = 10;
        let whole = shortlist_serial(&data, &queries, &candidates, k, &metric);
        // Split each query's candidates into 3 "shards" by id range.
        let bounds = [0u32, 100, 200, data.len() as u32];
        for (q, cands) in candidates.iter().enumerate() {
            let lists: Vec<Vec<Neighbor>> = (0..3)
                .map(|s| {
                    let shard: Vec<u32> = cands
                        .iter()
                        .copied()
                        .filter(|&id| bounds[s] <= id && id < bounds[s + 1])
                        .collect();
                    rank_one_filtered(&data, queries.row(q), &shard, k, &metric, None)
                })
                .collect();
            assert_eq!(merge_topk(&lists, k), whole[q], "query {q} diverged");
        }
    }

    /// A NaN-poisoned candidate — the payload `vecstore::fault` leaves
    /// behind when a short read's error is ignored — must never evict a
    /// finite neighbor, in any engine, and must not destabilize the merge.
    #[test]
    fn nan_poisoned_candidate_never_evicts_finite_neighbors() {
        use vecstore::io::write_fvecs;
        use vecstore::{FaultKind, FaultPlan, FaultyDataset, OocDataset, RowSource};

        // Write a clean corpus to disk and read row 0 through a fault plan
        // that always injects a short read: the error-dropping caller keeps
        // the NaN-poisoned buffer. This is the exact poison pattern
        // `FaultKind::ShortRead` produces.
        let clean = synth::gaussian(6, 32, 1.0, 40);
        let dir = std::env::temp_dir().join("shortlist_fault_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("poison.fvecs");
        write_fvecs(&path, &clean).unwrap();
        let ooc = OocDataset::open(&path).unwrap();
        let faulty =
            FaultyDataset::new(&ooc, FaultPlan::none(7).with_rate(FaultKind::ShortRead, 1.0));
        let mut poisoned = vec![0.0f32; clean.dim()];
        let err = faulty.read_row_into(0, &mut poisoned).unwrap_err();
        assert!(vecstore::is_transient(&err), "short read must be retryable");
        assert!(poisoned.iter().any(|v| v.is_nan()), "short read must poison the tail");
        std::fs::remove_file(&path).ok();

        let mut rows: Vec<Vec<f32>> = (0..clean.len()).map(|i| clean.row(i).to_vec()).collect();
        rows[0] = poisoned;
        let data = Dataset::from_rows(&rows);
        let queries = data.gather(&[1]);
        let all: Vec<u32> = (0..data.len() as u32).collect();
        let candidates = vec![all];
        let k = 10;

        // With ≥ k finite candidates available, the poisoned one (NaN
        // distance) must not appear at all: results equal ranking the
        // finite candidates alone.
        let finite: Vec<u32> = (1..data.len() as u32).collect();
        let want = shortlist_serial(&data, &queries, &[finite], k, &SquaredL2);
        assert_eq!(want[0].len(), k);
        let serial = shortlist_serial(&data, &queries, &candidates, k, &SquaredL2);
        assert_eq!(serial, want);
        for got in [
            shortlist_select(&data, &queries, &candidates, k, &SquaredL2),
            shortlist_per_query(&data, &queries, &candidates, k, &SquaredL2, 3),
            shortlist_workqueue(&data, &queries, &candidates, k, &SquaredL2, 2, 64),
            shortlist_workqueue(&data, &queries, &candidates, k, &SquaredL2, 2, k + 1),
        ] {
            assert_eq!(got, serial);
        }

        // Asking for every row may surface the poisoned candidate, but
        // only in last place — after every finite neighbor.
        let full = shortlist_serial(&data, &queries, &candidates, data.len(), &SquaredL2);
        let (tail, head) = full[0].split_last().unwrap();
        assert!(tail.dist.is_nan() && tail.id == 0, "NaN entry must rank last");
        assert!(head.iter().all(|n| n.dist.is_finite()));

        // Sharded ranking + merge must reproduce the same list even when
        // one shard carries the NaN entry.
        let shards: Vec<Vec<Neighbor>> = [0u32..16, 16..32]
            .into_iter()
            .map(|r| {
                let ids: Vec<u32> = r.collect();
                rank_one_filtered(&data, queries.row(0), &ids, data.len(), &SquaredL2, None)
            })
            .collect();
        // (compare by id and bit pattern: `NaN == NaN` is false, so a plain
        // assert_eq! on the lists would reject even a perfect match)
        let merged = merge_topk(&shards, data.len());
        assert_eq!(merged.len(), full[0].len());
        for (a, b) in merged.iter().zip(&full[0]) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.dist.to_bits(), b.dist.to_bits());
        }
    }

    /// Every filtered engine must (a) agree with the unfiltered engine run
    /// on manually filtered candidate lists, and (b) never surface a
    /// tombstoned id — including when NaN-poisoned rows are tombstoned.
    #[test]
    fn filtered_engines_equal_manual_filtering_and_hide_deleted() {
        let (data, queries, candidates) = scenario(31);
        let mut deleted = Tombstones::new();
        for id in [0u32, 17, 64, 128, 255] {
            deleted.set(id);
        }
        let manual: Vec<Vec<u32>> = candidates
            .iter()
            .map(|c| c.iter().copied().filter(|&id| !deleted.contains(id)).collect())
            .collect();
        let k = 8;
        let want = shortlist_serial(&data, &queries, &manual, k, &SquaredL2);
        for got in [
            shortlist_serial_filtered(&data, &queries, &candidates, k, &SquaredL2, Some(&deleted)),
            shortlist_per_query_filtered(
                &data,
                &queries,
                &candidates,
                k,
                &SquaredL2,
                3,
                Some(&deleted),
            ),
            shortlist_workqueue_filtered(
                &data,
                &queries,
                &candidates,
                k,
                &SquaredL2,
                2,
                64,
                Some(&deleted),
            ),
            shortlist_workqueue_filtered(
                &data,
                &queries,
                &candidates,
                k,
                &SquaredL2,
                2,
                k + 1,
                Some(&deleted),
            ),
        ] {
            assert_eq!(got, want);
            for hits in &got {
                assert!(hits.iter().all(|n| !deleted.contains(n.id as u32)));
            }
        }
        // An empty bitmap must be bit-identical to the unfiltered path.
        let empty = Tombstones::new();
        let plain = shortlist_serial(&data, &queries, &candidates, k, &SquaredL2);
        assert_eq!(
            shortlist_serial_filtered(&data, &queries, &candidates, k, &SquaredL2, Some(&empty)),
            plain
        );
    }

    #[test]
    fn merge_topk_edge_cases() {
        let n = |id: usize, dist: f32| Neighbor { id, dist };
        // Empty input and empty lists.
        assert!(merge_topk(&[], 5).is_empty());
        assert!(merge_topk(&[vec![], vec![]], 5).is_empty());
        // Fewer total entries than k: all come back, in order.
        let merged = merge_topk(&[vec![n(3, 0.5)], vec![], vec![n(1, 0.2)]], 10);
        assert_eq!(merged, vec![n(1, 0.2), n(3, 0.5)]);
        // Equal distances break ties by ascending id across lists.
        let merged = merge_topk(&[vec![n(9, 1.0)], vec![n(2, 1.0)], vec![n(5, 1.0)]], 2);
        assert_eq!(merged, vec![n(2, 1.0), n(5, 1.0)]);
        // k = 0 returns nothing.
        assert!(merge_topk(&[vec![n(0, 0.1)]], 0).is_empty());
    }
}
