#![warn(missing_docs)]

//! Short-list search engines.
//!
//! Short-list search — ranking each query's candidate set by exact distance
//! and keeping the k best — dominates LSH query time (95%+ per the paper,
//! Section V-B). Three engines implement it:
//!
//! * [`engine::shortlist_serial`]: the per-query size-k max-heap baseline
//!   (the paper's single-core CPU reference, "CPU-lshkit");
//! * [`engine::shortlist_per_query`]: one worker per query batch — the
//!   paper's "naive" per-thread-per-query GPU kernel, which suffers load
//!   imbalance when candidate counts differ across queries;
//! * [`engine::shortlist_workqueue`]: the paper's contribution (Figure 3) —
//!   a bounded global work queue of `(query, candidate)` pairs processed in
//!   rounds of *parallel distance evaluation → clustered sort → compact*,
//!   carrying each query's current k-best into the next round.
//!
//! The GPU primitives the work-queue pipeline relies on (parallel map,
//! prefix scan, stream compaction, clustered sort) are implemented as
//! standalone CPU analogs in [`primitives`].

pub mod engine;
pub mod primitives;

pub use engine::{
    merge_topk, shortlist_per_query, shortlist_per_query_filtered, shortlist_select,
    shortlist_serial, shortlist_serial_filtered, shortlist_workqueue, shortlist_workqueue_filtered,
};
pub use primitives::{clustered_sort, compact, exclusive_scan, parallel_fill_with, parallel_map};
