//! Property-based tests: the three short-list engines are exact over
//! arbitrary candidate multisets and agree with a sort-based reference.

use proptest::prelude::*;
use shortlist::{
    clustered_sort, compact, exclusive_scan, shortlist_per_query, shortlist_select,
    shortlist_serial, shortlist_workqueue,
};
use vecstore::{Dataset, Metric, Neighbor, SquaredL2};

type Scenario = (Vec<Vec<f32>>, Vec<Vec<f32>>, Vec<Vec<u32>>);

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..40, 1usize..8).prop_flat_map(|(n, nq)| {
        let data = prop::collection::vec(prop::collection::vec(-50.0f32..50.0, 4), n..=n);
        let queries = prop::collection::vec(prop::collection::vec(-50.0f32..50.0, 4), nq..=nq);
        let candidates =
            prop::collection::vec(prop::collection::vec(0u32..n as u32, 0..3 * n), nq..=nq);
        (data, queries, candidates)
    })
}

fn reference(
    data: &Dataset,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
) -> Vec<Vec<Neighbor>> {
    candidates
        .iter()
        .enumerate()
        .map(|(q, cands)| {
            let mut unique = cands.clone();
            unique.sort_unstable();
            unique.dedup();
            let mut hits: Vec<Neighbor> = unique
                .into_iter()
                .map(|id| Neighbor {
                    id: id as usize,
                    dist: SquaredL2.distance(queries.row(q), data.row(id as usize)),
                })
                .collect();
            hits.sort_unstable();
            hits.truncate(k);
            hits
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_engines_match_reference((rows, qrows, candidates) in scenario(), k in 1usize..12) {
        let data = Dataset::from_rows(&rows);
        let queries = Dataset::from_rows(&qrows);
        let want = reference(&data, &queries, &candidates, k);
        let serial = shortlist_serial(&data, &queries, &candidates, k, &SquaredL2);
        prop_assert_eq!(&serial, &want);
        let per_query = shortlist_per_query(&data, &queries, &candidates, k, &SquaredL2, 3);
        prop_assert_eq!(&per_query, &want);
        let select = shortlist_select(&data, &queries, &candidates, k, &SquaredL2);
        prop_assert_eq!(&select, &want);
        for capacity in [k + 1, 64, 1024] {
            let wq = shortlist_workqueue(&data, &queries, &candidates, k, &SquaredL2, 2, capacity);
            prop_assert_eq!(&wq, &want, "capacity {}", capacity);
        }
    }

    #[test]
    fn exclusive_scan_invariants(xs in prop::collection::vec(0usize..1000, 0..50)) {
        let (scan, total) = exclusive_scan(&xs);
        prop_assert_eq!(scan.len(), xs.len());
        prop_assert_eq!(total, xs.iter().sum::<usize>());
        for i in 0..xs.len() {
            let expect: usize = xs[..i].iter().sum();
            prop_assert_eq!(scan[i], expect);
        }
    }

    #[test]
    fn compact_equals_filter(xs in prop::collection::vec(any::<i32>(), 0..100)) {
        let got = compact(&xs, |x| x % 3 == 0);
        let want: Vec<i32> = xs.iter().copied().filter(|x| x % 3 == 0).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn clustered_sort_is_a_sorted_permutation(
        entries in prop::collection::vec((0u32..8, 0u32..100, 0u32..1000), 0..2000),
        threads in 1usize..5,
    ) {
        let mut v: Vec<shortlist::primitives::QueueEntry> = entries
            .iter()
            .map(|&(query, id, d)| shortlist::primitives::QueueEntry {
                query,
                id,
                dist: d as f32 / 7.0,
            })
            .collect();
        let mut expected = v.clone();
        clustered_sort(&mut v, threads);
        // Sorted by (query, dist, id)…
        for w in v.windows(2) {
            let a = (w[0].query, w[0].dist, w[0].id);
            let b = (w[1].query, w[1].dist, w[1].id);
            prop_assert!(a <= b, "order violated: {a:?} > {b:?}");
        }
        // …and a permutation of the input.
        clustered_sort(&mut expected, 1);
        prop_assert_eq!(v, expected);
    }
}
