//! The service front object, admission control, and the micro-batching
//! dispatcher — with failure containment: per-batch panic isolation, a
//! supervisor that restarts a crashed dispatcher, and the guarantee that
//! a [`Ticket`] always resolves (success, typed error, or timeout —
//! never a hang).

use crate::backend::{Backend, Coverage};
use crate::stats::{ServiceStats, SharedStats};
use bilevel_lsh::{Engine, Probe, QueryOptions};
use knn_telemetry::{Counter, NoopRecorder, Recorder, SpanTimer, Stage, Value};
use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vecstore::{Dataset, Neighbor};

/// Tuning knobs for [`Service::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Dispatch a batch as soon as this many requests are pending.
    pub max_batch: usize,
    /// Dispatch a partial batch after waiting this long for stragglers.
    /// Also the bound on *extra* latency batching may add to any request.
    pub max_wait: Duration,
    /// Admission-queue capacity. A full queue rejects with
    /// [`SubmitError::Overloaded`] — backpressure, never unbounded growth.
    pub queue_capacity: usize,
    /// Short-list engine every batch executes with.
    pub engine: Engine,
    /// Deadline safety factor: a ladder rung is considered affordable when
    /// `estimated_latency * safety_factor <= time_remaining`. Larger values
    /// degrade earlier.
    pub safety_factor: f64,
    /// How many times the supervisor restarts a dispatcher whose run loop
    /// panicked (per-batch panics are contained without a restart — this
    /// bounds crash loops from systemic failures). Past the cap the
    /// service answers everything queued with
    /// [`ResponseError::ServiceDied`] and closes.
    pub max_dispatcher_restarts: u32,
    /// Telemetry sink every batch reports into: queue wait, batch
    /// assembly, rung choices, and (through the backend's
    /// [`QueryOptions`]) per-stage index timings. Defaults to the
    /// zero-overhead [`NoopRecorder`].
    pub recorder: Arc<dyn Recorder>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_millis(1),
            queue_capacity: 1024,
            engine: Engine::Serial,
            safety_factor: 1.5,
            max_dispatcher_restarts: 8,
            recorder: Arc::new(NoopRecorder),
        }
    }
}

impl ServiceConfig {
    /// Builder-style batch-size cap.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Builder-style batching window.
    pub fn max_wait(mut self, d: Duration) -> Self {
        self.max_wait = d;
        self
    }

    /// Builder-style admission-queue capacity.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Builder-style engine selection.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Builder-style dispatcher restart cap.
    pub fn max_dispatcher_restarts(mut self, n: u32) -> Self {
        self.max_dispatcher_restarts = n;
        self
    }

    /// Builder-style telemetry sink.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.queue_capacity > 0, "queue_capacity must be positive");
        assert!(
            self.safety_factor >= 1.0 && self.safety_factor.is_finite(),
            "safety_factor must be >= 1"
        );
    }
}

/// Why a submission was rejected. Submission never blocks: every failure
/// is reported to the producer immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full — shed load or retry later.
    Overloaded,
    /// The dispatcher is gone (the queue is disconnected).
    Closed,
    /// The service object has already been shut down — no new handles.
    ShutDown,
    /// The query vector's dimensionality does not match the index.
    DimMismatch {
        /// Dimensionality the index was built with.
        expected: usize,
        /// Dimensionality submitted.
        got: usize,
    },
    /// `k` violates the configured work-queue engine's capacity contract
    /// (capacity must exceed `k` — the same invariant
    /// [`Engine::validate`] enforces, checked here at admission instead of
    /// panicking the dispatcher).
    KExceedsCapacity {
        /// Requested neighbor count.
        k: usize,
        /// The configured work-queue capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "admission queue full"),
            SubmitError::Closed => write!(f, "service closed"),
            SubmitError::ShutDown => write!(f, "service already shut down"),
            SubmitError::DimMismatch { expected, got } => {
                write!(f, "query dimension {got} does not match index dimension {expected}")
            }
            SubmitError::KExceedsCapacity { k, capacity } => {
                write!(f, "k ({k}) must be below the work-queue capacity ({capacity})")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *accepted* request failed to produce an answer. Unlike
/// [`SubmitError`] (reported at admission), these resolve a [`Ticket`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseError {
    /// The backend panicked executing this request's batch group. Only
    /// that group's requests fail; the dispatcher keeps serving.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The dispatcher died (or exhausted its restart budget) before
    /// answering. The request was not executed.
    ServiceDied,
    /// [`Ticket::wait_timeout`] gave up before the response arrived. The
    /// query may still complete; the ticket is consumed regardless.
    WaitTimeout,
}

impl std::fmt::Display for ResponseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResponseError::Panicked { message } => write!(f, "backend panicked: {message}"),
            ResponseError::ServiceDied => write!(f, "service died before answering"),
            ResponseError::WaitTimeout => write!(f, "timed out waiting for the response"),
        }
    }
}

impl std::error::Error for ResponseError {}

/// Either rejection at admission or failure after acceptance — the
/// end-to-end error type of [`Handle::query_blocking`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Rejected at admission.
    Submit(SubmitError),
    /// Accepted but failed to produce an answer.
    Response(ResponseError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Submit(e) => write!(f, "{e}"),
            ServeError::Response(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SubmitError> for ServeError {
    fn from(e: SubmitError) -> Self {
        ServeError::Submit(e)
    }
}

impl From<ResponseError> for ServeError {
    fn from(e: ResponseError) -> Self {
        ServeError::Response(e)
    }
}

/// The service level a response was answered at: rung 0 is the full
/// configured probe budget; higher rungs are successively degraded rungs
/// of [`Probe::ladder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ServiceLevel(pub usize);

impl ServiceLevel {
    /// Whether this is the full (undegraded) service level.
    pub fn is_full(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for ServiceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_full() {
            write!(f, "full")
        } else {
            write!(f, "degraded-{}", self.0)
        }
    }
}

/// One answered query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Approximate k-nearest neighbors, ascending distance. At
    /// [`ServiceLevel::is_full`] and full [`Coverage`] these are
    /// bit-identical to the serial single-query answer of the underlying
    /// index.
    pub neighbors: Vec<Neighbor>,
    /// Deduplicated short-list candidate count for this query.
    pub candidates: usize,
    /// The ladder rung this request was answered at.
    pub level: ServiceLevel,
    /// The concrete probe configuration of that rung.
    pub probe: Probe,
    /// How much of the backend's fan-out contributed (partial when a
    /// circuit breaker had a shard open).
    pub coverage: Coverage,
    /// End-to-end latency, submission to response.
    pub latency: Duration,
    /// Size of the micro-batch this request rode in.
    pub batch_size: usize,
}

type Reply = Result<QueryResponse, ResponseError>;

struct Job {
    vector: Vec<f32>,
    k: usize,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: SyncSender<Reply>,
}

/// A pending response. Dropping the ticket abandons the response (the
/// query still executes).
///
/// A ticket always resolves: if the dispatcher dies — even by panic,
/// even mid-batch — every pending job's reply channel is either answered
/// with [`ResponseError::ServiceDied`] or dropped, which
/// [`Ticket::wait`] reports as the same typed error. Waiting can never
/// hang on a dead service.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Reply>,
}

impl Ticket {
    /// Blocks until the request resolves.
    ///
    /// # Errors
    ///
    /// [`ResponseError::Panicked`] when the backend panicked executing
    /// this request's group; [`ResponseError::ServiceDied`] when the
    /// dispatcher terminated without answering.
    pub fn wait(self) -> Result<QueryResponse, ResponseError> {
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(_) => Err(ResponseError::ServiceDied),
        }
    }

    /// Blocks until the request resolves or `timeout` elapses
    /// ([`ResponseError::WaitTimeout`]). Never blocks past the timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Result<QueryResponse, ResponseError> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => reply,
            Err(RecvTimeoutError::Timeout) => Err(ResponseError::WaitTimeout),
            Err(RecvTimeoutError::Disconnected) => Err(ResponseError::ServiceDied),
        }
    }

    /// Non-blocking poll; `None` while the batch is still in flight.
    pub fn try_wait(&self) -> Option<Reply> {
        self.rx.try_recv().ok()
    }
}

/// A cloneable submitter for producer threads. All handles feed the same
/// bounded admission queue.
#[derive(Clone)]
pub struct Handle {
    tx: SyncSender<Job>,
    stats: Arc<SharedStats>,
    dim: usize,
    engine: Engine,
}

impl Handle {
    /// Submits one query. Never blocks: a full queue returns
    /// [`SubmitError::Overloaded`] immediately.
    pub fn submit(
        &self,
        vector: &[f32],
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        if vector.len() != self.dim {
            return Err(SubmitError::DimMismatch { expected: self.dim, got: vector.len() });
        }
        if let Engine::WorkQueue { capacity, .. } = self.engine {
            if capacity <= k {
                return Err(SubmitError::KExceedsCapacity { k, capacity });
            }
        }
        let (reply, rx) = sync_channel(1);
        let job = Job { vector: vector.to_vec(), k, deadline, enqueued: Instant::now(), reply };
        // Depth is incremented before the send so the dispatcher's
        // decrement (which can race ahead of us) never underflows.
        self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(job) {
            Ok(()) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx })
            }
            Err(TrySendError::Full(_)) => {
                self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                Err(SubmitError::Closed)
            }
        }
    }

    /// Submit-and-wait convenience.
    pub fn query_blocking(
        &self,
        vector: &[f32],
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<QueryResponse, ServeError> {
        Ok(self.submit(vector, k, deadline)?.wait()?)
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot()
    }
}

/// The concurrent query service: a bounded admission queue in front of a
/// micro-batching dispatcher thread driving a [`Backend`].
///
/// # Lifecycle
///
/// [`Service::start`] spawns the dispatcher under a supervisor: a panic
/// escaping one batch fails only that batch's requests (typed
/// [`ResponseError::Panicked`]); a panic escaping the run loop restarts
/// the dispatcher in place, up to
/// [`ServiceConfig::max_dispatcher_restarts`] times, after which queued
/// requests resolve with [`ResponseError::ServiceDied`] and the queue
/// closes. [`Service::shutdown`] (or dropping the service) closes the
/// service's own submission side and joins the dispatcher, which first
/// answers everything already queued. The dispatcher only observes a
/// closed queue once **every** [`Handle`] clone has been dropped too —
/// drop handles before shutting down, or shutdown will wait for them.
pub struct Service {
    tx: Option<SyncSender<Job>>,
    stats: Arc<SharedStats>,
    dim: usize,
    engine: Engine,
    dispatcher: Option<JoinHandle<()>>,
}

impl Service {
    /// Starts the service over `backend`.
    ///
    /// # Panics
    ///
    /// Panics on a zero `max_batch`/`queue_capacity` or a `safety_factor`
    /// below 1.
    pub fn start<B: Backend>(backend: B, config: ServiceConfig) -> Self {
        config.validate();
        let (tx, rx) = sync_channel(config.queue_capacity);
        let stats = Arc::new(SharedStats::default());
        let dim = backend.dim();
        let engine = config.engine;
        let ladder = backend.probe().ladder();
        let dispatcher_stats = Arc::clone(&stats);
        let dispatcher = std::thread::Builder::new()
            .name("knn-serve-dispatcher".into())
            .spawn(move || {
                supervise(Dispatcher {
                    backend,
                    estimates: vec![0.0; ladder.len()],
                    ladder,
                    stats: dispatcher_stats,
                    rx,
                    config,
                })
            })
            .expect("failed to spawn dispatcher thread");
        Self { tx: Some(tx), stats, dim, engine, dispatcher: Some(dispatcher) }
    }

    /// A new submitter handle for a producer thread.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] when the service has already shut down.
    pub fn handle(&self) -> Result<Handle, SubmitError> {
        let tx = self.tx.clone().ok_or(SubmitError::ShutDown)?;
        Ok(Handle { tx, stats: Arc::clone(&self.stats), dim: self.dim, engine: self.engine })
    }

    /// Submits one query through the service's own handle.
    pub fn submit(
        &self,
        vector: &[f32],
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        self.handle()?.submit(vector, k, deadline)
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot()
    }

    /// Closes submission and joins the dispatcher after it drains the
    /// queue. Blocks until every outstanding [`Handle`] is dropped.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Best-effort text from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The dispatcher supervisor: reruns the dispatch loop after an escaped
/// panic (per-batch panics are contained inside [`Dispatcher::execute`]
/// and do not reach here), up to the configured restart cap. Requests
/// in flight when a panic escapes lose their reply channels, which their
/// tickets observe as [`ResponseError::ServiceDied`] — never a hang. On
/// giving up, everything still queued is answered `ServiceDied` and the
/// queue closes.
fn supervise<B: Backend>(mut dispatcher: Dispatcher<B>) {
    let max_restarts = dispatcher.config.max_dispatcher_restarts;
    let mut restarts = 0u32;
    loop {
        match std::panic::catch_unwind(AssertUnwindSafe(|| dispatcher.run())) {
            // Clean exit: queue closed and drained.
            Ok(()) => return,
            Err(_panic) => {
                {
                    let mut inner =
                        dispatcher.stats.inner.lock().unwrap_or_else(|e| e.into_inner());
                    inner.dispatcher_restarts += 1;
                }
                if restarts >= max_restarts {
                    // Crash loop: answer everything queued with a typed
                    // error, then close the queue by returning.
                    while let Ok(job) = dispatcher.rx.try_recv() {
                        dispatcher.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        let _ = job.reply.try_send(Err(ResponseError::ServiceDied));
                    }
                    return;
                }
                restarts += 1;
            }
        }
    }
}

/// The dispatcher: drains the admission queue into dynamic micro-batches
/// and executes them.
struct Dispatcher<B> {
    backend: B,
    config: ServiceConfig,
    /// EWMA per-request latency estimate per ladder rung, seconds. Zero
    /// means "not yet measured" — an unmeasured rung is assumed
    /// affordable, so cold services start at full level.
    estimates: Vec<f64>,
    ladder: Vec<Probe>,
    stats: Arc<SharedStats>,
    rx: Receiver<Job>,
}

impl<B: Backend> Dispatcher<B> {
    fn run(&mut self) {
        loop {
            // Block for the batch's first request; a closed+drained queue
            // ends the service.
            let first = match self.rx.recv() {
                Ok(job) => job,
                Err(_) => return,
            };
            self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            let mut batch = vec![first];
            let assembly = SpanTimer::start(&*self.config.recorder, Stage::BatchAssembly);
            // Collect stragglers until the batch fills or the window
            // closes. The window never extends past a batched request's
            // deadline: waiting past it could not help that request.
            let mut window_end = Instant::now() + self.config.max_wait;
            if let Some(d) = batch[0].deadline {
                window_end = window_end.min(d);
            }
            while batch.len() < self.config.max_batch {
                let now = Instant::now();
                if now >= window_end {
                    break;
                }
                match self.rx.recv_timeout(window_end - now) {
                    Ok(job) => {
                        self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        if let Some(d) = job.deadline {
                            window_end = window_end.min(d);
                        }
                        batch.push(job);
                    }
                    // Timeout closes the window; disconnect means this is
                    // the final batch (the outer recv will then return Err).
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            drop(assembly);
            self.execute(batch);
        }
    }

    /// Picks the fullest ladder rung whose estimated latency fits the
    /// request's remaining deadline budget; `None` deadlines always get
    /// full service.
    fn choose_rung(&self, deadline: Option<Instant>, now: Instant) -> usize {
        let Some(d) = deadline else { return 0 };
        let remaining = d.saturating_duration_since(now).as_secs_f64();
        for (rung, &est) in self.estimates.iter().enumerate() {
            if est * self.config.safety_factor <= remaining {
                return rung;
            }
        }
        self.estimates.len() - 1
    }

    fn execute(&mut self, batch: Vec<Job>) {
        let recorder = Arc::clone(&self.config.recorder);
        let rec: &dyn Recorder = &*recorder;
        let batch_size = batch.len();
        let now = Instant::now();
        rec.add(Counter::BatchesDispatched, 1);
        rec.observe(Value::BatchSize, batch_size as u64);
        // Per-request service level, then group by (rung, k): requests in
        // one group share one backend call. BTreeMap keeps execution order
        // deterministic.
        let mut groups: BTreeMap<(usize, usize), Vec<Job>> = BTreeMap::new();
        for job in batch {
            rec.time(Stage::QueueWait, now.duration_since(job.enqueued));
            let rung = self.choose_rung(job.deadline, now);
            groups.entry((rung, job.k)).or_default().push(job);
        }
        {
            let mut inner = self.stats.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.batches += 1;
            if inner.batch_size_counts.len() <= batch_size {
                inner.batch_size_counts.resize(batch_size + 1, 0);
            }
            inner.batch_size_counts[batch_size] += 1;
        }
        for ((rung, k), jobs) in groups {
            let probe = self.ladder[rung];
            rec.observe(Value::Rung, rung as u64);
            if rung > 0 {
                rec.add(Counter::DegradedResponses, jobs.len() as u64);
            }
            let mut queries = Dataset::new(self.backend.dim());
            for job in &jobs {
                queries.push(&job.vector);
            }
            let options =
                QueryOptions::new(k).engine(self.config.engine).probe(probe).recorder(rec);
            let exec_start = Instant::now();
            // Contain backend panics to this group: its jobs resolve with
            // a typed error, every other group (and the dispatcher) lives.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                self.backend.query_batch_opts(&queries, &options)
            }));
            let outcome = match result {
                Ok(outcome) => outcome,
                Err(payload) => {
                    let message = panic_message(payload);
                    let mut inner = self.stats.inner.lock().unwrap_or_else(|e| e.into_inner());
                    inner.panicked += jobs.len() as u64;
                    drop(inner);
                    for job in jobs {
                        let _ = job
                            .reply
                            .try_send(Err(ResponseError::Panicked { message: message.clone() }));
                    }
                    continue;
                }
            };
            let per_request = exec_start.elapsed().as_secs_f64() / jobs.len() as f64;
            // EWMA keeps the estimate fresh under drifting load without a
            // history buffer.
            let est = &mut self.estimates[rung];
            *est = if *est == 0.0 { per_request } else { 0.7 * *est + 0.3 * per_request };
            let finished = Instant::now();
            let mut inner = self.stats.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.responses_by_level.len() <= rung {
                inner.responses_by_level.resize(rung + 1, 0);
            }
            for (job, neighbors, candidates) in
                itertools_zip(jobs, outcome.neighbors, outcome.candidates)
            {
                let latency = finished.duration_since(job.enqueued);
                inner.completed += 1;
                inner.responses_by_level[rung] += 1;
                if rung > 0 {
                    inner.shed += 1;
                }
                if !outcome.coverage.is_full() {
                    inner.partial_responses += 1;
                }
                if job.deadline.is_some_and(|d| finished > d) {
                    inner.deadline_missed += 1;
                }
                inner.latency.record(latency);
                let response = QueryResponse {
                    neighbors,
                    candidates,
                    level: ServiceLevel(rung),
                    probe,
                    coverage: outcome.coverage,
                    latency,
                    batch_size,
                };
                // An abandoned ticket (receiver dropped) is not an error.
                let _ = job.reply.try_send(Ok(response));
            }
        }
    }
}

/// Three-way zip without a dependency.
fn itertools_zip<A, B, C>(a: Vec<A>, b: Vec<B>, c: Vec<C>) -> impl Iterator<Item = (A, B, C)> {
    a.into_iter().zip(b).zip(c).map(|((x, y), z)| (x, y, z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BatchOutcome;
    use bilevel_lsh::{BiLevelConfig, BiLevelIndex};
    use vecstore::synth::{self, ClusteredSpec};

    fn corpus() -> (Dataset, Dataset) {
        let all = synth::clustered(&ClusteredSpec::small(400), 11);
        all.split_at(350)
    }

    #[test]
    fn single_request_matches_direct_query() {
        let (data, queries) = corpus();
        let cfg = BiLevelConfig::paper_default(2.0);
        let index = BiLevelIndex::build_owned(data.clone(), &cfg);
        let direct = BiLevelIndex::build(&data, &cfg);
        let service = Service::start(index, ServiceConfig::default());
        for q in 0..5 {
            let resp = service.submit(queries.row(q), 7, None).unwrap().wait().unwrap();
            assert_eq!(resp.neighbors, direct.query(queries.row(q), 7));
            assert!(resp.level.is_full());
            assert!(resp.coverage.is_full());
            assert_eq!(resp.probe, cfg.probe);
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.overloaded, 0);
        assert_eq!(stats.panicked, 0);
        assert_eq!(stats.partial_responses, 0);
        service.shutdown();
    }

    #[test]
    fn dim_mismatch_rejected_at_admission() {
        let (data, _) = corpus();
        let service = Service::start(
            BiLevelIndex::build_owned(data, &BiLevelConfig::standard(2.0)),
            ServiceConfig::default(),
        );
        let err = service.submit(&[1.0, 2.0], 3, None).unwrap_err();
        assert_eq!(err, SubmitError::DimMismatch { expected: 32, got: 2 });
        service.shutdown();
    }

    #[test]
    fn workqueue_capacity_checked_at_admission() {
        let (data, queries) = corpus();
        let cfg = ServiceConfig::default().engine(Engine::WorkQueue { threads: 1, capacity: 16 });
        let service =
            Service::start(BiLevelIndex::build_owned(data, &BiLevelConfig::standard(2.0)), cfg);
        let err = service.submit(queries.row(0), 16, None).unwrap_err();
        assert_eq!(err, SubmitError::KExceedsCapacity { k: 16, capacity: 16 });
        // One below the capacity is fine.
        assert!(service.submit(queries.row(0), 15, None).is_ok());
        service.shutdown();
    }

    /// A backend that blocks on every batch until told to proceed — makes
    /// queue-full conditions deterministic.
    struct GatedBackend {
        dim: usize,
        gate: std::sync::mpsc::Receiver<()>,
    }

    impl Backend for GatedBackend {
        fn dim(&self) -> usize {
            self.dim
        }

        fn probe(&self) -> Probe {
            Probe::Home
        }

        fn supports_probe(&self, _probe: Probe) -> bool {
            true
        }

        fn query_batch_opts(&self, queries: &Dataset, _options: &QueryOptions<'_>) -> BatchOutcome {
            self.gate.recv().expect("gate closed");
            BatchOutcome {
                neighbors: vec![Vec::new(); queries.len()],
                candidates: vec![0; queries.len()],
                coverage: Coverage::full(1),
            }
        }
    }

    // GatedBackend holds a Receiver, which is !Sync; the dispatcher only
    // needs Send, but the trait demands Sync, so wrap in a mutex-free
    // assertion: Receiver is Send, and we never share the backend.
    unsafe impl Sync for GatedBackend {}

    #[test]
    fn full_queue_returns_overloaded() {
        let (gate_tx, gate_rx) = std::sync::mpsc::channel();
        let backend = GatedBackend { dim: 4, gate: gate_rx };
        let service = Service::start(
            backend,
            ServiceConfig::default().queue_capacity(2).max_batch(1).max_wait(Duration::ZERO),
        );
        let v = [0.0f32; 4];
        // First submission is picked up by the dispatcher (which then
        // blocks on the gate); the queue itself holds two more; the next
        // must bounce. Submit until the queue reports full.
        let mut tickets = Vec::new();
        let mut overloaded = false;
        for _ in 0..64 {
            match service.submit(&v, 1, None) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::Overloaded) => {
                    overloaded = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
            // Give the dispatcher a moment to pull at most one job.
            if tickets.len() > 3 {
                break;
            }
        }
        assert!(overloaded, "bounded queue never reported Overloaded");
        assert!(service.stats().overloaded >= 1);
        // Open the gate for every pending batch and drain.
        for _ in 0..tickets.len() {
            gate_tx.send(()).unwrap();
        }
        for t in tickets {
            t.wait().unwrap();
        }
        service.shutdown();
    }

    #[test]
    fn tight_deadline_degrades_service_level() {
        let (data, queries) = corpus();
        let cfg = BiLevelConfig::paper_default(2.0).probe(Probe::Multi(16));
        let index = BiLevelIndex::build_owned(data, &cfg);
        let service = Service::start(index, ServiceConfig::default());
        // Prime the rung-0 latency estimate.
        for q in 0..3 {
            service.submit(queries.row(q), 5, None).unwrap().wait().unwrap();
        }
        // A deadline in the past leaves zero budget: the dispatcher must
        // shed probe budget rather than run the full rung it now knows to
        // be non-instant.
        let past = Instant::now() - Duration::from_millis(1);
        let resp = service.submit(queries.row(3), 5, Some(past)).unwrap().wait().unwrap();
        assert!(!resp.level.is_full(), "expired deadline still got full service");
        assert_ne!(resp.probe, cfg.probe);
        let stats = service.stats();
        assert!(stats.shed >= 1);
        assert!(stats.deadline_missed >= 1);
        assert_eq!(stats.responses_by_level[0], 3);
        service.shutdown();
    }

    #[test]
    fn shutdown_waits_for_outstanding_handles_and_drains() {
        let (data, queries) = corpus();
        let index = BiLevelIndex::build_owned(data, &BiLevelConfig::standard(2.0));
        let service = Service::start(index, ServiceConfig::default());
        let handle = service.handle().unwrap();
        // Shut down on a helper thread (it blocks until the handle drops).
        let joiner = std::thread::spawn(move || service.shutdown());
        std::thread::sleep(Duration::from_millis(10));
        drop(handle.submit(queries.row(0), 3, None)); // may race shutdown either way
        drop(handle);
        joiner.join().unwrap();
    }

    #[test]
    fn stats_snapshot_counts_batches() {
        let (data, queries) = corpus();
        let index = BiLevelIndex::build_owned(data, &BiLevelConfig::standard(2.0));
        let service = Service::start(index, ServiceConfig::default().max_batch(4));
        let tickets: Vec<Ticket> =
            (0..8).map(|q| service.submit(queries.row(q), 3, None).unwrap()).collect();
        for t in tickets {
            assert!(t.wait().unwrap().batch_size >= 1);
        }
        let stats = service.stats();
        assert_eq!(stats.completed, 8);
        assert!(stats.batches >= 2, "4-cap batches cannot cover 8 requests in one");
        assert!(stats.mean_batch_size() >= 1.0);
        assert!(stats.latency_p50 <= stats.latency_p99);
        assert_eq!(stats.queue_depth, 0);
        service.shutdown();
    }

    /// A backend that panics on vectors whose first component is negative
    /// — lets one batch group fail while others succeed.
    struct PoisonPillBackend {
        dim: usize,
    }

    impl Backend for PoisonPillBackend {
        fn dim(&self) -> usize {
            self.dim
        }

        fn probe(&self) -> Probe {
            Probe::Home
        }

        fn supports_probe(&self, _probe: Probe) -> bool {
            true
        }

        fn query_batch_opts(&self, queries: &Dataset, _options: &QueryOptions<'_>) -> BatchOutcome {
            for q in queries.iter() {
                assert!(q[0] >= 0.0, "poison pill");
            }
            BatchOutcome {
                neighbors: vec![Vec::new(); queries.len()],
                candidates: vec![queries.len(); queries.len()],
                coverage: Coverage::full(1),
            }
        }
    }

    #[test]
    fn backend_panic_is_contained_to_its_batch() {
        let service =
            Service::start(PoisonPillBackend { dim: 2 }, ServiceConfig::default().max_batch(4));
        let good = [1.0f32, 0.0];
        let pill = [-1.0f32, 0.0];
        // The panicking request resolves with a typed error...
        let err = service.submit(&pill, 1, None).unwrap().wait().unwrap_err();
        assert!(
            matches!(&err, ResponseError::Panicked { message } if message.contains("poison")),
            "got {err:?}"
        );
        // ...and the dispatcher is still alive to serve later requests.
        for _ in 0..3 {
            let resp = service.submit(&good, 1, None).unwrap().wait().unwrap();
            assert!(resp.coverage.is_full());
        }
        let stats = service.stats();
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.dispatcher_restarts, 0, "per-batch containment needs no restart");
        service.shutdown();
    }

    #[test]
    fn handle_after_shutdown_is_a_typed_error() {
        let (data, _) = corpus();
        let index = BiLevelIndex::build_owned(data, &BiLevelConfig::standard(2.0));
        let mut service = Service::start(index, ServiceConfig::default());
        service.shutdown_inner();
        assert_eq!(service.handle().err(), Some(SubmitError::ShutDown));
        assert_eq!(service.submit(&[0.0; 32], 1, None).unwrap_err(), SubmitError::ShutDown);
    }
}
