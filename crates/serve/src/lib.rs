#![warn(missing_docs)]

//! A concurrent query service over the Bi-level LSH index.
//!
//! The paper's GPU pipeline amortizes per-query cost by pushing whole query
//! batches through a work queue before short-list search; this crate brings
//! the same amortization to a *live* request stream. Producer threads
//! submit single queries through a bounded channel (backpressure: a full
//! queue returns [`SubmitError::Overloaded`] instead of blocking forever);
//! a dispatcher thread coalesces pending requests into dynamic
//! micro-batches — dispatching when `max_batch` requests accumulate or
//! `max_wait` elapses — and executes them through the index's
//! batch-invariant [`query_batch_opts`](bilevel_lsh::BiLevelIndex::query_batch_opts)
//! path, so batched answers stay bit-identical to serial single-query
//! answers.
//!
//! Requests may carry a deadline. The dispatcher tracks an online latency
//! estimate per rung of the probe-budget ladder ([`bilevel_lsh::Probe::ladder`])
//! and sheds multi-probe / hierarchical-escalation budget for requests that
//! would otherwise miss their deadline, tagging each response with the
//! [`ServiceLevel`] actually used.
//!
//! Backends: a single [`bilevel_lsh::BiLevelIndex`], a
//! [`bilevel_lsh::ShardedIndex`] fanning each logical query across `N`
//! engine shards and merging per-shard top-k lists (both answer
//! bit-identically at full service level), or a [`FanoutBackend`]
//! probing shards independently behind per-shard circuit breakers and
//! serving [`Coverage`]-tagged partial results when a shard is down.
//!
//! Failure containment: a backend panic fails only its own batch group
//! (typed [`ResponseError::Panicked`]); a dispatcher crash is restarted
//! by a supervisor; and a [`Ticket`] always resolves — success, typed
//! error, or timeout — never a hang, even when the service dies.
//!
//! Everything is plain `std` — threads and `mpsc` channels, no async
//! runtime — matching the repo's no-new-dependencies constraint.

pub mod backend;
pub mod fanout;
pub mod mutable;
pub mod protocol;
pub mod service;
pub mod stats;

pub use backend::{Backend, BatchOutcome, Coverage};
pub use fanout::{BreakerPhase, FanoutBackend, FanoutConfig, FaultStats, ShardSource};
pub use mutable::{MutableBackend, MutableWriter};
pub use protocol::{ProtocolError, Request, StatsFormat, WirePrecision};
pub use service::{
    Handle, QueryResponse, ResponseError, ServeError, Service, ServiceConfig, ServiceLevel,
    SubmitError, Ticket,
};
pub use stats::ServiceStats;
