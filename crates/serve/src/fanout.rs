//! Sharded fan-out behind per-shard circuit breakers.
//!
//! [`FanoutBackend`] probes each shard of a [`ShardedIndex`]
//! independently (instead of the index's own lockstep fan-out) and
//! merges whatever answered. A shard whose backend keeps panicking trips
//! its breaker: further batches skip it — serving partial,
//! [`Coverage`]-tagged results from the healthy shards — until a timed
//! half-open probe succeeds and re-closes the breaker. One failing shard
//! degrades answers; it never takes the service down.
//!
//! # Breaker states
//!
//! ```text
//!            failure x threshold              open_for elapsed
//!  Closed ───────────────────────▶ Open ───────────────────────▶ HalfOpen
//!    ▲                              ▲                               │
//!    │            probe succeeds    │  probe fails                  │
//!    └──────────────────────────────┴───────────────────────────────┘
//! ```
//!
//! Every transition and every skipped shard is counted in [`FaultStats`].

use crate::backend::{Backend, BatchOutcome, Coverage};
use bilevel_lsh::{BatchResult, Probe, QueryOptions, ShardedIndex};
use knn_telemetry::{Counter, Recorder, SpanTimer, Stage};
use shortlist::merge_topk;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vecstore::{Dataset, Neighbor};

/// Knobs for the per-shard circuit breakers.
#[derive(Debug, Clone)]
pub struct FanoutConfig {
    /// Consecutive failures that trip a shard's breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects a shard before allowing one
    /// half-open probe.
    pub open_for: Duration,
}

impl Default for FanoutConfig {
    fn default() -> Self {
        Self { failure_threshold: 3, open_for: Duration::from_millis(100) }
    }
}

impl FanoutConfig {
    /// Builder-style failure threshold.
    pub fn failure_threshold(mut self, n: u32) -> Self {
        assert!(n > 0, "failure_threshold must be positive");
        self.failure_threshold = n;
        self
    }

    /// Builder-style open duration.
    pub fn open_for(mut self, d: Duration) -> Self {
        self.open_for = d;
        self
    }
}

/// Failure-event counters for the fan-out layer, shared via
/// [`FanoutBackend::fault_stats`]. All counters are monotonic.
#[derive(Debug, Default)]
pub struct FaultStats {
    shard_panics: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_closes: AtomicU64,
    half_open_probes: AtomicU64,
    shards_skipped: AtomicU64,
}

impl FaultStats {
    /// Per-shard batch calls that panicked.
    pub fn shard_panics(&self) -> u64 {
        self.shard_panics.load(Ordering::Relaxed)
    }

    /// Breaker transitions into `Open` (trips and failed probes).
    pub fn breaker_opens(&self) -> u64 {
        self.breaker_opens.load(Ordering::Relaxed)
    }

    /// Breaker recoveries: half-open probes that succeeded and re-closed.
    pub fn breaker_closes(&self) -> u64 {
        self.breaker_closes.load(Ordering::Relaxed)
    }

    /// Half-open probes attempted after `open_for` elapsed.
    pub fn half_open_probes(&self) -> u64 {
        self.half_open_probes.load(Ordering::Relaxed)
    }

    /// Per-shard batch calls skipped because the breaker was open.
    pub fn shards_skipped(&self) -> u64 {
        self.shards_skipped.load(Ordering::Relaxed)
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A shard-addressable index the fan-out layer can drive. Implemented
/// for [`Arc<ShardedIndex>`]; tests wrap it to inject per-shard panics.
pub trait ShardSource: Send + Sync + 'static {
    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// The full-service-level probe.
    fn probe(&self) -> Probe;

    /// Whether a (possibly degraded) probe can run on this index.
    fn supports_probe(&self, probe: Probe) -> bool;

    /// Number of shards the corpus is split into.
    fn num_shards(&self) -> usize;

    /// Batch top-k against one shard: global row ids, final (sqrt'd)
    /// distances, directly mergeable across shards. Always fixed-floor
    /// (batch-invariant) escalation; `options.probe` of `None` means the
    /// built probe.
    fn query_shard_batch_opts(
        &self,
        shard: usize,
        queries: &Dataset,
        options: &QueryOptions<'_>,
    ) -> BatchResult;
}

impl ShardSource for Arc<ShardedIndex> {
    fn dim(&self) -> usize {
        self.data().dim()
    }

    fn probe(&self) -> Probe {
        self.config().probe
    }

    fn supports_probe(&self, probe: Probe) -> bool {
        ShardedIndex::supports_probe(self, probe)
    }

    fn num_shards(&self) -> usize {
        ShardedIndex::num_shards(self)
    }

    fn query_shard_batch_opts(
        &self,
        shard: usize,
        queries: &Dataset,
        options: &QueryOptions<'_>,
    ) -> BatchResult {
        ShardedIndex::query_shard_batch_opts(self, shard, queries, options)
    }
}

/// One breaker's phase, observable via [`FanoutBackend::breaker_states`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Healthy: batches go to the shard.
    Closed,
    /// Tripped: batches skip the shard until the open window elapses.
    Open,
    /// Probing: the next batch tests whether the shard recovered.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed { failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

/// A fan-out backend over a [`ShardSource`]: per-shard batch queries,
/// per-shard circuit breakers, coverage-tagged merges.
///
/// At full coverage, `Probe::Home` / `Probe::Multi` answers are
/// bit-identical to the underlying index's lockstep batch path (the
/// per-shard candidate sets partition the unsharded set). `Probe::Hierarchical` escalates per shard against the
/// fixed floor, which can probe deeper than lockstep — a candidate
/// superset, still exact over its candidates. At partial coverage the
/// merge covers only the healthy shards' rows.
pub struct FanoutBackend<S: ShardSource = Arc<ShardedIndex>> {
    source: S,
    config: FanoutConfig,
    breakers: Mutex<Vec<BreakerState>>,
    stats: Arc<FaultStats>,
}

impl<S: ShardSource> FanoutBackend<S> {
    /// Wraps `source` with one closed breaker per shard.
    pub fn new(source: S, config: FanoutConfig) -> Self {
        let n = source.num_shards();
        assert!(n > 0, "fan-out needs at least one shard");
        Self {
            source,
            config,
            breakers: Mutex::new(vec![BreakerState::Closed { failures: 0 }; n]),
            stats: Arc::new(FaultStats::default()),
        }
    }

    /// The shared failure-event counters (clone the `Arc` to watch them
    /// from outside the service).
    pub fn fault_stats(&self) -> Arc<FaultStats> {
        Arc::clone(&self.stats)
    }

    /// A snapshot of every breaker's phase, indexed by shard.
    pub fn breaker_states(&self) -> Vec<BreakerPhase> {
        self.lock_breakers()
            .iter()
            .map(|s| match s {
                BreakerState::Closed { .. } => BreakerPhase::Closed,
                BreakerState::Open { .. } => BreakerPhase::Open,
                BreakerState::HalfOpen => BreakerPhase::HalfOpen,
            })
            .collect()
    }

    fn lock_breakers(&self) -> std::sync::MutexGuard<'_, Vec<BreakerState>> {
        // Breaker updates are single-assignment transitions; a poisoning
        // panic cannot leave them inconsistent — recover and continue.
        self.breakers.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether `shard` may be queried now. Advances `Open → HalfOpen`
    /// when the open window has elapsed.
    fn admit(&self, shard: usize, now: Instant, rec: &dyn Recorder) -> bool {
        let mut breakers = self.lock_breakers();
        match breakers[shard] {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until } if now >= until => {
                breakers[shard] = BreakerState::HalfOpen;
                FaultStats::bump(&self.stats.half_open_probes);
                true
            }
            BreakerState::Open { .. } => {
                FaultStats::bump(&self.stats.shards_skipped);
                rec.add(Counter::ShardsSkipped, 1);
                false
            }
            // Concurrent batches during a probe ride along with it.
            BreakerState::HalfOpen => true,
        }
    }

    fn on_success(&self, shard: usize, rec: &dyn Recorder) {
        let mut breakers = self.lock_breakers();
        if matches!(breakers[shard], BreakerState::HalfOpen) {
            FaultStats::bump(&self.stats.breaker_closes);
            rec.add(Counter::BreakerCloses, 1);
        }
        breakers[shard] = BreakerState::Closed { failures: 0 };
    }

    fn on_failure(&self, shard: usize, now: Instant, rec: &dyn Recorder) {
        FaultStats::bump(&self.stats.shard_panics);
        let mut breakers = self.lock_breakers();
        let open = BreakerState::Open { until: now + self.config.open_for };
        match breakers[shard] {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.failure_threshold {
                    breakers[shard] = open;
                    FaultStats::bump(&self.stats.breaker_opens);
                    rec.add(Counter::BreakerOpens, 1);
                } else {
                    breakers[shard] = BreakerState::Closed { failures };
                }
            }
            // A failed probe re-opens for another full window.
            BreakerState::HalfOpen => {
                breakers[shard] = open;
                FaultStats::bump(&self.stats.breaker_opens);
                rec.add(Counter::BreakerOpens, 1);
            }
            // Already open (a concurrent batch raced the trip): keep the
            // existing window.
            BreakerState::Open { .. } => {}
        }
    }
}

impl<S: ShardSource> Backend for FanoutBackend<S> {
    fn dim(&self) -> usize {
        self.source.dim()
    }

    fn probe(&self) -> Probe {
        self.source.probe()
    }

    fn supports_probe(&self, probe: Probe) -> bool {
        self.source.supports_probe(probe)
    }

    fn query_batch_opts(&self, queries: &Dataset, options: &QueryOptions<'_>) -> BatchOutcome {
        let rec = options.recorder;
        let total = self.source.num_shards();
        let mut per_shard: Vec<Option<BatchResult>> = Vec::with_capacity(total);
        for shard in 0..total {
            let now = Instant::now();
            if !self.admit(shard, now, rec) {
                per_shard.push(None);
                continue;
            }
            rec.add(Counter::FanoutShardQueries, 1);
            let span = SpanTimer::start(rec, Stage::ShardQuery);
            // Contain a panicking shard: it fails alone, trips its own
            // breaker, and the batch is answered from the rest.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                self.source.query_shard_batch_opts(shard, queries, options)
            }));
            drop(span);
            match result {
                Ok(r) => {
                    self.on_success(shard, rec);
                    per_shard.push(Some(r));
                }
                Err(_) => {
                    self.on_failure(shard, Instant::now(), rec);
                    per_shard.push(None);
                }
            }
        }
        let k = options.k;
        let answered = per_shard.iter().flatten().count();
        let mut neighbors: Vec<Vec<Neighbor>> = Vec::with_capacity(queries.len());
        let mut candidates: Vec<usize> = Vec::with_capacity(queries.len());
        for q in 0..queries.len() {
            let lists: Vec<Vec<Neighbor>> =
                per_shard.iter().flatten().map(|r| r.neighbors[q].clone()).collect();
            neighbors.push(merge_topk(&lists, k));
            candidates.push(per_shard.iter().flatten().map(|r| r.candidates[q]).sum());
        }
        BatchOutcome { neighbors, candidates, coverage: Coverage { answered, total } }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bilevel_lsh::BiLevelConfig;
    use std::sync::atomic::AtomicBool;
    use vecstore::synth::{self, ClusteredSpec};

    fn sharded() -> (Arc<ShardedIndex>, Dataset) {
        let all = synth::clustered(&ClusteredSpec::small(500), 3);
        let (data, queries) = all.split_at(440);
        let idx = ShardedIndex::build(data, &BiLevelConfig::paper_default(2.0), 3);
        (Arc::new(idx), queries)
    }

    /// Delegates to a real sharded index but panics on one designated
    /// shard while the switch is on.
    struct FlakyShard {
        inner: Arc<ShardedIndex>,
        bad_shard: usize,
        failing: AtomicBool,
    }

    impl ShardSource for Arc<FlakyShard> {
        fn dim(&self) -> usize {
            self.inner.data().dim()
        }

        fn probe(&self) -> Probe {
            self.inner.config().probe
        }

        fn supports_probe(&self, probe: Probe) -> bool {
            ShardedIndex::supports_probe(&self.inner, probe)
        }

        fn num_shards(&self) -> usize {
            self.inner.num_shards()
        }

        fn query_shard_batch_opts(
            &self,
            shard: usize,
            queries: &Dataset,
            options: &QueryOptions<'_>,
        ) -> BatchResult {
            if shard == self.bad_shard && self.failing.load(Ordering::Relaxed) {
                panic!("injected shard failure");
            }
            self.inner.query_shard_batch_opts(shard, queries, options)
        }
    }

    fn one_query(queries: &Dataset, q: usize) -> Dataset {
        let mut d = Dataset::new(queries.dim());
        d.push(queries.row(q));
        d
    }

    #[test]
    fn healthy_fanout_matches_lockstep_answers() {
        let (idx, queries) = sharded();
        let fanout = FanoutBackend::new(Arc::clone(&idx), FanoutConfig::default());
        for probe in [Probe::Home, Probe::Multi(8)] {
            let opts = QueryOptions::new(9).probe(probe);
            let got = fanout.query_batch_opts(&queries, &opts);
            let want = idx.query_batch_opts(&queries, &opts);
            assert!(got.coverage.is_full());
            assert_eq!(got.coverage.total, 3);
            assert_eq!(got.neighbors, want.neighbors);
            assert_eq!(got.candidates, want.candidates);
        }
        assert_eq!(fanout.fault_stats().shard_panics(), 0);
        assert!(fanout.breaker_states().iter().all(|&s| s == BreakerPhase::Closed));
    }

    #[test]
    fn panicking_shard_serves_partial_then_recovers() {
        let (idx, queries) = sharded();
        let flaky = Arc::new(FlakyShard {
            inner: Arc::clone(&idx),
            bad_shard: 1,
            failing: AtomicBool::new(true),
        });
        let config =
            FanoutConfig::default().failure_threshold(2).open_for(Duration::from_millis(20));
        let fanout = FanoutBackend::new(Arc::clone(&flaky), config);
        let stats = fanout.fault_stats();
        let q = one_query(&queries, 0);

        // Failures below the threshold: partial answers, breaker still
        // closed (each call retries the shard).
        let opts = QueryOptions::new(5).probe(Probe::Home);
        let first = fanout.query_batch_opts(&q, &opts);
        assert_eq!(first.coverage, Coverage { answered: 2, total: 3 });
        assert_eq!(fanout.breaker_states()[1], BreakerPhase::Closed);

        // Second consecutive failure trips the breaker.
        fanout.query_batch_opts(&q, &opts);
        assert_eq!(fanout.breaker_states()[1], BreakerPhase::Open);
        assert_eq!(stats.breaker_opens(), 1);
        assert_eq!(stats.shard_panics(), 2);

        // While open, the shard is skipped without touching it.
        let skipped = fanout.query_batch_opts(&q, &opts);
        assert_eq!(skipped.coverage, Coverage { answered: 2, total: 3 });
        assert_eq!(stats.shard_panics(), 2, "open breaker must not probe the shard");
        assert!(stats.shards_skipped() >= 1);

        // Heal the shard, wait out the window: the half-open probe
        // succeeds, the breaker closes, and answers are full again —
        // bit-identical to the healthy lockstep fan-out.
        flaky.failing.store(false, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(25));
        let healed = fanout.query_batch_opts(&q, &opts);
        assert!(healed.coverage.is_full());
        assert_eq!(stats.half_open_probes(), 1);
        assert_eq!(stats.breaker_closes(), 1);
        assert_eq!(fanout.breaker_states()[1], BreakerPhase::Closed);
        assert_eq!(healed.neighbors, idx.query_batch_opts(&q, &opts).neighbors);
    }

    #[test]
    fn failed_half_open_probe_reopens_the_breaker() {
        let (idx, queries) = sharded();
        let flaky =
            Arc::new(FlakyShard { inner: idx, bad_shard: 2, failing: AtomicBool::new(true) });
        let config =
            FanoutConfig::default().failure_threshold(1).open_for(Duration::from_millis(10));
        let fanout = FanoutBackend::new(Arc::clone(&flaky), config);
        let stats = fanout.fault_stats();
        let q = one_query(&queries, 1);

        let opts = QueryOptions::new(3).probe(Probe::Home);
        fanout.query_batch_opts(&q, &opts);
        assert_eq!(fanout.breaker_states()[2], BreakerPhase::Open);
        std::thread::sleep(Duration::from_millis(15));
        // Probe fires, shard still broken: back to Open for another window.
        fanout.query_batch_opts(&q, &opts);
        assert_eq!(fanout.breaker_states()[2], BreakerPhase::Open);
        assert_eq!(stats.half_open_probes(), 1);
        assert_eq!(stats.breaker_opens(), 2);
        assert_eq!(stats.breaker_closes(), 0);
    }
}
