//! The index abstraction the dispatcher executes batches against.

use bilevel_lsh::{BatchResult, BiLevelIndex, Engine, Probe, ShardedIndex};
use vecstore::Dataset;

/// An index the service can drive: a single [`BiLevelIndex`] or a
/// [`ShardedIndex`]. Both expose the batch-invariant `query_batch_at`
/// path, so any micro-batch composition returns per-request answers
/// bit-identical to serial single-query answers at the same probe rung.
pub trait Backend: Send + Sync + 'static {
    /// Vector dimensionality accepted by [`crate::Service::submit`].
    fn dim(&self) -> usize;

    /// The full-service-level probe (the probe the index was built with).
    fn probe(&self) -> Probe;

    /// Whether a (possibly degraded) probe can run on this index.
    fn supports_probe(&self, probe: Probe) -> bool;

    /// Batch query at an explicit probe rung, batch-invariant semantics.
    fn query_batch_at(
        &self,
        queries: &Dataset,
        k: usize,
        engine: Engine,
        probe: Probe,
    ) -> BatchResult;
}

impl Backend for BiLevelIndex<'static> {
    fn dim(&self) -> usize {
        self.data().dim()
    }

    fn probe(&self) -> Probe {
        self.config().probe
    }

    fn supports_probe(&self, probe: Probe) -> bool {
        BiLevelIndex::supports_probe(self, probe)
    }

    fn query_batch_at(
        &self,
        queries: &Dataset,
        k: usize,
        engine: Engine,
        probe: Probe,
    ) -> BatchResult {
        BiLevelIndex::query_batch_at(self, queries, k, engine, probe)
    }
}

impl Backend for ShardedIndex {
    fn dim(&self) -> usize {
        self.data().dim()
    }

    fn probe(&self) -> Probe {
        self.config().probe
    }

    fn supports_probe(&self, probe: Probe) -> bool {
        ShardedIndex::supports_probe(self, probe)
    }

    fn query_batch_at(
        &self,
        queries: &Dataset,
        k: usize,
        engine: Engine,
        probe: Probe,
    ) -> BatchResult {
        ShardedIndex::query_batch_at(self, queries, k, engine, probe)
    }
}
