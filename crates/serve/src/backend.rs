//! The index abstraction the dispatcher executes batches against.

use bilevel_lsh::{BatchResult, BiLevelIndex, Neighbor, Probe, QueryOptions, ShardedIndex};
use vecstore::Dataset;

/// How much of the corpus a batch's answers actually cover: `answered`
/// of `total` fan-out units (shards) contributed. Single-node backends
/// are always `1/1`; a sharded fan-out with an open circuit breaker
/// reports fewer — the response is still served, tagged partial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Fan-out units that contributed answers.
    pub answered: usize,
    /// Fan-out units the backend spans.
    pub total: usize,
}

impl Coverage {
    /// Full coverage over `total` units.
    pub fn full(total: usize) -> Self {
        Self { answered: total, total }
    }

    /// Whether every unit contributed (the answer is not partial).
    pub fn is_full(self) -> bool {
        self.answered == self.total
    }
}

impl std::fmt::Display for Coverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.answered, self.total)
    }
}

/// A backend batch answer: per-query neighbor lists and candidate
/// counts, tagged with the [`Coverage`] they were computed at.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-query approximate k-nearest neighbors, ascending distance.
    pub neighbors: Vec<Vec<Neighbor>>,
    /// Per-query deduplicated candidate counts.
    pub candidates: Vec<usize>,
    /// How much of the backend's fan-out contributed.
    pub coverage: Coverage,
}

impl From<BatchResult> for BatchOutcome {
    fn from(r: BatchResult) -> Self {
        Self { neighbors: r.neighbors, candidates: r.candidates, coverage: Coverage::full(1) }
    }
}

/// An index the service can drive: a single [`BiLevelIndex`], a
/// [`ShardedIndex`], or a [`crate::fanout::FanoutBackend`] probing
/// shards independently behind circuit breakers. The dispatcher always
/// sets an explicit probe rung in its [`QueryOptions`], which selects the
/// batch-invariant escalation path — so any micro-batch composition
/// returns per-request answers bit-identical to serial single-query
/// answers (at full coverage).
pub trait Backend: Send + Sync + 'static {
    /// Vector dimensionality accepted by [`crate::Service::submit`].
    fn dim(&self) -> usize;

    /// The full-service-level probe (the probe the index was built with).
    fn probe(&self) -> Probe;

    /// Whether a (possibly degraded) probe can run on this index.
    fn supports_probe(&self, probe: Probe) -> bool;

    /// Batch query under `options` (the service always sets
    /// `options.probe`, giving batch-invariant semantics), tagged with
    /// the coverage achieved. Stage timings and counters flow into
    /// `options.recorder`.
    fn query_batch_opts(&self, queries: &Dataset, options: &QueryOptions<'_>) -> BatchOutcome;
}

impl Backend for BiLevelIndex<'static> {
    fn dim(&self) -> usize {
        self.data().dim()
    }

    fn probe(&self) -> Probe {
        self.config().probe
    }

    fn supports_probe(&self, probe: Probe) -> bool {
        BiLevelIndex::supports_probe(self, probe)
    }

    fn query_batch_opts(&self, queries: &Dataset, options: &QueryOptions<'_>) -> BatchOutcome {
        BiLevelIndex::query_batch_opts(self, queries, options).into()
    }
}

impl Backend for ShardedIndex {
    fn dim(&self) -> usize {
        self.data().dim()
    }

    fn probe(&self) -> Probe {
        self.config().probe
    }

    fn supports_probe(&self, probe: Probe) -> bool {
        ShardedIndex::supports_probe(self, probe)
    }

    fn query_batch_opts(&self, queries: &Dataset, options: &QueryOptions<'_>) -> BatchOutcome {
        ShardedIndex::query_batch_opts(self, queries, options).into()
    }
}

/// Shared-ownership variant so one [`ShardedIndex`] can back a
/// [`crate::Service`] while other paths (shard-query serving, snapshot
/// streaming to a joining replica) hold the same index.
impl Backend for std::sync::Arc<ShardedIndex> {
    fn dim(&self) -> usize {
        self.data().dim()
    }

    fn probe(&self) -> Probe {
        self.config().probe
    }

    fn supports_probe(&self, probe: Probe) -> bool {
        ShardedIndex::supports_probe(self, probe)
    }

    fn query_batch_opts(&self, queries: &Dataset, options: &QueryOptions<'_>) -> BatchOutcome {
        ShardedIndex::query_batch_opts(self, queries, options).into()
    }
}
