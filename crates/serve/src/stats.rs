//! Observability: counters, batch-size histogram, and latency percentiles.

use knn_metrics::LatencyHistogram;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Shared between submitters (atomic counters) and the dispatcher (the
/// mutexed aggregates — written from one thread, so the lock is
/// uncontended in steady state).
#[derive(Default)]
pub(crate) struct SharedStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) overloaded: AtomicU64,
    pub(crate) queue_depth: AtomicUsize,
    pub(crate) inner: Mutex<DispatchStats>,
}

/// Dispatcher-side aggregates.
#[derive(Default)]
pub(crate) struct DispatchStats {
    pub(crate) completed: u64,
    pub(crate) batches: u64,
    pub(crate) shed: u64,
    pub(crate) deadline_missed: u64,
    pub(crate) panicked: u64,
    pub(crate) dispatcher_restarts: u64,
    pub(crate) partial_responses: u64,
    /// `batch_size_counts[s]` = number of batches dispatched with `s`
    /// requests (index 0 unused).
    pub(crate) batch_size_counts: Vec<u64>,
    /// Responses answered at each ladder rung (0 = full level).
    pub(crate) responses_by_level: Vec<u64>,
    pub(crate) latency: LatencyHistogram,
}

impl SharedStats {
    /// Snapshots everything into a [`ServiceStats`].
    pub(crate) fn snapshot(&self) -> ServiceStats {
        // A poisoned lock means a panic elsewhere, not corrupt counters
        // (all writes are single-field increments) — recover and read.
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let batch_size_histogram: Vec<(usize, u64)> = inner
            .batch_size_counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(s, &c)| (s, c))
            .collect();
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: inner.completed,
            overloaded: self.overloaded.load(Ordering::Relaxed),
            shed: inner.shed,
            deadline_missed: inner.deadline_missed,
            panicked: inner.panicked,
            dispatcher_restarts: inner.dispatcher_restarts,
            partial_responses: inner.partial_responses,
            batches: inner.batches,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            batch_size_histogram,
            responses_by_level: inner.responses_by_level.clone(),
            latency_mean: inner.latency.mean(),
            latency_p50: inner.latency.percentile(0.50),
            latency_p95: inner.latency.percentile(0.95),
            latency_p99: inner.latency.percentile(0.99),
            latency_max: inner.latency.max(),
        }
    }
}

/// A point-in-time snapshot of service behavior under load.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Requests accepted by [`crate::Service::submit`].
    pub submitted: u64,
    /// Responses delivered.
    pub completed: u64,
    /// Submissions rejected because the admission queue was full.
    pub overloaded: u64,
    /// Responses answered below full service level (degraded rung).
    pub shed: u64,
    /// Responses delivered after their deadline had already passed.
    pub deadline_missed: u64,
    /// Requests that resolved with [`crate::ResponseError::Panicked`]
    /// because their batch group's backend call panicked.
    pub panicked: u64,
    /// Times the supervisor restarted a dispatcher whose run loop
    /// panicked (per-batch panics are contained without a restart).
    pub dispatcher_restarts: u64,
    /// Responses served at partial [`crate::Coverage`] (at least one
    /// fan-out shard did not contribute, e.g. behind an open breaker).
    pub partial_responses: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Requests currently queued (submitted, not yet picked up).
    pub queue_depth: usize,
    /// `(batch_size, count)` pairs for every batch size observed.
    pub batch_size_histogram: Vec<(usize, u64)>,
    /// Responses per ladder rung, index 0 = full level.
    pub responses_by_level: Vec<u64>,
    /// Mean end-to-end latency (submit → response).
    pub latency_mean: Duration,
    /// Median end-to-end latency.
    pub latency_p50: Duration,
    /// 95th-percentile end-to-end latency.
    pub latency_p95: Duration,
    /// 99th-percentile end-to-end latency.
    pub latency_p99: Duration,
    /// Worst observed end-to-end latency.
    pub latency_max: Duration,
}

impl ServiceStats {
    /// Mean dispatched batch size, or zero with no batches.
    pub fn mean_batch_size(&self) -> f64 {
        let (total, n) = self
            .batch_size_histogram
            .iter()
            .fold((0u64, 0u64), |(t, n), &(s, c)| (t + s as u64 * c, n + c));
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }
}
