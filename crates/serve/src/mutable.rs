//! Mutable single-index backend: the dispatcher keeps answering queries
//! through a shared read lock while a [`MutableWriter`] stages
//! insert/update/delete batches and commits them atomically.
//!
//! # Visibility contract
//!
//! Writes are staged in a [`Txn`] *outside* the index — staging never
//! touches shared state. [`MutableWriter::commit`] applies the whole batch
//! under the write lock and bumps the index epoch once, so a reader batch
//! (which holds the read lock for its entire execution) observes either the
//! pre-commit or the post-commit index, never a half-applied batch. A query
//! submitted after `commit` returns is guaranteed to see the batch.

use crate::backend::{Backend, BatchOutcome};
use bilevel_lsh::{
    BiLevelIndex, CompactionPolicy, InsertError, Probe, QueryOptions, Txn, TxnSummary,
};
use knn_telemetry::{Counter, Recorder};
use std::sync::{Arc, RwLock};
use vecstore::Dataset;

type SharedIndex = Arc<RwLock<BiLevelIndex<'static>>>;

/// Read side: implements [`Backend`] over an `Arc<RwLock<BiLevelIndex>>`.
/// Each batch group takes the read lock once for its whole execution.
pub struct MutableBackend {
    index: SharedIndex,
    /// Immutable under mutation (inserts/updates/deletes never change the
    /// dimensionality or the configuration), so cached outside the lock.
    dim: usize,
    probe: Probe,
}

impl MutableBackend {
    /// Wraps an owned index for concurrent serving with a write path.
    pub fn new(index: BiLevelIndex<'static>) -> Self {
        let dim = index.data().dim();
        let probe = index.config().probe;
        Self { index: Arc::new(RwLock::new(index)), dim, probe }
    }

    /// A writer handle sharing this backend's index. Create it *before*
    /// handing the backend to [`crate::Service::start`] (which consumes the
    /// backend by value).
    pub fn writer(&self) -> MutableWriter {
        MutableWriter { index: Arc::clone(&self.index), staged: None }
    }

    /// The current transaction epoch (advances once per committed batch,
    /// mutation, or compaction).
    pub fn epoch(&self) -> u64 {
        self.lock_read().epoch()
    }

    /// Live (non-tombstoned) row count.
    pub fn live_len(&self) -> usize {
        self.lock_read().live_len()
    }

    fn lock_read(&self) -> std::sync::RwLockReadGuard<'_, BiLevelIndex<'static>> {
        self.index.read().unwrap_or_else(|e| e.into_inner())
    }
}

impl Backend for MutableBackend {
    fn dim(&self) -> usize {
        self.dim
    }

    fn probe(&self) -> Probe {
        self.probe
    }

    fn supports_probe(&self, probe: Probe) -> bool {
        self.lock_read().supports_probe(probe)
    }

    fn query_batch_opts(&self, queries: &Dataset, options: &QueryOptions<'_>) -> BatchOutcome {
        self.lock_read().query_batch_opts(queries, options).into()
    }
}

/// Write side: stages mutations into a [`Txn`] and commits them as one
/// atomic batch. Not `Clone` — one writer owns the staging buffer; readers
/// scale through [`MutableBackend`] instead.
pub struct MutableWriter {
    index: SharedIndex,
    staged: Option<Txn>,
}

impl MutableWriter {
    fn staged(&mut self) -> &mut Txn {
        if self.staged.is_none() {
            let txn = self.index.read().unwrap_or_else(|e| e.into_inner()).begin_txn();
            self.staged = Some(txn);
        }
        self.staged.as_mut().expect("staged just filled")
    }

    /// Stages an insert of a new row.
    ///
    /// # Errors
    ///
    /// [`InsertError::DimMismatch`] when the vector width disagrees with
    /// the index; nothing is staged then.
    pub fn stage_insert(&mut self, v: &[f32]) -> Result<(), InsertError> {
        self.staged().insert(v)
    }

    /// Stages an in-place update of row `id` (revives the row if it was
    /// tombstoned — upsert semantics).
    ///
    /// # Errors
    ///
    /// [`InsertError::DimMismatch`] on vector width disagreement. An
    /// out-of-range `id` is reported at [`MutableWriter::commit`], which
    /// then applies nothing.
    pub fn stage_update(&mut self, id: usize, v: &[f32]) -> Result<(), InsertError> {
        self.staged().update(id, v)
    }

    /// Stages a tombstone delete of row `id` (validated at commit).
    pub fn stage_delete(&mut self, id: usize) {
        self.staged().delete(id);
    }

    /// Number of staged operations waiting for [`MutableWriter::commit`].
    pub fn pending(&self) -> usize {
        self.staged.as_ref().map_or(0, Txn::len)
    }

    /// Commits every staged operation as one atomic batch under the write
    /// lock, reporting insert/delete counts to `rec`. Returns `None` when
    /// nothing was staged. All-or-nothing: on error the index is unchanged
    /// (and the staged batch is dropped — the caller decides whether to
    /// re-stage).
    ///
    /// # Errors
    ///
    /// [`InsertError::IdOutOfRange`] when a staged update/delete names a
    /// row past the pre-commit length, [`InsertError::CorpusTooLarge`]
    /// when staged inserts would overflow the `u32` id space.
    pub fn commit(&mut self, rec: &dyn Recorder) -> Result<Option<TxnSummary>, InsertError> {
        let Some(txn) = self.staged.take() else { return Ok(None) };
        let mut index = self.index.write().unwrap_or_else(|e| e.into_inner());
        let summary = index.commit(txn)?;
        drop(index);
        if rec.enabled() {
            rec.add(Counter::Inserts, summary.inserted as u64);
            rec.add(Counter::Deletes, summary.deleted as u64);
        }
        Ok(Some(summary))
    }

    /// Compacts the index when `policy` says the tombstone fraction or the
    /// live-occupancy skew has drifted past its threshold, rebuilding over
    /// the surviving rows (which renumbers ids — see
    /// [`BiLevelIndex::compact`]). Returns the old ids of the survivors,
    /// in new-id order, when a compaction ran.
    pub fn maybe_compact(
        &self,
        policy: &CompactionPolicy,
        rec: &dyn Recorder,
    ) -> Option<Vec<usize>> {
        let mut index = self.index.write().unwrap_or_else(|e| e.into_inner());
        let survivors = index.maybe_compact(policy)?;
        drop(index);
        rec.add(Counter::Compactions, 1);
        Some(survivors)
    }

    /// Unconditional compaction (same renumbering caveat as
    /// [`MutableWriter::maybe_compact`]).
    ///
    /// # Panics
    ///
    /// Panics if every row is tombstoned — an index cannot be rebuilt over
    /// zero rows.
    pub fn compact(&self, rec: &dyn Recorder) -> Vec<usize> {
        let mut index = self.index.write().unwrap_or_else(|e| e.into_inner());
        let survivors = index.compact();
        drop(index);
        rec.add(Counter::Compactions, 1);
        survivors
    }

    /// The current transaction epoch.
    pub fn epoch(&self) -> u64 {
        self.index.read().unwrap_or_else(|e| e.into_inner()).epoch()
    }

    /// Live (non-tombstoned) row count.
    pub fn live_len(&self) -> usize {
        self.index.read().unwrap_or_else(|e| e.into_inner()).live_len()
    }
}
