//! `bilevel-serve` — line-protocol serving front end for the concurrent
//! query service.
//!
//! ```text
//! bilevel-serve <corpus.fvecs> [--k K] [--shards N] [--batch B] [--wait-us U]
//!               [--queue CAP] [--deadline-ms D] [--probe T]
//!               [--w W] [--groups G] [--tables L] [--m M] [--e8] [--seed S]
//! ```
//!
//! Builds the index in-process, then reads one query vector per stdin line
//! (whitespace-separated floats) and writes one stdout line per query — the
//! same `id:distance` pairs `bilevel query` prints, in input order. Queries
//! are submitted eagerly so consecutive stdin lines coalesce into
//! micro-batches; a closing stats summary goes to stderr.
//!
//! Control lines are recognized instead of a query vector (those that
//! print drain all in-flight responses first, so output order is
//! preserved):
//!
//! * `STATS` — telemetry snapshot in Prometheus text format, to stdout;
//! * `STATS JSON` / `TELEMETRY JSON` — the same snapshot as one JSON line;
//! * `TELEMETRY` — human-readable per-stage breakdown table;
//! * `CONFIG` — one `CONFIG metric=... family=... probe=...` line naming
//!   the build geometry (also echoed to stderr at startup). Queries that
//!   state a metric (`QUERY metric=cosine ...`) are answered only when it
//!   matches the index's — a mismatch is a typed `ERROR`, never silently
//!   wrong distances.
//!
//! Write-path lines (unsharded indexes only — `--shards 1`):
//!
//! * `UPSERT + v0 v1 ...` — stage an insert of a new row;
//! * `UPSERT <id> v0 v1 ...` — stage an in-place update of row `id`
//!   (revives the row if it was deleted);
//! * `DELETE <id>` — stage a tombstone delete of row `id`;
//! * `COMMIT` — apply every staged write as one atomic batch and print a
//!   `COMMITTED ...` summary line;
//! * `COMPACT` — commit staged writes, then rebuild the index over the
//!   surviving rows (renumbers ids densely) and print `COMPACTED ...`.
//!
//! Staged writes are also committed automatically before the next query
//! line is submitted, after draining in-flight responses, so a query
//! observes exactly the write lines above it — no fewer, no more. The
//! dispatcher keeps answering while writes are staged; only the commit
//! itself excludes readers (briefly, under a write lock).
//!
//! Hand-rolled flag parsing keeps the binary dependency-free beyond the
//! workspace crates.

use bilevel_lsh::telemetry::InMemoryRecorder;
use bilevel_lsh::{
    BiLevelConfig, BiLevelIndex, Partition, Probe, Quantizer, ShardedIndex, WidthMode,
};
use knn_serve::protocol::{self, Request, StatsFormat, WirePrecision};
use knn_serve::{
    MutableBackend, MutableWriter, QueryResponse, Service, ServiceConfig, SubmitError, Ticket,
};
use rptree::SplitRule;
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vecstore::io::read_fvecs;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         bilevel-serve <corpus.fvecs> [--k K] [--shards N] [--batch B] [--wait-us U]\n                \
         [--queue CAP] [--deadline-ms D] [--probe T] [--metric SPEC]\n                \
         [--w W] [--groups G] [--tables L] [--m M] [--e8] [--seed S]\n\n\
         --metric picks the index geometry (l2, cosine, ip, or lp:P) and its\n\
         matching level-2 hash family.\n\n\
         Reads one whitespace-separated query vector per stdin line; writes\n\
         one line of id:distance pairs per query to stdout, in input order."
    );
    ExitCode::from(2)
}

/// Pulls `--flag value` pairs out of the free arguments.
struct Flags(Vec<String>);

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.0.iter().position(|a| a == name).and_then(|i| self.0.get(i + 1)).map(|s| s.as_str())
    }
    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}: {v}");
                std::process::exit(2);
            }),
            None => default,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(corpus_path) = args.first() else { return usage() };
    if corpus_path.starts_with("--") {
        return usage();
    }
    match serve(corpus_path, &Flags(args[1..].to_vec())) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve(corpus_path: &str, flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let data = read_fvecs(Path::new(corpus_path))?;
    let dim = data.dim();
    eprintln!("corpus: {} vectors, dim {dim}", data.len());

    let groups: usize = flags.num("--groups", 16);
    let metric = match flags.get("--metric") {
        Some(spec) => protocol::parse_metric(spec).map_err(|e| e.to_string())?,
        None => bilevel_lsh::MetricKind::L2,
    };
    let config = BiLevelConfig {
        l: flags.num("--tables", 10),
        m: flags.num("--m", 8),
        width: WidthMode::Scaled { base: flags.num("--w", 1.0f32), k: flags.num("--k", 10) },
        partition: if groups <= 1 {
            Partition::None
        } else {
            Partition::RpTree { groups, rule: SplitRule::Max }
        },
        quantizer: if flags.has("--e8") { Quantizer::E8 } else { Quantizer::Zm },
        probe: match flags.get("--probe") {
            Some(_) => Probe::Multi(flags.num("--probe", 8usize)),
            None => Probe::Home,
        },
        table_pool: None,
        projection: bilevel_lsh::Projection::Dense,
        metric,
        family: metric.default_family(),
        seed: flags.num("--seed", 0x0b11_e7e1u64),
    };

    let recorder = Arc::new(InMemoryRecorder::new());
    let service_config = ServiceConfig::default()
        .max_batch(flags.num("--batch", 32))
        .max_wait(Duration::from_micros(flags.num("--wait-us", 1000u64)))
        .queue_capacity(flags.num("--queue", 1024))
        .recorder(recorder.clone());
    let shards: usize = flags.num("--shards", 1);

    let t = Instant::now();
    let (service, writer) = if shards > 1 {
        eprintln!("building {shards}-shard index ...");
        (Service::start(ShardedIndex::build(data, &config, shards), service_config), None)
    } else {
        let backend = MutableBackend::new(BiLevelIndex::build_owned(data, &config));
        let writer = backend.writer();
        (Service::start(backend, service_config), Some(writer))
    };
    eprintln!("index built in {:.1}s; serving on stdin", t.elapsed().as_secs_f64());

    let k: usize = flags.num("--k", 10);
    // The line the CONFIG verb answers with (also echoed to stderr at
    // startup): the build geometry a client needs to interpret distances.
    let config_line = format!(
        "CONFIG metric={} family={} probe={} quantizer={} dim={} shards={shards} k={k}",
        protocol::format_metric(config.metric),
        protocol::format_family(config.family),
        protocol::format_probe(Some(config.probe)),
        if flags.has("--e8") { "e8" } else { "zm" },
        dim,
    );
    eprintln!("{config_line}");
    let deadline: Option<Duration> =
        flags.get("--deadline-ms").map(|_| Duration::from_millis(flags.num("--deadline-ms", 0u64)));
    run_loop(service, writer, k, deadline, &recorder, config.metric, &config_line)
}

/// Pumps stdin lines through the service, keeping responses in input
/// order while letting consecutive lines coalesce into micro-batches.
#[allow(clippy::too_many_arguments)]
fn run_loop(
    service: Service,
    mut writer: Option<MutableWriter>,
    k: usize,
    deadline: Option<Duration>,
    recorder: &InMemoryRecorder,
    metric: bilevel_lsh::MetricKind,
    config_line: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let handle = service.handle()?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut pending: VecDeque<Ticket> = VecDeque::new();
    let mut retries = 0u64;
    let mut failed = 0u64;

    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match protocol::parse_request(&line) {
            Ok(request) => request,
            Err(e) => {
                // A malformed line answers with an ERROR line in input
                // order — it never kills the session or truncates into a
                // shorter query vector.
                for ticket in pending.drain(..) {
                    print_response(&mut out, ticket.wait(), &mut failed)?;
                }
                writeln!(out, "ERROR {e}")?;
                out.flush()?;
                continue;
            }
        };
        let vector = match request {
            // Telemetry control lines: flush every in-flight response
            // first so stdout stays in input order, then print the
            // snapshot.
            Request::Stats(format) => {
                for ticket in pending.drain(..) {
                    print_response(&mut out, ticket.wait(), &mut failed)?;
                }
                let snapshot = recorder.snapshot();
                match format {
                    StatsFormat::Prometheus => {
                        out.write_all(snapshot.to_prometheus().as_bytes())?
                    }
                    StatsFormat::Json => writeln!(out, "{}", snapshot.to_json())?,
                    StatsFormat::Table => out.write_all(snapshot.render_table().as_bytes())?,
                }
                out.flush()?;
                continue;
            }
            Request::Config => {
                for ticket in pending.drain(..) {
                    print_response(&mut out, ticket.wait(), &mut failed)?;
                }
                writeln!(out, "{config_line}")?;
                out.flush()?;
                continue;
            }
            Request::Use { .. }
            | Request::List
            | Request::Join { .. }
            | Request::ShardQuery { .. } => {
                for ticket in pending.drain(..) {
                    print_response(&mut out, ticket.wait(), &mut failed)?;
                }
                writeln!(out, "ERROR session verbs need the TCP front end (bilevel-netd)")?;
                out.flush()?;
                continue;
            }
            Request::Query { vector, metric: stated } => {
                // A query that states a metric must state the index's:
                // answering under a different geometry than the client
                // expects is exactly the silent wrongness the typed
                // error exists to prevent.
                if let Some(got) = stated.filter(|&got| got != metric) {
                    for ticket in pending.drain(..) {
                        print_response(&mut out, ticket.wait(), &mut failed)?;
                    }
                    let e = protocol::ProtocolError::MetricMismatch {
                        expected: protocol::format_metric(metric),
                        got: protocol::format_metric(got),
                    };
                    writeln!(out, "ERROR {e}")?;
                    out.flush()?;
                    continue;
                }
                vector
            }
            write_request => {
                handle_write(
                    write_request,
                    &mut writer,
                    &mut pending,
                    &mut out,
                    &mut failed,
                    recorder,
                )?;
                continue;
            }
        };
        // Staged writes commit before the query is submitted — after
        // draining in-flight tickets, so a commit can never overtake a
        // query queued above it. Every query line therefore observes
        // exactly the write lines above it: no fewer, no more.
        if let Some(w) = writer.as_mut() {
            if w.pending() > 0 {
                for ticket in pending.drain(..) {
                    print_response(&mut out, ticket.wait(), &mut failed)?;
                }
                if let Err(e) = w.commit(recorder) {
                    writeln!(out, "ERROR commit failed: {e}")?;
                    out.flush()?;
                    continue;
                }
            }
        }
        // Submit eagerly; a full queue blocks on the oldest in-flight
        // response (natural single-producer backpressure) and retries.
        let ticket = loop {
            let d = deadline.map(|d| Instant::now() + d);
            match handle.submit(&vector, k, d) {
                Ok(ticket) => break ticket,
                Err(SubmitError::Overloaded) => {
                    retries += 1;
                    match pending.pop_front() {
                        Some(oldest) => print_response(&mut out, oldest.wait(), &mut failed)?,
                        None => std::thread::sleep(Duration::from_micros(50)),
                    }
                }
                Err(e) => return Err(Box::new(e)),
            }
        };
        pending.push_back(ticket);
        // Opportunistically flush whatever already finished, in order.
        while let Some(resp) = pending.front().and_then(|t| t.try_wait()) {
            pending.pop_front();
            print_response(&mut out, resp, &mut failed)?;
        }
    }
    for ticket in pending {
        print_response(&mut out, ticket.wait(), &mut failed)?;
    }
    out.flush()?;
    drop(handle);

    let stats = service.stats();
    eprintln!(
        "{} queries in {} batches (mean size {:.1}), overload retries {retries}",
        stats.completed,
        stats.batches,
        stats.mean_batch_size(),
    );
    eprintln!(
        "service levels {:?}; shed {}, deadline missed {}",
        stats.responses_by_level, stats.shed, stats.deadline_missed
    );
    eprintln!(
        "failures: {failed} failed queries ({} panicked), {} partial-coverage responses, \
         {} dispatcher restarts",
        stats.panicked, stats.partial_responses, stats.dispatcher_restarts
    );
    eprintln!(
        "latency p50 {:?}, p95 {:?}, p99 {:?}, max {:?}",
        stats.latency_p50, stats.latency_p95, stats.latency_p99, stats.latency_max
    );
    eprint!("{}", recorder.snapshot().render_table());
    service.shutdown();
    Ok(())
}

/// Executes one write-path request (`UPSERT`/`DELETE`/`COMMIT`/`COMPACT`).
/// Staging (`UPSERT`/`DELETE`) prints nothing and never touches the index;
/// `COMMIT`/`COMPACT` (and every error) drain in-flight responses first so
/// stdout stays in input order.
fn handle_write<W: Write>(
    request: Request,
    writer: &mut Option<MutableWriter>,
    pending: &mut VecDeque<Ticket>,
    out: &mut W,
    failed: &mut u64,
    recorder: &InMemoryRecorder,
) -> Result<(), Box<dyn std::error::Error>> {
    let drain = |out: &mut W, pending: &mut VecDeque<Ticket>, failed: &mut u64| {
        pending.drain(..).try_for_each(|t| print_response(out, t.wait(), failed).map(|_| ()))
    };
    let Some(writer) = writer.as_mut() else {
        drain(out, pending, failed)?;
        writeln!(out, "ERROR writes require an unsharded index (--shards 1)")?;
        out.flush()?;
        return Ok(());
    };
    match request {
        Request::Upsert { id: None, vector } => {
            if let Err(e) = writer.stage_insert(&vector) {
                drain(out, pending, failed)?;
                writeln!(out, "ERROR {e}")?;
                out.flush()?;
            }
        }
        Request::Upsert { id: Some(id), vector } => {
            if let Err(e) = writer.stage_update(id, &vector) {
                drain(out, pending, failed)?;
                writeln!(out, "ERROR {e}")?;
                out.flush()?;
            }
        }
        Request::Delete { id } => writer.stage_delete(id),
        Request::Commit => {
            drain(out, pending, failed)?;
            match writer.commit(recorder) {
                Ok(Some(s)) => writeln!(
                    out,
                    "COMMITTED inserted={} updated={} deleted={} epoch={}",
                    s.inserted, s.updated, s.deleted, s.epoch
                )?,
                Ok(None) => writeln!(out, "COMMITTED nothing epoch={}", writer.epoch())?,
                Err(e) => writeln!(out, "ERROR {e}")?,
            }
            out.flush()?;
        }
        Request::Compact => {
            drain(out, pending, failed)?;
            // Staged writes join the compaction; commit them first.
            if let Err(e) = writer.commit(recorder) {
                writeln!(out, "ERROR {e}")?;
                out.flush()?;
                return Ok(());
            }
            if writer.live_len() == 0 {
                writeln!(out, "ERROR cannot compact a fully deleted index")?;
            } else {
                let survivors = writer.compact(recorder);
                writeln!(out, "COMPACTED live={} epoch={}", survivors.len(), writer.epoch())?;
            }
            out.flush()?;
        }
        other => unreachable!("non-write request routed to handle_write: {other:?}"),
    }
    Ok(())
}

/// Prints one output line per resolved ticket, keeping input order even
/// for failed queries: a typed failure becomes an `ERROR ...` line (and
/// a stderr note) instead of killing the whole session.
fn print_response<W: Write>(
    out: &mut W,
    resp: Result<QueryResponse, knn_serve::ResponseError>,
    failed: &mut u64,
) -> std::io::Result<()> {
    let resp = match resp {
        Ok(resp) => resp,
        Err(e) => {
            *failed += 1;
            eprintln!("query failed: {e}");
            return writeln!(out, "ERROR {e}");
        }
    };
    let line = protocol::render_response(&resp.neighbors, resp.coverage, WirePrecision::Fixed6);
    writeln!(out, "{line}")
}
