//! The line protocol shared by `bilevel-serve` (stdin) and `bilevel-netd`
//! (TCP frames): one request per line, parsed into a typed [`Request`].
//!
//! Both front ends speak the same text; the TCP server adds length-
//! delimited framing around it (see `knn-net`) plus the session verbs
//! (`USE` / `LIST` / `JOIN` / `SHARDQ`) that only make sense with multiple
//! tenants on a socket. A line is either a known verb with *strictly*
//! parsed operands or a bare whitespace-separated query vector — anything
//! malformed is a typed [`ProtocolError`], never a panic and never a
//! silently truncated parse. Front ends turn the error into an `ERROR ...`
//! reply and keep the session alive.
//!
//! Distances travel as text. [`render_response`] has two precisions:
//! the human-facing fixed `%.6f` the stdin binary always printed, and an
//! exact shortest-round-trip form (`{}` on `f32`) the wire protocol uses
//! so a remote merge is bit-identical to a local one.

use bilevel_lsh::{FamilyKind, MetricKind, Probe};
use vecstore::Neighbor;

use crate::backend::Coverage;

/// Output format of a telemetry control line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// `STATS` — Prometheus text exposition format.
    Prometheus,
    /// `STATS JSON` / `TELEMETRY JSON` — one JSON object on one line.
    Json,
    /// `TELEMETRY` — human-readable stage table.
    Table,
}

/// One parsed protocol line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A bare vector line, `QUERY v0 v1 ...`, or
    /// `QUERY metric=<spec> v0 v1 ...`: k-NN for one query.
    Query {
        /// The query vector.
        vector: Vec<f32>,
        /// The metric the client believes it is querying under
        /// (`metric=<spec>` on the `QUERY` verb). The server rejects the
        /// query with [`ProtocolError::MetricMismatch`] when this
        /// disagrees with the index's metric — stated intent beats
        /// silently wrong distances. `None` (bare vectors, plain `QUERY`)
        /// skips the check.
        metric: Option<MetricKind>,
    },
    /// `CONFIG` — the serving index's build configuration (metric,
    /// family, probe, dimensions) as one `CONFIG key=value ...` line.
    Config,
    /// `UPSERT + v...` (insert) or `UPSERT <id> v...` (update).
    Upsert {
        /// `None` inserts a new row; `Some(id)` updates (and revives) `id`.
        id: Option<usize>,
        /// The row vector.
        vector: Vec<f32>,
    },
    /// `DELETE <id>` — stage a tombstone delete.
    Delete {
        /// Global row id.
        id: usize,
    },
    /// `COMMIT` — apply staged writes as one atomic batch.
    Commit,
    /// `COMPACT` — commit, then rebuild over surviving rows.
    Compact,
    /// `STATS` / `STATS JSON` / `TELEMETRY` / `TELEMETRY JSON`.
    Stats(StatsFormat),
    /// `USE <tenant>` — bind this session to a registered index.
    Use {
        /// Tenant name (letters, digits, `_`, `.`, `-`).
        tenant: String,
    },
    /// `LIST` — names of every registered tenant.
    List,
    /// `JOIN <tenant>` — stream the tenant's dataset + snapshot to the
    /// caller so it can boot a warm replica.
    Join {
        /// Tenant to replicate.
        tenant: String,
    },
    /// `SHARDQ <shard> <k> <probe> <rerank|-> <nq>` — header of a
    /// multi-line shard-query frame; `nq` vector lines follow.
    ShardQuery {
        /// Shard index on the serving replica.
        shard: usize,
        /// Neighbors per query.
        k: usize,
        /// Probe override; `None` (`built` on the wire) means the built
        /// probe.
        probe: Option<Probe>,
        /// Quantized-first-pass rerank depth; `-` on the wire means off.
        rerank: Option<usize>,
        /// Number of vector lines that follow this header.
        queries: usize,
    },
}

/// A malformed protocol line, with enough context to render a useful
/// `ERROR` reply. Producing this (instead of panicking or guessing) is
/// the whole point of the typed parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The line was empty or all whitespace.
    Empty,
    /// A verb's operand failed to parse as the expected kind of number.
    BadNumber {
        /// The verb being parsed.
        verb: &'static str,
        /// What the operand was supposed to be.
        what: &'static str,
        /// The offending token.
        token: String,
    },
    /// A verb received extra tokens past its full operand list.
    Trailing {
        /// The verb being parsed.
        verb: &'static str,
        /// The first unexpected token.
        token: String,
    },
    /// A verb is missing a required operand.
    MissingArg {
        /// The verb being parsed.
        verb: &'static str,
        /// What is missing.
        what: &'static str,
    },
    /// A bare line that is neither a known verb nor a parseable query
    /// vector.
    BadVector {
        /// The first token that failed to parse as `f32`.
        token: String,
    },
    /// A tenant name with characters outside `[A-Za-z0-9_.-]`.
    BadTenantName {
        /// The rejected name.
        name: String,
    },
    /// An unknown probe spec (expected `home`, `multi:N`, `hier:N`, or
    /// `built`).
    BadProbe {
        /// The rejected spec.
        token: String,
    },
    /// An unknown metric spec (expected `l2`, `cosine`, `ip`, or `lp:P`).
    BadMetric {
        /// The rejected spec.
        token: String,
    },
    /// A query stated a metric (`QUERY metric=...`) that disagrees with
    /// the metric the index was built under. Answering anyway would
    /// return distances in the wrong geometry, so this is a typed
    /// refusal instead.
    MetricMismatch {
        /// The index's metric (wire spelling).
        expected: String,
        /// The metric the query stated (wire spelling).
        got: String,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty request line"),
            ProtocolError::BadNumber { verb, what, token } => {
                write!(f, "{verb}: bad {what} {token:?}")
            }
            ProtocolError::Trailing { verb, token } => {
                write!(f, "{verb}: trailing garbage starting at {token:?}")
            }
            ProtocolError::MissingArg { verb, what } => write!(f, "{verb} needs {what}"),
            ProtocolError::BadVector { token } => write!(
                f,
                "bad token {token:?}: expected a command verb or a whitespace-separated \
                 float vector"
            ),
            ProtocolError::BadTenantName { name } => {
                write!(f, "bad tenant name {name:?}: use letters, digits, underscore, dot, or dash")
            }
            ProtocolError::BadProbe { token } => {
                write!(f, "bad probe {token:?}: expected home, multi:N, hier:N, or built")
            }
            ProtocolError::BadMetric { token } => {
                write!(f, "bad metric {token:?}: expected l2, cosine, ip, or lp:P")
            }
            ProtocolError::MetricMismatch { expected, got } => {
                write!(
                    f,
                    "metric mismatch: query stated {got} but the index was built for {expected} \
                     (drop metric=, or USE a tenant built for {got})"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Whether `name` is a legal tenant name (`[A-Za-z0-9_.-]+`).
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

/// Parses one protocol line into a typed [`Request`].
///
/// Verbs are case-insensitive; operands are strict — a recognized verb
/// with malformed or trailing operands is an error, never a query vector.
/// A line whose first token is not a verb must parse entirely as floats.
///
/// # Errors
///
/// A [`ProtocolError`] naming the defect; front ends render it as an
/// `ERROR ...` reply and keep the session alive.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let mut tokens = line.split_whitespace();
    let Some(first) = tokens.next() else { return Err(ProtocolError::Empty) };
    let verb = first.to_ascii_uppercase();
    match verb.as_str() {
        "QUERY" => {
            let mut tokens = tokens.peekable();
            let metric = match tokens.peek().and_then(|t| t.strip_prefix("metric=")) {
                Some(spec) => {
                    let metric = parse_metric(spec)?;
                    tokens.next();
                    Some(metric)
                }
                None => None,
            };
            let vector = parse_floats("QUERY", tokens)?;
            if vector.is_empty() {
                return Err(ProtocolError::MissingArg { verb: "QUERY", what: "a vector" });
            }
            Ok(Request::Query { vector, metric })
        }
        "CONFIG" => {
            no_trailing("CONFIG", tokens)?;
            Ok(Request::Config)
        }
        "UPSERT" => {
            let id = match tokens.next() {
                Some("+") => None,
                Some(t) => Some(t.parse::<usize>().map_err(|_| ProtocolError::BadNumber {
                    verb: "UPSERT",
                    what: "id",
                    token: t.to_string(),
                })?),
                None => {
                    return Err(ProtocolError::MissingArg { verb: "UPSERT", what: "an id (or +)" })
                }
            };
            let vector = parse_floats("UPSERT", tokens)?;
            if vector.is_empty() {
                return Err(ProtocolError::MissingArg { verb: "UPSERT", what: "a vector" });
            }
            Ok(Request::Upsert { id, vector })
        }
        "DELETE" => {
            let t = tokens
                .next()
                .ok_or(ProtocolError::MissingArg { verb: "DELETE", what: "exactly one id" })?;
            let id = t.parse::<usize>().map_err(|_| ProtocolError::BadNumber {
                verb: "DELETE",
                what: "id",
                token: t.to_string(),
            })?;
            no_trailing("DELETE", tokens)?;
            Ok(Request::Delete { id })
        }
        "COMMIT" => {
            no_trailing("COMMIT", tokens)?;
            Ok(Request::Commit)
        }
        "COMPACT" => {
            no_trailing("COMPACT", tokens)?;
            Ok(Request::Compact)
        }
        "STATS" | "TELEMETRY" => {
            let json = match tokens.next() {
                None => false,
                Some(t) if t.eq_ignore_ascii_case("JSON") => true,
                Some(t) => {
                    return Err(ProtocolError::Trailing {
                        verb: if verb == "STATS" { "STATS" } else { "TELEMETRY" },
                        token: t.to_string(),
                    })
                }
            };
            no_trailing(if verb == "STATS" { "STATS" } else { "TELEMETRY" }, tokens)?;
            Ok(Request::Stats(match (verb.as_str(), json) {
                (_, true) => StatsFormat::Json,
                ("STATS", false) => StatsFormat::Prometheus,
                _ => StatsFormat::Table,
            }))
        }
        "USE" => Ok(Request::Use { tenant: tenant_arg("USE", tokens)? }),
        "JOIN" => Ok(Request::Join { tenant: tenant_arg("JOIN", tokens)? }),
        "LIST" => {
            no_trailing("LIST", tokens)?;
            Ok(Request::List)
        }
        "SHARDQ" => {
            fn num<'a>(
                tokens: &mut impl Iterator<Item = &'a str>,
                what: &'static str,
            ) -> Result<usize, ProtocolError> {
                let t = tokens
                    .next()
                    .ok_or(ProtocolError::MissingArg { verb: "SHARDQ", what: "5 operands" })?;
                t.parse::<usize>().map_err(|_| ProtocolError::BadNumber {
                    verb: "SHARDQ",
                    what,
                    token: t.to_string(),
                })
            }
            let shard = num(&mut tokens, "shard")?;
            let k = num(&mut tokens, "k")?;
            let probe_tok = tokens
                .next()
                .ok_or(ProtocolError::MissingArg { verb: "SHARDQ", what: "5 operands" })?;
            let probe = parse_probe(probe_tok)?;
            let rerank_tok = tokens
                .next()
                .ok_or(ProtocolError::MissingArg { verb: "SHARDQ", what: "5 operands" })?;
            let rerank = if rerank_tok == "-" {
                None
            } else {
                Some(rerank_tok.parse::<usize>().map_err(|_| ProtocolError::BadNumber {
                    verb: "SHARDQ",
                    what: "rerank depth",
                    token: rerank_tok.to_string(),
                })?)
            };
            let queries = num(&mut tokens, "query count")?;
            no_trailing("SHARDQ", tokens)?;
            Ok(Request::ShardQuery { shard, k, probe, rerank, queries })
        }
        _ => {
            let vector = parse_vector(line)?;
            Ok(Request::Query { vector, metric: None })
        }
    }
}

/// Renders a vector as a whitespace-separated line using exact
/// shortest-round-trip `f32` text, the inverse of [`parse_vector`]: the
/// parsed-back vector is bit-identical.
pub fn format_vector(v: &[f32]) -> String {
    let mut line = String::new();
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            line.push(' ');
        }
        line.push_str(&format!("{x}"));
    }
    line
}

/// Parses a bare whitespace-separated float vector line.
///
/// # Errors
///
/// [`ProtocolError::BadVector`] naming the first unparseable token,
/// [`ProtocolError::Empty`] on a blank line.
pub fn parse_vector(line: &str) -> Result<Vec<f32>, ProtocolError> {
    let mut vector = Vec::new();
    for t in line.split_whitespace() {
        vector
            .push(t.parse::<f32>().map_err(|_| ProtocolError::BadVector { token: t.to_string() })?);
    }
    if vector.is_empty() {
        return Err(ProtocolError::Empty);
    }
    Ok(vector)
}

fn parse_floats<'a>(
    verb: &'static str,
    tokens: impl Iterator<Item = &'a str>,
) -> Result<Vec<f32>, ProtocolError> {
    tokens
        .map(|t| {
            t.parse::<f32>().map_err(|_| ProtocolError::BadNumber {
                verb,
                what: "vector component",
                token: t.to_string(),
            })
        })
        .collect()
}

fn tenant_arg<'a>(
    verb: &'static str,
    mut tokens: impl Iterator<Item = &'a str>,
) -> Result<String, ProtocolError> {
    let name = tokens.next().ok_or(ProtocolError::MissingArg { verb, what: "a tenant name" })?;
    if !valid_tenant_name(name) {
        return Err(ProtocolError::BadTenantName { name: name.to_string() });
    }
    no_trailing(verb, tokens)?;
    Ok(name.to_string())
}

fn no_trailing<'a>(
    verb: &'static str,
    mut tokens: impl Iterator<Item = &'a str>,
) -> Result<(), ProtocolError> {
    match tokens.next() {
        Some(t) => Err(ProtocolError::Trailing { verb, token: t.to_string() }),
        None => Ok(()),
    }
}

/// Wire form of a probe override: `home`, `multi:N`, `hier:N`, or `built`
/// (no override — the replica's built probe).
pub fn format_probe(probe: Option<Probe>) -> String {
    match probe {
        None => "built".to_string(),
        Some(Probe::Home) => "home".to_string(),
        Some(Probe::Multi(n)) => format!("multi:{n}"),
        Some(Probe::Hierarchical { min_candidates }) => format!("hier:{min_candidates}"),
    }
}

/// Inverse of [`format_probe`].
///
/// # Errors
///
/// [`ProtocolError::BadProbe`] on anything else.
pub fn parse_probe(token: &str) -> Result<Option<Probe>, ProtocolError> {
    let bad = || ProtocolError::BadProbe { token: token.to_string() };
    if token == "built" {
        return Ok(None);
    }
    if token == "home" {
        return Ok(Some(Probe::Home));
    }
    if let Some(n) = token.strip_prefix("multi:") {
        return Ok(Some(Probe::Multi(n.parse().map_err(|_| bad())?)));
    }
    if let Some(n) = token.strip_prefix("hier:") {
        return Ok(Some(Probe::Hierarchical { min_candidates: n.parse().map_err(|_| bad())? }));
    }
    Err(bad())
}

/// Wire form of a metric: `l2`, `cosine`, `ip`, or `lp:P` (`P` in exact
/// shortest-round-trip `f32` text, so [`parse_metric`] restores the same
/// bits).
pub fn format_metric(metric: MetricKind) -> String {
    match metric {
        MetricKind::L2 => "l2".to_string(),
        MetricKind::Cosine => "cosine".to_string(),
        MetricKind::InnerProduct => "ip".to_string(),
        MetricKind::Lp { p } => format!("lp:{p}"),
    }
}

/// Inverse of [`format_metric`].
///
/// # Errors
///
/// [`ProtocolError::BadMetric`] on anything else.
pub fn parse_metric(token: &str) -> Result<MetricKind, ProtocolError> {
    let bad = || ProtocolError::BadMetric { token: token.to_string() };
    match token {
        "l2" => Ok(MetricKind::L2),
        "cosine" => Ok(MetricKind::Cosine),
        "ip" => Ok(MetricKind::InnerProduct),
        _ => match token.strip_prefix("lp:") {
            Some(p) => Ok(MetricKind::Lp { p: p.parse().map_err(|_| bad())? }),
            None => Err(bad()),
        },
    }
}

/// Wire form of a level-2 hash family: `pstable`, `srp`, `mips`, or
/// `lp:P`.
pub fn format_family(family: FamilyKind) -> String {
    match family {
        FamilyKind::PStable => "pstable".to_string(),
        FamilyKind::Srp => "srp".to_string(),
        FamilyKind::Mips => "mips".to_string(),
        FamilyKind::LpStable { p } => format!("lp:{p}"),
    }
}

/// Inverse of [`format_family`].
///
/// # Errors
///
/// [`ProtocolError::BadMetric`] (families share the metric spec error) on
/// anything else.
pub fn parse_family(token: &str) -> Result<FamilyKind, ProtocolError> {
    let bad = || ProtocolError::BadMetric { token: token.to_string() };
    match token {
        "pstable" => Ok(FamilyKind::PStable),
        "srp" => Ok(FamilyKind::Srp),
        "mips" => Ok(FamilyKind::Mips),
        _ => match token.strip_prefix("lp:") {
            Some(p) => Ok(FamilyKind::LpStable { p: p.parse().map_err(|_| bad())? }),
            None => Err(bad()),
        },
    }
}

/// Distance precision for [`render_response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WirePrecision {
    /// Human-facing fixed `%.6f` — what `bilevel-serve` always printed.
    Fixed6,
    /// Shortest round-trip `f32` text: parsing the token back yields the
    /// identical bit pattern, so remote merges stay bit-identical.
    Exact,
}

/// Renders one query response line: `id:dist` pairs in ascending distance,
/// plus a ` #partial=a/b` suffix when coverage is not full.
pub fn render_response(
    neighbors: &[Neighbor],
    coverage: Coverage,
    precision: WirePrecision,
) -> String {
    let mut line = String::new();
    for (i, n) in neighbors.iter().enumerate() {
        if i > 0 {
            line.push(' ');
        }
        match precision {
            WirePrecision::Fixed6 => line.push_str(&format!("{}:{:.6}", n.id, n.dist)),
            WirePrecision::Exact => line.push_str(&format!("{}:{}", n.id, n.dist)),
        }
    }
    if !coverage.is_full() {
        line.push_str(&format!(" #partial={coverage}"));
    }
    line
}

/// Renders one shard-reply line: the candidate count, then exact-precision
/// `id:dist` pairs.
pub fn render_shard_reply(candidates: usize, neighbors: &[Neighbor]) -> String {
    let mut line = candidates.to_string();
    for n in neighbors {
        line.push_str(&format!(" {}:{}", n.id, n.dist));
    }
    line
}

/// Parses a [`render_shard_reply`] line back into `(candidates, neighbors)`
/// with bit-identical distances.
///
/// # Errors
///
/// [`ProtocolError::BadNumber`] on any malformed token.
pub fn parse_shard_reply(line: &str) -> Result<(usize, Vec<Neighbor>), ProtocolError> {
    let bad = |what: &'static str, t: &str| ProtocolError::BadNumber {
        verb: "shard reply",
        what,
        token: t.to_string(),
    };
    let mut tokens = line.split_whitespace();
    let count_tok = tokens
        .next()
        .ok_or(ProtocolError::MissingArg { verb: "shard reply", what: "a candidate count" })?;
    let candidates = count_tok.parse::<usize>().map_err(|_| bad("candidate count", count_tok))?;
    let mut neighbors = Vec::new();
    for t in tokens {
        let (id, dist) = t.split_once(':').ok_or_else(|| bad("id:dist pair", t))?;
        neighbors.push(Neighbor {
            id: id.parse::<usize>().map_err(|_| bad("neighbor id", t))?,
            dist: dist.parse::<f32>().map_err(|_| bad("neighbor distance", t))?,
        });
    }
    Ok((candidates, neighbors))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_vectors_and_explicit_query_parse() {
        assert_eq!(
            parse_request("1.0 -2.5 3e-2").unwrap(),
            Request::Query { vector: vec![1.0, -2.5, 3e-2], metric: None }
        );
        assert_eq!(
            parse_request("QUERY 1 2").unwrap(),
            Request::Query { vector: vec![1.0, 2.0], metric: None }
        );
        assert_eq!(parse_request("query 1 2").unwrap(), parse_request("QUERY 1 2").unwrap());
    }

    #[test]
    fn query_metric_operand_parses_and_rejects_garbage() {
        assert_eq!(
            parse_request("QUERY metric=cosine 1 2").unwrap(),
            Request::Query { vector: vec![1.0, 2.0], metric: Some(MetricKind::Cosine) }
        );
        assert_eq!(
            parse_request("QUERY metric=lp:1.5 0.5").unwrap(),
            Request::Query { vector: vec![0.5], metric: Some(MetricKind::Lp { p: 1.5 }) }
        );
        assert!(matches!(
            parse_request("QUERY metric=euclid 1 2"),
            Err(ProtocolError::BadMetric { token }) if token == "euclid"
        ));
        // metric= without a vector is still a missing-vector error.
        assert!(matches!(
            parse_request("QUERY metric=l2"),
            Err(ProtocolError::MissingArg { verb: "QUERY", .. })
        ));
        // A bare vector line never carries a metric.
        assert_eq!(
            parse_request("0.25 0.75").unwrap(),
            Request::Query { vector: vec![0.25, 0.75], metric: None }
        );
    }

    #[test]
    fn config_verb_parses_strictly() {
        assert_eq!(parse_request("CONFIG").unwrap(), Request::Config);
        assert_eq!(parse_request("config").unwrap(), Request::Config);
        assert!(matches!(
            parse_request("CONFIG all"),
            Err(ProtocolError::Trailing { verb: "CONFIG", .. })
        ));
    }

    #[test]
    fn metric_and_family_specs_roundtrip() {
        for metric in [
            MetricKind::L2,
            MetricKind::Cosine,
            MetricKind::InnerProduct,
            MetricKind::Lp { p: 0.5 },
            MetricKind::Lp { p: 1.5 },
        ] {
            assert_eq!(parse_metric(&format_metric(metric)).unwrap(), metric);
        }
        for family in [
            FamilyKind::PStable,
            FamilyKind::Srp,
            FamilyKind::Mips,
            FamilyKind::LpStable { p: 0.5 },
        ] {
            assert_eq!(parse_family(&format_family(family)).unwrap(), family);
        }
        assert!(parse_metric("lp:").is_err());
        assert!(parse_metric("L2").is_err());
        assert!(parse_family("gaussian").is_err());
    }

    #[test]
    fn malformed_vectors_are_typed_errors_not_truncated_parses() {
        // The old parser killed the whole session here.
        assert!(matches!(
            parse_request("1.0 2.0 garbage"),
            Err(ProtocolError::BadVector { token }) if token == "garbage"
        ));
        assert!(matches!(
            parse_request("QUERY 1.0 x"),
            Err(ProtocolError::BadNumber { verb: "QUERY", .. })
        ));
        assert!(matches!(parse_request("QUERY"), Err(ProtocolError::MissingArg { .. })));
        assert!(matches!(parse_request("   "), Err(ProtocolError::Empty)));
    }

    #[test]
    fn write_verbs_parse_strictly() {
        assert_eq!(
            parse_request("UPSERT + 1 2").unwrap(),
            Request::Upsert { id: None, vector: vec![1.0, 2.0] }
        );
        assert_eq!(
            parse_request("upsert 7 0.5").unwrap(),
            Request::Upsert { id: Some(7), vector: vec![0.5] }
        );
        assert_eq!(parse_request("DELETE 3").unwrap(), Request::Delete { id: 3 });
        assert_eq!(parse_request("COMMIT").unwrap(), Request::Commit);
        assert_eq!(parse_request("COMPACT").unwrap(), Request::Compact);
        // Trailing garbage is an error, not a fall-through to query parsing
        // (the old parser fed "COMMIT extra" to the float parser).
        assert!(matches!(
            parse_request("COMMIT extra"),
            Err(ProtocolError::Trailing { verb: "COMMIT", .. })
        ));
        assert!(matches!(
            parse_request("DELETE 3 4"),
            Err(ProtocolError::Trailing { verb: "DELETE", .. })
        ));
        assert!(matches!(
            parse_request("UPSERT 5 1.0 2.0 xyz"),
            Err(ProtocolError::BadNumber { verb: "UPSERT", what: "vector component", .. })
        ));
        assert!(matches!(
            parse_request("UPSERT nine 1.0"),
            Err(ProtocolError::BadNumber { verb: "UPSERT", what: "id", .. })
        ));
        assert!(matches!(parse_request("UPSERT +"), Err(ProtocolError::MissingArg { .. })));
    }

    #[test]
    fn stats_and_session_verbs() {
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats(StatsFormat::Prometheus));
        assert_eq!(parse_request("stats json").unwrap(), Request::Stats(StatsFormat::Json));
        assert_eq!(parse_request("TELEMETRY").unwrap(), Request::Stats(StatsFormat::Table));
        assert_eq!(parse_request("TELEMETRY JSON").unwrap(), Request::Stats(StatsFormat::Json));
        assert!(parse_request("STATS YAML").is_err());
        assert_eq!(parse_request("USE img").unwrap(), Request::Use { tenant: "img".into() });
        assert_eq!(parse_request("LIST").unwrap(), Request::List);
        assert_eq!(
            parse_request("JOIN a-b.c_d").unwrap(),
            Request::Join { tenant: "a-b.c_d".into() }
        );
        assert!(matches!(parse_request("USE"), Err(ProtocolError::MissingArg { .. })));
        assert!(matches!(parse_request("USE a b"), Err(ProtocolError::Trailing { .. })));
        assert!(matches!(parse_request("USE bad/name"), Err(ProtocolError::BadTenantName { .. })));
        assert!(matches!(parse_request("LIST all"), Err(ProtocolError::Trailing { .. })));
    }

    #[test]
    fn shardq_header_roundtrip() {
        let req = parse_request("SHARDQ 2 9 multi:8 - 3").unwrap();
        assert_eq!(
            req,
            Request::ShardQuery {
                shard: 2,
                k: 9,
                probe: Some(Probe::Multi(8)),
                rerank: None,
                queries: 3
            }
        );
        let req = parse_request("SHARDQ 0 5 hier:64 32 1").unwrap();
        assert_eq!(
            req,
            Request::ShardQuery {
                shard: 0,
                k: 5,
                probe: Some(Probe::Hierarchical { min_candidates: 64 }),
                rerank: Some(32),
                queries: 1
            }
        );
        assert!(matches!(parse_request("SHARDQ 0 5"), Err(ProtocolError::MissingArg { .. })));
        assert!(matches!(
            parse_request("SHARDQ 0 5 warp - 1"),
            Err(ProtocolError::BadProbe { .. })
        ));
        assert!(matches!(
            parse_request("SHARDQ 0 5 home - 1 extra"),
            Err(ProtocolError::Trailing { .. })
        ));
    }

    #[test]
    fn probe_spec_roundtrips() {
        for probe in [
            None,
            Some(Probe::Home),
            Some(Probe::Multi(12)),
            Some(Probe::Hierarchical { min_candidates: 77 }),
        ] {
            assert_eq!(parse_probe(&format_probe(probe)).unwrap(), probe);
        }
        assert!(parse_probe("multi:").is_err());
        assert!(parse_probe("hier:x").is_err());
        assert!(parse_probe("").is_err());
    }

    #[test]
    fn exact_precision_roundtrips_distances_bit_for_bit() {
        // Values chosen to be awkward under decimal formatting.
        let neighbors: Vec<Neighbor> = [0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1234567.8, 0.0]
            .iter()
            .enumerate()
            .map(|(id, &dist)| Neighbor { id, dist })
            .collect();
        let line = render_shard_reply(42, &neighbors);
        let (candidates, parsed) = parse_shard_reply(&line).unwrap();
        assert_eq!(candidates, 42);
        assert_eq!(parsed.len(), neighbors.len());
        for (a, b) in parsed.iter().zip(&neighbors) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.dist.to_bits(), b.dist.to_bits(), "{} reparsed inexactly", b.dist);
        }
    }

    #[test]
    fn vector_text_roundtrips_bit_for_bit() {
        let v = [0.1f32, -0.0, 1.0 / 3.0, f32::MIN_POSITIVE, 3.4e38, 1234567.8];
        let parsed = parse_vector(&format_vector(&v)).unwrap();
        assert_eq!(parsed.len(), v.len());
        for (a, b) in parsed.iter().zip(&v) {
            assert_eq!(a.to_bits(), b.to_bits(), "{b} reparsed inexactly");
        }
    }

    #[test]
    fn response_rendering_tags_partials() {
        let n = [Neighbor { id: 3, dist: 1.25 }];
        let full = Coverage::full(3);
        let partial = Coverage { answered: 2, total: 3 };
        assert_eq!(render_response(&n, full, WirePrecision::Fixed6), "3:1.250000");
        assert_eq!(render_response(&n, partial, WirePrecision::Exact), "3:1.25 #partial=2/3");
        assert_eq!(render_response(&[], full, WirePrecision::Exact), "");
    }
}
