//! Micro-batcher stress test: many producer threads, every request gets
//! exactly one response, answers are bit-identical to the serial engine's
//! single-query answers, and no response outlives its deadline by more
//! than the batching window.

use bilevel_lsh::{BiLevelConfig, BiLevelIndex, Probe, QueryOptions, ShardedIndex};
use knn_serve::{Backend, BatchOutcome, Coverage, Service, ServiceConfig, SubmitError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vecstore::synth::{self, ClusteredSpec};
use vecstore::{Dataset, Neighbor};

const PRODUCERS: usize = 4;
const PER_PRODUCER: usize = 50;
const K: usize = 9;
const MAX_WAIT: Duration = Duration::from_millis(5);
const DEADLINE_BUDGET: Duration = Duration::from_secs(2);

fn corpus() -> (Dataset, Dataset) {
    let all = synth::clustered(&ClusteredSpec::small(700), 42);
    all.split_at(500)
}

/// Drives `PRODUCERS x PER_PRODUCER` closed-loop requests through a
/// service over `backend` and checks the exactly-once / bit-identical /
/// deadline contracts against precomputed serial answers.
fn run_stress<B: Backend>(backend: B, queries: &Dataset, expected: &[Vec<Neighbor>]) {
    let total = PRODUCERS * PER_PRODUCER;
    assert!(queries.len() >= total);
    let config = ServiceConfig::default().max_batch(8).max_wait(MAX_WAIT).queue_capacity(256);
    let service = Service::start(backend, config);
    let queries = Arc::new(queries.clone());

    let workers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let handle = service.handle().expect("service is running");
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut out = Vec::with_capacity(PER_PRODUCER);
                for i in 0..PER_PRODUCER {
                    let idx = p * PER_PRODUCER + i;
                    let deadline = Instant::now() + DEADLINE_BUDGET;
                    let ticket = handle
                        .submit(queries.row(idx), K, Some(deadline))
                        .expect("closed-loop producers never overflow a 256-deep queue");
                    let response = ticket.wait().expect("every request gets a response");
                    out.push((idx, deadline, Instant::now(), response));
                }
                out
            })
        })
        .collect();

    let mut seen = vec![0usize; total];
    for worker in workers {
        for (idx, deadline, arrived, response) in worker.join().expect("producer panicked") {
            seen[idx] += 1;
            assert!(
                response.level.is_full(),
                "generous deadline was degraded to {} (query {idx})",
                response.level
            );
            assert!(response.coverage.is_full(), "healthy backend answered partial (query {idx})");
            assert_eq!(
                response.neighbors, expected[idx],
                "batched answer diverged from serial answer for query {idx}"
            );
            assert!(
                arrived <= deadline + MAX_WAIT,
                "query {idx} outlived its deadline by more than max_wait \
                 ({:?} past deadline)",
                arrived - deadline
            );
        }
    }
    // Exactly one response per request.
    assert!(seen.iter().all(|&c| c == 1));

    let stats = service.stats();
    assert_eq!(stats.submitted, total as u64);
    assert_eq!(stats.completed, total as u64);
    assert_eq!(stats.overloaded, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.deadline_missed, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.responses_by_level, vec![total as u64]);
    let sized: u64 = stats.batch_size_histogram.iter().map(|&(s, c)| s as u64 * c).sum();
    assert_eq!(sized, total as u64, "batch-size histogram must cover every request");
    service.shutdown();
}

#[test]
fn stress_bilevel_backend() {
    let (data, queries) = corpus();
    let cfg = BiLevelConfig::paper_default(2.5).probe(Probe::Multi(16));
    let index = BiLevelIndex::build_owned(data, &cfg);
    let expected: Vec<Vec<Neighbor>> =
        (0..queries.len()).map(|q| index.query(queries.row(q), K)).collect();
    run_stress(index, &queries, &expected);
}

#[test]
fn stress_sharded_backend() {
    let (data, queries) = corpus();
    let cfg = BiLevelConfig::paper_default(2.5).probe(Probe::Multi(16));
    let sharded = ShardedIndex::build(data.clone(), &cfg, 3);
    // The sharded service must agree with the *unsharded* serial answer.
    let unsharded = BiLevelIndex::build(&data, &cfg);
    let expected: Vec<Vec<Neighbor>> =
        (0..queries.len()).map(|q| unsharded.query(queries.row(q), K)).collect();
    run_stress(sharded, &queries, &expected);
}

/// A backend whose batches take a fixed wall-clock time, making overload
/// deterministic to provoke.
struct SlowBackend {
    dim: usize,
    per_batch: Duration,
}

impl Backend for SlowBackend {
    fn dim(&self) -> usize {
        self.dim
    }

    fn probe(&self) -> Probe {
        Probe::Home
    }

    fn supports_probe(&self, _probe: Probe) -> bool {
        true
    }

    fn query_batch_opts(&self, queries: &Dataset, _options: &QueryOptions<'_>) -> BatchOutcome {
        std::thread::sleep(self.per_batch);
        BatchOutcome {
            neighbors: vec![Vec::new(); queries.len()],
            candidates: vec![0; queries.len()],
            coverage: Coverage::full(1),
        }
    }
}

#[test]
fn open_loop_overload_sheds_cleanly() {
    let backend = SlowBackend { dim: 8, per_batch: Duration::from_millis(20) };
    let config = ServiceConfig::default().max_batch(1).max_wait(Duration::ZERO).queue_capacity(1);
    let service = Service::start(backend, config);
    let v = [0.5f32; 8];

    // Open loop: fire every submission without waiting for responses.
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..100 {
        match service.submit(&v, 1, None) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Overloaded) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(rejected > 0, "1-deep queue under a 20ms/batch backend must shed");

    // Every *accepted* request still gets exactly one response.
    let accepted = tickets.len() as u64;
    for t in tickets {
        t.wait().expect("accepted request lost its response");
    }
    let stats = service.stats();
    assert_eq!(stats.submitted, accepted);
    assert_eq!(stats.completed, accepted);
    assert_eq!(stats.overloaded, rejected);
    service.shutdown();
}
