//! End-to-end test of the `bilevel-serve` binary: pipe query vectors over
//! the stdin line protocol and check the responses agree with the
//! `bilevel` CLI's one-shot batch query over the same corpus and flags.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use vecstore::io::write_fvecs;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::Dataset;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_bilevel-serve")
}

fn fixture(name: &str) -> (PathBuf, PathBuf, Dataset) {
    let all = synth::clustered(&ClusteredSpec::small(540), 19);
    let (data, queries) = all.split_at(500);
    let dir = std::env::temp_dir().join("bilevel_serve_cli_test").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.fvecs");
    write_fvecs(&corpus, &data).unwrap();
    (dir, corpus, queries)
}

/// Runs `bilevel-serve` with `args`, feeding `queries` over stdin.
fn run_serve(corpus: &PathBuf, args: &[&str], queries: &Dataset) -> (String, String, bool) {
    let mut child = Command::new(bin())
        .arg(corpus)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    {
        let mut stdin = child.stdin.take().unwrap();
        for q in 0..queries.len() {
            let line: Vec<String> = queries.row(q).iter().map(|x| x.to_string()).collect();
            writeln!(stdin, "{}", line.join(" ")).unwrap();
        }
    }
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn serves_queries_over_stdin_in_order() {
    let (dir, corpus, queries) = fixture("basic");
    let args =
        ["--k", "5", "--w", "8", "--groups", "4", "--tables", "8", "--probe", "4", "--batch", "16"];
    let (out, err, ok) = run_serve(&corpus, &args, &queries);
    assert!(ok, "serve failed: {err}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 40, "one response line per query: {err}");
    for line in &lines {
        let pairs: Vec<(usize, f32)> = line
            .split_whitespace()
            .map(|p| {
                let (id, d) = p.split_once(':').expect("id:dist");
                (id.parse().unwrap(), d.parse().unwrap())
            })
            .collect();
        assert!(pairs.len() <= 5);
        assert!(pairs.iter().all(|&(id, _)| id < 500));
        assert!(pairs.windows(2).all(|w| w[0].1 <= w[1].1));
    }
    assert!(err.contains("batches"), "stats summary on stderr: {err}");

    // Sharded serving over the same corpus and flags answers identically
    // (the tentpole's sharded-equals-unsharded contract, end to end).
    let sharded_args = [args.as_slice(), &["--shards", "3"]].concat();
    let (sharded_out, err, ok) = run_serve(&corpus, &sharded_args, &queries);
    assert!(ok, "sharded serve failed: {err}");
    assert_eq!(sharded_out, out);

    std::fs::remove_dir_all(&dir).ok();
}

/// Runs `bilevel-serve` feeding raw stdin lines (queries and control
/// commands mixed), returning stdout.
fn run_serve_raw(corpus: &PathBuf, args: &[&str], input: &str) -> (String, String, bool) {
    let mut child = Command::new(bin())
        .arg(corpus)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child.stdin.take().unwrap().write_all(input.as_bytes()).unwrap();
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn stats_command_emits_prometheus_and_json_snapshots() {
    let (dir, corpus, queries) = fixture("stats");
    let args = ["--k", "5", "--w", "8", "--groups", "4", "--tables", "8"];
    let mut input = String::new();
    for q in 0..8 {
        let line: Vec<String> = queries.row(q).iter().map(|x| x.to_string()).collect();
        input.push_str(&line.join(" "));
        input.push('\n');
    }
    input.push_str("STATS\n");
    input.push_str("STATS JSON\n");
    let (out, err, ok) = run_serve_raw(&corpus, &args, &input);
    assert!(ok, "serve with STATS failed: {err}");
    // 8 query lines, then the Prometheus block, then one JSON line.
    let lines: Vec<&str> = out.lines().collect();
    assert!(lines.len() > 10, "expected responses plus snapshots: {out}");
    for line in &lines[..8] {
        // A query answer is `id:dist ...` pairs — possibly none, if the
        // probe found no candidates — never a snapshot line.
        assert!(
            !line.starts_with('#') && !line.starts_with('{') && !line.starts_with("knn_"),
            "query answers come first, in order: {line}"
        );
    }
    assert!(
        out.contains("# TYPE knn_queries_probed_total counter"),
        "Prometheus snapshot missing: {out}"
    );
    assert!(out.contains("knn_stage_seconds"), "stage summaries missing: {out}");
    let json = lines.last().unwrap();
    assert!(
        json.starts_with('{') && json.contains("\"counters\"") && json.contains("\"stages_ns\""),
        "JSON snapshot must be the final line: {json}"
    );
    // The service actually recorded work: probed-queries counter is > 0.
    assert!(!out.contains("knn_queries_probed_total 0\n"), "counters must be live: {out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = Command::new(bin()).output().expect("binary runs");
    assert!(!out.status.success());
    let out = Command::new(bin()).arg("/nonexistent.fvecs").output().expect("binary runs");
    assert!(!out.status.success());
}
