//! End-to-end test of the `bilevel-serve` binary: pipe query vectors over
//! the stdin line protocol and check the responses agree with the
//! `bilevel` CLI's one-shot batch query over the same corpus and flags.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use vecstore::io::write_fvecs;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::Dataset;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_bilevel-serve")
}

fn fixture(name: &str) -> (PathBuf, PathBuf, Dataset) {
    let all = synth::clustered(&ClusteredSpec::small(540), 19);
    let (data, queries) = all.split_at(500);
    let dir = std::env::temp_dir().join("bilevel_serve_cli_test").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.fvecs");
    write_fvecs(&corpus, &data).unwrap();
    (dir, corpus, queries)
}

/// Runs `bilevel-serve` with `args`, feeding `queries` over stdin.
fn run_serve(corpus: &PathBuf, args: &[&str], queries: &Dataset) -> (String, String, bool) {
    let mut child = Command::new(bin())
        .arg(corpus)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    {
        let mut stdin = child.stdin.take().unwrap();
        for q in 0..queries.len() {
            let line: Vec<String> = queries.row(q).iter().map(|x| x.to_string()).collect();
            writeln!(stdin, "{}", line.join(" ")).unwrap();
        }
    }
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn serves_queries_over_stdin_in_order() {
    let (dir, corpus, queries) = fixture("basic");
    let args =
        ["--k", "5", "--w", "8", "--groups", "4", "--tables", "8", "--probe", "4", "--batch", "16"];
    let (out, err, ok) = run_serve(&corpus, &args, &queries);
    assert!(ok, "serve failed: {err}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 40, "one response line per query: {err}");
    for line in &lines {
        let pairs: Vec<(usize, f32)> = line
            .split_whitespace()
            .map(|p| {
                let (id, d) = p.split_once(':').expect("id:dist");
                (id.parse().unwrap(), d.parse().unwrap())
            })
            .collect();
        assert!(pairs.len() <= 5);
        assert!(pairs.iter().all(|&(id, _)| id < 500));
        assert!(pairs.windows(2).all(|w| w[0].1 <= w[1].1));
    }
    assert!(err.contains("batches"), "stats summary on stderr: {err}");

    // Sharded serving over the same corpus and flags answers identically
    // (the tentpole's sharded-equals-unsharded contract, end to end).
    let sharded_args = [args.as_slice(), &["--shards", "3"]].concat();
    let (sharded_out, err, ok) = run_serve(&corpus, &sharded_args, &queries);
    assert!(ok, "sharded serve failed: {err}");
    assert_eq!(sharded_out, out);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = Command::new(bin()).output().expect("binary runs");
    assert!(!out.status.success());
    let out = Command::new(bin()).arg("/nonexistent.fvecs").output().expect("binary runs");
    assert!(!out.status.success());
}
