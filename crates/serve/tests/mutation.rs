//! Write-path tests: `UPSERT`/`DELETE`/`COMMIT`/`COMPACT` over the
//! `bilevel-serve` stdin protocol, and the [`MutableBackend`] /
//! [`MutableWriter`] commit-visibility contract under a live dispatcher —
//! a query submitted after a commit returns never sees a deleted row, and
//! every in-flight ticket still resolves.

use bilevel_lsh::{BiLevelConfig, BiLevelIndex, Probe};
use knn_serve::{MutableBackend, Service, ServiceConfig};
use knn_telemetry::{Counter, InMemoryRecorder, NoopRecorder};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vecstore::io::write_fvecs;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::Dataset;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_bilevel-serve")
}

fn fixture(name: &str) -> (PathBuf, PathBuf, Dataset, Dataset) {
    let all = synth::clustered(&ClusteredSpec::small(540), 7);
    let (data, queries) = all.split_at(500);
    let dir = std::env::temp_dir().join("bilevel_serve_mutation_test").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.fvecs");
    write_fvecs(&corpus, &data).unwrap();
    (dir, corpus, data, queries)
}

fn run_serve_raw(corpus: &PathBuf, args: &[&str], input: &str) -> (String, String, bool) {
    let mut child = Command::new(bin())
        .arg(corpus)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child.stdin.take().unwrap().write_all(input.as_bytes()).unwrap();
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn fmt_vec(v: &[f32]) -> String {
    v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" ")
}

fn ids_of(line: &str) -> Vec<usize> {
    line.split_whitespace()
        .map(|p| p.split_once(':').expect("id:dist").0.parse().unwrap())
        .collect()
}

/// Full write-path session over stdin: deletes become invisible to the
/// very next query, inserts and updates of a query's exact vector become
/// its top hit, explicit `COMMIT` and `COMPACT` report what they did, and
/// every query line still gets exactly one response line.
#[test]
fn writes_over_stdin_protocol() {
    let (dir, corpus, _data, queries) = fixture("protocol");
    let q0 = queries.row(0).to_vec();
    let q1 = queries.row(1).to_vec();
    let args = ["--k", "5", "--w", "8", "--groups", "4", "--tables", "8", "--probe", "8"];

    // Dry run: learn which ids the (deterministic) index answers for q0,
    // so the session below deletes rows that provably would have appeared.
    let (probe_out, err, ok) = run_serve_raw(&corpus, &args, &format!("{}\n", fmt_vec(&q0)));
    assert!(ok, "probe run failed: {err}");
    let answered = ids_of(probe_out.lines().next().expect("one answer line"));
    assert!(!answered.is_empty(), "q0 must find something to delete: {probe_out}");
    // Row 7 plays the update/re-delete role below; keep it out of the
    // doomed set so the live-count arithmetic stays simple.
    let doomed: Vec<usize> = answered.into_iter().filter(|&id| id != 7).take(3).collect();

    let mut input = String::new();
    input.push_str(&fmt_vec(&q0)); // line 1: baseline answer
    input.push('\n');
    for id in &doomed {
        input.push_str(&format!("DELETE {id}\n"));
    }
    input.push_str("COMMIT\n"); // line 2: COMMITTED ... deleted=N
    input.push_str(&fmt_vec(&q0)); // line 3: doomed ids gone
    input.push('\n');
    // Insert q1's exact vector (id 500), auto-committed by the next query.
    input.push_str(&format!("UPSERT + {}\n", fmt_vec(&q1)));
    input.push_str(&fmt_vec(&q1)); // line 4: id 500 at distance 0
    input.push('\n');
    // Update row 7 to q0's exact vector, then delete it again.
    input.push_str(&format!("UPSERT 7 {}\n", fmt_vec(&q0)));
    input.push_str(&fmt_vec(&q0)); // line 5: id 7 at distance 0
    input.push('\n');
    input.push_str("DELETE 7\n");
    input.push_str(&fmt_vec(&q0)); // line 6: id 7 gone again
    input.push('\n');
    input.push_str("COMPACT\n"); // line 7: COMPACTED live=497
    input.push_str(&fmt_vec(&q0)); // line 8: still answers, ids renumbered
    input.push('\n');
    input.push_str("DELETE 100000\n");
    input.push_str("COMMIT\n"); // line 9: ERROR (id out of range)
    input.push_str(&fmt_vec(&q0)); // line 10: index unchanged, still answers
    input.push('\n');

    let (out, err, ok) = run_serve_raw(&corpus, &args, &input);
    assert!(ok, "serve with writes failed: {err}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 10, "one output line per query/control line: {out}");

    // Deterministic replay: the baseline answer matches the dry run, so
    // every doomed id demonstrably would have appeared.
    let baseline = ids_of(lines[0]);
    for id in &doomed {
        assert!(baseline.contains(id), "dry-run id {id} missing from baseline: {}", lines[0]);
    }
    assert_eq!(
        lines[1],
        format!("COMMITTED inserted=0 updated=0 deleted={} epoch=1", doomed.len())
    );
    let after_delete = ids_of(lines[2]);
    for id in &doomed {
        assert!(!after_delete.contains(id), "deleted id {id} surfaced: {}", lines[2]);
    }
    assert!(!ids_of(lines[3]).is_empty(), "insert of q1 must be found: {out}");
    assert_eq!(ids_of(lines[3])[0], 500, "inserted exact match must rank first: {}", lines[3]);
    assert!(lines[3].starts_with("500:0"), "insert of q1 itself has distance 0: {}", lines[3]);
    assert_eq!(ids_of(lines[4])[0], 7, "updated exact match must rank first: {}", lines[4]);
    assert!(!ids_of(lines[5]).contains(&7), "re-deleted id 7 surfaced: {}", lines[5]);
    // 500 rows + 1 insert - doomed deletes - 1 delete of row 7 = 500 - N.
    let live = 500 - doomed.len();
    assert_eq!(lines[6], format!("COMPACTED live={live} epoch=5"));
    assert!(ids_of(lines[7]).iter().all(|&id| id < live), "compacted ids are dense: {}", lines[7]);
    assert!(lines[8].starts_with("ERROR"), "out-of-range delete must fail: {}", lines[8]);
    assert!(!ids_of(lines[9]).is_empty(), "failed commit must leave the index serving");

    std::fs::remove_dir_all(&dir).ok();
}

/// Sharded serving has no write path: write lines answer with an error
/// instead of being parsed as (malformed) query vectors.
#[test]
fn sharded_serve_rejects_writes() {
    let (dir, corpus, _data, queries) = fixture("sharded");
    let q0 = fmt_vec(queries.row(0));
    let input = format!("UPSERT + {q0}\nDELETE 3\nCOMMIT\n{q0}\n");
    let args = ["--k", "5", "--w", "8", "--groups", "4", "--tables", "8", "--shards", "3"];
    let (out, err, ok) = run_serve_raw(&corpus, &args, &input);
    assert!(ok, "sharded serve failed: {err}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "three rejections plus one answer: {out}");
    for line in &lines[..3] {
        assert!(line.starts_with("ERROR writes require an unsharded index"), "{line}");
    }
    assert!(!lines[3].starts_with("ERROR"), "queries still answer on a sharded index: {out}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Under a live dispatcher with a background query storm, a query
/// submitted after `commit` returns never contains the row that commit
/// deleted, and every ticket — including the storm's — resolves.
#[test]
fn committed_deletes_invisible_to_later_queries_under_load() {
    let all = synth::clustered(&ClusteredSpec::small(400), 23);
    let (data, queries) = all.split_at(360);
    let config = BiLevelConfig::paper_default(8.0).tables(8).probe(Probe::Multi(8));
    let backend = MutableBackend::new(BiLevelIndex::build_owned(data, &config));
    let mut writer = backend.writer();
    let service = Service::start(
        backend,
        ServiceConfig::default().max_batch(8).max_wait(Duration::from_micros(200)),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let storm = {
        let handle = service.handle().expect("service is running");
        let queries = queries.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut resolved = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for q in 0..queries.len() {
                    let deadline = Instant::now() + Duration::from_secs(5);
                    let ticket = handle.submit(queries.row(q), 10, Some(deadline)).unwrap();
                    ticket.wait().expect("storm tickets always resolve");
                    resolved += 1;
                }
            }
            resolved
        })
    };

    let handle = service.handle().expect("service is running");
    let rec = NoopRecorder;
    for victim in (0..50).map(|i| i * 7) {
        writer.stage_delete(victim);
        let summary = writer.commit(&rec).expect("in-range delete commits").unwrap();
        assert_eq!(summary.deleted, 1);
        // Submitted strictly after commit returned: the victim must be gone.
        for q in 0..4 {
            let deadline = Instant::now() + Duration::from_secs(5);
            let ticket = handle.submit(queries.row(q), 10, Some(deadline)).unwrap();
            let response = ticket.wait().expect("post-commit queries resolve");
            assert!(
                response.neighbors.iter().all(|n| n.id != victim),
                "query {q} surfaced deleted row {victim}"
            );
        }
    }

    stop.store(true, Ordering::Relaxed);
    let resolved = storm.join().expect("storm thread never panics");
    assert!(resolved > 0, "storm actually ran");
    let stats = service.stats();
    assert_eq!(stats.submitted, stats.completed, "no ticket was dropped");
    assert_eq!(stats.panicked, 0, "no batch group panicked: {stats:?}");
}

/// A commit that fails validation applies nothing (all-or-nothing), and a
/// successful commit reports its insert/delete counts to telemetry.
#[test]
fn commit_all_or_nothing_and_telemetry_counters() {
    let all = synth::clustered(&ClusteredSpec::small(120), 5);
    let config = BiLevelConfig::paper_default(8.0);
    let backend = MutableBackend::new(BiLevelIndex::build_owned(all.clone(), &config));
    let mut writer = backend.writer();
    let rec = InMemoryRecorder::new();

    // Bad batch: one valid insert plus one out-of-range update.
    writer.stage_insert(&vec![0.25f32; all.dim()]).unwrap();
    writer.stage_update(all.len() + 10, &vec![0.5f32; all.dim()]).unwrap();
    let err = writer.commit(&rec).expect_err("out-of-range update must fail");
    assert!(err.to_string().contains("out of range"), "{err}");
    assert_eq!(backend.live_len(), all.len(), "failed commit applied nothing");
    assert_eq!(backend.epoch(), 0, "failed commit does not advance the epoch");

    // Good batch: two inserts, one delete.
    writer.stage_insert(&vec![0.1f32; all.dim()]).unwrap();
    writer.stage_insert(&vec![0.2f32; all.dim()]).unwrap();
    writer.stage_delete(3);
    let summary = writer.commit(&rec).expect("valid batch commits").unwrap();
    assert_eq!((summary.inserted, summary.updated, summary.deleted), (2, 0, 1));
    assert_eq!(backend.live_len(), all.len() + 1);
    assert_eq!(backend.epoch(), 1);
    assert_eq!(rec.counter(Counter::Inserts), 2);
    assert_eq!(rec.counter(Counter::Deletes), 1);

    // Wrong-width vectors are rejected at staging time, not commit time.
    assert!(writer.stage_insert(&vec![0.0f32; all.dim() + 1]).is_err());
    assert_eq!(writer.pending(), 0, "rejected stage left nothing behind");

    writer.compact(&rec);
    assert_eq!(backend.live_len(), all.len() + 1);
    assert_eq!(rec.counter(Counter::Compactions), 1);
}
