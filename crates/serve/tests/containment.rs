//! Failure-containment chaos tests for the service: a panicking backend
//! must never hang a [`Ticket`], never kill unrelated requests, and a
//! panicking *shard* behind the fan-out layer must degrade to
//! coverage-tagged partial answers and recover through the breaker's
//! half-open probe.

use bilevel_lsh::{BatchResult, BiLevelConfig, Probe, QueryOptions, ShardedIndex};
use knn_serve::{
    Backend, BatchOutcome, Coverage, FanoutBackend, FanoutConfig, ResponseError, Service,
    ServiceConfig, ShardSource, SubmitError,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vecstore::synth::{self, ClusteredSpec};
use vecstore::Dataset;

/// Generous bound on how long any single wait may block: the never-hang
/// contract says every ticket resolves well within this.
const WAIT_DEADLINE: Duration = Duration::from_secs(10);

/// A backend that panics on every batch.
struct AlwaysPanics {
    dim: usize,
}

impl Backend for AlwaysPanics {
    fn dim(&self) -> usize {
        self.dim
    }

    fn probe(&self) -> Probe {
        Probe::Home
    }

    fn supports_probe(&self, _probe: Probe) -> bool {
        true
    }

    fn query_batch_opts(&self, _queries: &Dataset, _options: &QueryOptions<'_>) -> BatchOutcome {
        panic!("chaos: backend always panics");
    }
}

/// Every request against an always-panicking backend resolves with the
/// typed panic error — promptly, and without killing the dispatcher.
#[test]
fn panicking_batches_resolve_every_ticket_with_typed_errors() {
    let service = Service::start(
        AlwaysPanics { dim: 4 },
        ServiceConfig::default().max_batch(4).max_wait(Duration::from_micros(200)),
    );
    let handle = service.handle().unwrap();
    let v = [1.0f32; 4];

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let mut outcomes = Vec::new();
                for _ in 0..10 {
                    let ticket = handle.submit(&v, 3, None).expect("queue has room");
                    let started = Instant::now();
                    let result = ticket.wait_timeout(WAIT_DEADLINE);
                    assert!(started.elapsed() < WAIT_DEADLINE, "wait blocked to its deadline");
                    outcomes.push(result);
                }
                outcomes
            })
        })
        .collect();

    let mut panicked = 0u64;
    for worker in workers {
        for outcome in worker.join().expect("producer must not die") {
            match outcome {
                Err(ResponseError::Panicked { message }) => {
                    assert!(message.contains("chaos"), "panic payload lost: {message}");
                    panicked += 1;
                }
                other => panic!("expected a typed panic error, got {other:?}"),
            }
        }
    }
    assert_eq!(panicked, 40);
    let stats = service.stats();
    assert_eq!(stats.panicked, 40);
    assert_eq!(stats.completed, 0);
    assert_eq!(
        stats.dispatcher_restarts, 0,
        "per-batch containment must not restart the dispatcher"
    );
    assert_eq!(stats.queue_depth, 0, "every queued job was accounted for");
    drop(handle);
    service.shutdown();
}

/// A backend whose `dim()` starts panicking after service start — the
/// panic escapes the per-batch guard and crashes the dispatch loop
/// itself, exercising the supervisor.
struct DimBomb {
    armed: AtomicBool,
    calls: AtomicU64,
}

/// Local newtype so the foreign `Backend` trait can be implemented over
/// a shared bomb (orphan rule).
struct SharedBomb(Arc<DimBomb>);

impl Backend for SharedBomb {
    fn dim(&self) -> usize {
        self.0.calls.fetch_add(1, Ordering::Relaxed);
        if self.0.armed.load(Ordering::Relaxed) {
            panic!("chaos: dispatcher-level failure");
        }
        4
    }

    fn probe(&self) -> Probe {
        Probe::Home
    }

    fn supports_probe(&self, _probe: Probe) -> bool {
        true
    }

    fn query_batch_opts(&self, queries: &Dataset, _options: &QueryOptions<'_>) -> BatchOutcome {
        BatchOutcome {
            neighbors: vec![Vec::new(); queries.len()],
            candidates: vec![0; queries.len()],
            coverage: Coverage::full(1),
        }
    }
}

/// When the dispatch loop itself keeps crashing, the supervisor restarts
/// it up to the cap, then the service dies *typed*: every outstanding or
/// queued ticket resolves (never hangs), and new submissions are
/// rejected cleanly.
#[test]
fn crashed_dispatcher_dies_typed_and_never_hangs_a_ticket() {
    let bomb = Arc::new(DimBomb { armed: AtomicBool::new(false), calls: AtomicU64::new(0) });
    let service = Service::start(
        SharedBomb(Arc::clone(&bomb)),
        ServiceConfig::default()
            .max_batch(2)
            .max_wait(Duration::from_micros(100))
            .max_dispatcher_restarts(2),
    );
    let handle = service.handle().unwrap();
    let v = [1.0f32; 4];

    // Sanity: the service works before the bomb is armed.
    handle.submit(&v, 1, None).unwrap().wait().unwrap();

    // Arm the bomb and fire requests until the supervisor gives up. Each
    // batch crashes the loop; after the restart budget the queue closes.
    bomb.armed.store(true, Ordering::Relaxed);
    let mut tickets = Vec::new();
    let mut closed = false;
    let started = Instant::now();
    while started.elapsed() < WAIT_DEADLINE {
        match handle.submit(&v, 1, None) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Closed) => {
                closed = true;
                break;
            }
            Err(SubmitError::Overloaded) => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(closed, "a dead dispatcher must disconnect the queue");

    // Every accepted ticket resolves with a typed error — no hangs.
    for ticket in tickets {
        let started = Instant::now();
        match ticket.wait_timeout(WAIT_DEADLINE) {
            Err(ResponseError::ServiceDied) | Err(ResponseError::Panicked { .. }) => {}
            Ok(_) => {} // a batch that raced in before the crash is fine
            Err(other) => panic!("expected a typed death, got {other:?}"),
        }
        assert!(started.elapsed() < WAIT_DEADLINE, "ticket hung on a dead service");
    }
    let stats = service.stats();
    assert!(
        stats.dispatcher_restarts >= 3,
        "expected 2 restarts + the terminal crash, saw {}",
        stats.dispatcher_restarts
    );
    drop(handle);
    service.shutdown();
}

/// Delegates to a real sharded index but panics on one designated shard
/// while the switch is on.
struct FlakyShard {
    inner: Arc<ShardedIndex>,
    bad_shard: usize,
    failing: AtomicBool,
}

/// Local newtype so the foreign `ShardSource` trait can be implemented
/// over a shared flaky shard (orphan rule).
struct SharedFlaky(Arc<FlakyShard>);

impl ShardSource for SharedFlaky {
    fn dim(&self) -> usize {
        self.0.inner.data().dim()
    }

    fn probe(&self) -> Probe {
        self.0.inner.config().probe
    }

    fn supports_probe(&self, probe: Probe) -> bool {
        ShardedIndex::supports_probe(&self.0.inner, probe)
    }

    fn num_shards(&self) -> usize {
        self.0.inner.num_shards()
    }

    fn query_shard_batch_opts(
        &self,
        shard: usize,
        queries: &Dataset,
        options: &QueryOptions<'_>,
    ) -> BatchResult {
        if shard == self.0.bad_shard && self.0.failing.load(Ordering::Relaxed) {
            panic!("chaos: injected shard failure");
        }
        self.0.inner.query_shard_batch_opts(shard, queries, options)
    }
}

/// End-to-end: one shard panicking behind the fan-out layer degrades
/// service responses to coverage-tagged partials (counted in stats), the
/// breaker opens, and after the shard heals a half-open probe restores
/// full coverage with answers matching the healthy index.
#[test]
fn shard_failure_degrades_to_partial_coverage_then_recovers() {
    let all = synth::clustered(&ClusteredSpec::small(500), 9);
    let (data, queries) = all.split_at(440);
    let index = Arc::new(ShardedIndex::build(data, &BiLevelConfig::paper_default(2.0), 3));
    let flaky = Arc::new(FlakyShard {
        inner: Arc::clone(&index),
        bad_shard: 1,
        failing: AtomicBool::new(true),
    });
    let fanout = FanoutBackend::new(
        SharedFlaky(Arc::clone(&flaky)),
        FanoutConfig::default().failure_threshold(2).open_for(Duration::from_millis(30)),
    );
    let fault_stats = fanout.fault_stats();
    let service = Service::start(fanout, ServiceConfig::default());

    // While the shard is down, responses arrive — partial, tagged, and
    // still exact over the healthy shards.
    let mut partials = 0;
    for q in 0..4 {
        let resp = service.submit(queries.row(q), 5, None).unwrap().wait().unwrap();
        if !resp.coverage.is_full() {
            assert_eq!(resp.coverage, Coverage { answered: 2, total: 3 });
            partials += 1;
        }
    }
    assert!(partials >= 3, "a dead shard must yield partial coverage");
    assert!(fault_stats.breaker_opens() >= 1, "consecutive failures must trip the breaker");
    assert!(service.stats().partial_responses >= 3);

    // Heal the shard, let the open window lapse: the half-open probe
    // closes the breaker and answers go back to full coverage, matching
    // the healthy lockstep index bit-for-bit.
    flaky.failing.store(false, Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(40));
    let started = Instant::now();
    loop {
        let resp = service.submit(queries.row(5), 5, None).unwrap().wait().unwrap();
        if resp.coverage.is_full() {
            assert_eq!(resp.neighbors, index.query(queries.row(5), 5));
            break;
        }
        assert!(started.elapsed() < WAIT_DEADLINE, "breaker never recovered");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(fault_stats.half_open_probes() >= 1);
    assert!(fault_stats.breaker_closes() >= 1);
    service.shutdown();
}

/// `wait_timeout` on a response that never comes returns the typed
/// timeout error instead of blocking forever.
#[test]
fn wait_timeout_is_bounded() {
    struct Stuck;
    impl Backend for Stuck {
        fn dim(&self) -> usize {
            2
        }
        fn probe(&self) -> Probe {
            Probe::Home
        }
        fn supports_probe(&self, _probe: Probe) -> bool {
            true
        }
        fn query_batch_opts(
            &self,
            _queries: &Dataset,
            _options: &QueryOptions<'_>,
        ) -> BatchOutcome {
            loop {
                std::thread::sleep(Duration::from_secs(60));
            }
        }
    }
    let service = Service::start(Stuck, ServiceConfig::default());
    let ticket = service.submit(&[0.0, 0.0], 1, None).unwrap();
    let started = Instant::now();
    let err = ticket.wait_timeout(Duration::from_millis(50)).unwrap_err();
    assert_eq!(err, ResponseError::WaitTimeout);
    assert!(started.elapsed() < Duration::from_secs(5));
    // Leak the stuck service: shutting down would join the sleeping
    // dispatcher. Drop without shutdown is exactly the abandon path a
    // crashing process takes, and must not hang the test binary either.
    std::mem::forget(service);
}
