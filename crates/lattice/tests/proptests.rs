//! Property-based tests of the lattice invariants DESIGN.md calls out:
//! E8 decode validity/idempotence/local optimality, Morton roundtrips and
//! the prefix⇔ancestry property, and hierarchy probe containment.

use lattice::e8::{block_neighbors, decode_e8_block, dist_sq_to_point, is_e8_point};
use lattice::{decode_e8_raw, e8_ancestor, E8Hierarchy, MortonCode, ZmHierarchy};
use proptest::prelude::*;

fn block() -> impl Strategy<Value = [f64; 8]> {
    prop::array::uniform8(-50.0f64..50.0)
}

proptest! {
    #[test]
    fn decode_always_yields_e8_point(x in block()) {
        let code = decode_e8_block(&x);
        prop_assert!(is_e8_point(&code), "{x:?} -> {code:?}");
    }

    #[test]
    fn decode_is_idempotent(x in block()) {
        let code = decode_e8_block(&x);
        let mut real = [0.0f64; 8];
        for i in 0..8 {
            real[i] = code[i] as f64 / 2.0;
        }
        prop_assert_eq!(decode_e8_block(&real), code);
    }

    #[test]
    fn decode_is_locally_optimal(x in block()) {
        // No root neighbor of the decoded point is strictly closer: the
        // decoder found (at least) a local minimum over the lattice, which
        // for E8's coset decoder is the global one.
        let code = decode_e8_block(&x);
        let d = dist_sq_to_point(&x, &code);
        for n in block_neighbors(&code) {
            prop_assert!(dist_sq_to_point(&x, &n) >= d - 1e-9);
        }
    }

    #[test]
    fn ancestor_stays_in_lattice_and_shrinks(x in block()) {
        let code = decode_e8_block(&x).to_vec();
        let parent = e8_ancestor(&code);
        let pb: [i32; 8] = parent.as_slice().try_into().unwrap();
        prop_assert!(is_e8_point(&pb));
        let norm = |c: &[i32]| {
            c.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
        };
        // The parent is the decode of the halved point, so its norm is at
        // most half the child's plus E8's covering radius (doubled units:
        // 2 per coordinate, √32 ≈ 5.7 overall).
        prop_assert!(norm(&parent) <= norm(&code) / 2.0 + 6.0,
            "parent {parent:?} did not shrink from {code:?}");
    }

    #[test]
    fn ancestor_chains_stabilize(x in block()) {
        let mut code = decode_e8_block(&x).to_vec();
        for _ in 0..64 {
            let parent = e8_ancestor(&code);
            if parent == code {
                break;
            }
            code = parent;
        }
        prop_assert_eq!(e8_ancestor(&code), code, "chain failed to reach a fixed point");
    }

    #[test]
    fn multiblock_decode_blockwise(raw in prop::collection::vec(-30.0f32..30.0, 1..40)) {
        let code = decode_e8_raw(&raw);
        prop_assert_eq!(code.len(), raw.len().div_ceil(8) * 8);
        for chunk in code.chunks_exact(8) {
            let cb: [i32; 8] = chunk.try_into().unwrap();
            prop_assert!(is_e8_point(&cb));
        }
    }

    #[test]
    fn morton_roundtrip(coords in prop::collection::vec(any::<i32>(), 1..12)) {
        let code = MortonCode::encode(&coords);
        prop_assert_eq!(code.decode(), coords);
    }

    #[test]
    fn morton_prefix_matches_coordinate_prefix(
        a in prop::collection::vec(-10_000i32..10_000, 2..6),
        deltas in prop::collection::vec(-4i32..=4, 2..6),
    ) {
        let m = a.len().min(deltas.len());
        let a = &a[..m];
        let b: Vec<i32> = a.iter().zip(&deltas[..m]).map(|(x, d)| x + d).collect();
        let ca = MortonCode::encode(a);
        let cb = MortonCode::encode(&b);
        let levels = ca.shared_prefix_bits(&cb) / m;
        let shift = 32usize.saturating_sub(levels.min(32)) as u32;
        for i in 0..m {
            let ua = (a[i] as u32) ^ 0x8000_0000;
            let ub = (b[i] as u32) ^ 0x8000_0000;
            prop_assert_eq!(
                ua.checked_shr(shift).unwrap_or(0),
                ub.checked_shr(shift).unwrap_or(0),
            );
        }
    }

    #[test]
    fn zm_hierarchy_probe_contains_exact_bucket(
        codes in prop::collection::vec(prop::collection::vec(-40i32..40, 3), 1..50),
    ) {
        let mut distinct = codes;
        distinct.sort_unstable();
        distinct.dedup();
        let h = ZmHierarchy::build(
            distinct.iter().enumerate().map(|(i, c)| (c.as_slice(), i as u32)),
        );
        for (i, code) in distinct.iter().enumerate() {
            let got = h.probe_expanding(code, 1);
            prop_assert!(got.contains(&(i as u32)), "bucket {i} missing");
        }
        // Asking for everything returns everything.
        prop_assert_eq!(h.probe_expanding(&distinct[0], usize::MAX).len(), distinct.len());
    }

    #[test]
    fn e8_hierarchy_probe_contains_exact_bucket(
        raws in prop::collection::vec(prop::array::uniform8(-20.0f32..20.0), 1..30),
    ) {
        let mut codes: Vec<Vec<i32>> = raws.iter().map(|r| decode_e8_raw(r)).collect();
        codes.sort_unstable();
        codes.dedup();
        let h = E8Hierarchy::build(
            codes.iter().enumerate().map(|(i, c)| (c.as_slice(), i as u32)),
        );
        for (i, code) in codes.iter().enumerate() {
            let got = h.probe_expanding(code, 1);
            prop_assert!(got.contains(&(i as u32)), "bucket {i} missing");
        }
    }

    #[test]
    fn zm_hierarchy_levels_nest(
        codes in prop::collection::vec(prop::collection::vec(-40i32..40, 2), 2..40),
        q in prop::collection::vec(-40i32..40, 2),
    ) {
        let mut distinct = codes;
        distinct.sort_unstable();
        distinct.dedup();
        let h = ZmHierarchy::build(
            distinct.iter().enumerate().map(|(i, c)| (c.as_slice(), i as u32)),
        );
        let mut prev: Option<Vec<u32>> = None;
        for level in (0..=32usize).rev().step_by(8) {
            let mut cur = h.buckets_at_level(&q, level);
            cur.sort_unstable();
            if let Some(p) = &prev {
                for b in p {
                    prop_assert!(cur.contains(b), "level {level} lost bucket {b}");
                }
            }
            prev = Some(cur);
        }
    }
}
