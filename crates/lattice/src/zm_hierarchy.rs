//! Morton-curve hierarchy over the occupied buckets of a `Z^M` LSH table.
//!
//! All distinct bucket codes are Morton-encoded and sorted; the sorted curve
//! is the paper's hierarchical LSH table for `Z^M` (Section IV-B2a). Query
//! operations are (a) *nearest buckets along the curve* — the codes before
//! and after the query's insert position, optionally with bit-perturbation
//! repeats — and (b) *expanding prefix probes*: grow the shared-MSB window
//! (one subdivision level at a time) until enough buckets are gathered.

use crate::morton::MortonCode;
use serde::{Deserialize, Serialize};

/// A sorted Morton curve over bucket codes.
///
/// `u32` payloads are bucket indices assigned by the caller (positions into
/// whatever bucket storage the caller keeps).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZmHierarchy {
    entries: Vec<(MortonCode, u32)>,
    m: usize,
}

impl ZmHierarchy {
    /// Builds the hierarchy from `(code, bucket-index)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `codes` is empty or codes disagree on dimension.
    pub fn build<'a, I>(codes: I) -> Self
    where
        I: IntoIterator<Item = (&'a [i32], u32)>,
    {
        let mut entries: Vec<(MortonCode, u32)> =
            codes.into_iter().map(|(c, id)| (MortonCode::encode(c), id)).collect();
        assert!(!entries.is_empty(), "hierarchy needs at least one bucket");
        let m = entries[0].0.m();
        assert!(entries.iter().all(|(c, _)| c.m() == m), "mixed code dimensions");
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Self { entries, m }
    }

    /// Number of buckets on the curve.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the curve is empty (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Coordinate dimension `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Position at which `code`'s Morton code would insert while keeping the
    /// curve sorted.
    fn insert_position(&self, code: &MortonCode) -> usize {
        self.entries.partition_point(|(c, _)| c < code)
    }

    /// The `count` bucket indices nearest to `code` along the curve
    /// (alternating after/before the insert position), nearest first.
    ///
    /// This is the paper's base Morton probe: "use the Morton codes before
    /// and after the insert position".
    pub fn nearest_buckets(&self, code: &[i32], count: usize) -> Vec<u32> {
        self.nearest_in_order(&MortonCode::encode(code), count)
    }

    /// Bit-perturbed probing (Liao et al.; paper §IV-B2a: "we need to
    /// perturb some bits of the query Morton code and repeat this process
    /// several times"): gathers the `per_probe` nearest buckets around the
    /// insert positions of the query code *and* of `flips` variants of it
    /// with one high-order coordinate bit flipped each, deduplicated,
    /// nearest-first per probe.
    ///
    /// The single-curve search misses neighbors that straddle high-order
    /// cube boundaries; re-searching from flipped-bit positions recovers
    /// them.
    pub fn nearest_buckets_perturbed(
        &self,
        code: &[i32],
        per_probe: usize,
        flips: usize,
    ) -> Vec<u32> {
        let target = MortonCode::encode(code);
        let mut out = self.nearest_in_order(&target, per_probe);
        // Flip the most significant per-coordinate bits that still vary
        // across the dataset: bits 0..flips of the interleaved code.
        for bit in 0..flips.min(target.bits()) {
            let variant = target.with_flipped_bit(bit);
            out.extend(self.nearest_in_order(&variant, per_probe));
        }
        // Dedup preserving first-seen (nearest) order.
        let mut seen = vec![false; self.entries.len()];
        out.retain(|&b| {
            let fresh = !seen[b as usize];
            seen[b as usize] = true;
            fresh
        });
        out
    }

    /// `nearest_buckets` against a precomputed Morton code.
    fn nearest_in_order(&self, target: &MortonCode, count: usize) -> Vec<u32> {
        let pos = self.insert_position(target);
        let mut out = Vec::with_capacity(count.min(self.entries.len()));
        let (mut lo, mut hi) = (pos, pos);
        while out.len() < count && (lo > 0 || hi < self.entries.len()) {
            let take_hi = match (lo > 0, hi < self.entries.len()) {
                (true, true) => {
                    self.entries[hi].0.shared_prefix_bits(target)
                        >= self.entries[lo - 1].0.shared_prefix_bits(target)
                }
                (false, true) => true,
                (true, false) => false,
                (false, false) => unreachable!("loop condition"),
            };
            if take_hi {
                out.push(self.entries[hi].1);
                hi += 1;
            } else {
                lo -= 1;
                out.push(self.entries[lo].1);
            }
        }
        out
    }

    /// Buckets whose Morton codes share at least `levels` full subdivision
    /// levels (`levels · M` leading bits) with `code`.
    pub fn buckets_at_level(&self, code: &[i32], levels: usize) -> Vec<u32> {
        let target = MortonCode::encode(code);
        let bits = (levels * self.m).min(target.bits());
        let pos = self.insert_position(&target);
        let mut out = Vec::new();
        // Scan left then right while the prefix holds; contiguity follows
        // from the curve being sorted.
        let mut i = pos;
        while i > 0 && self.entries[i - 1].0.shares_prefix(&target, bits) {
            i -= 1;
            out.push(self.entries[i].1);
        }
        out.reverse();
        let mut j = pos;
        while j < self.entries.len() && self.entries[j].0.shares_prefix(&target, bits) {
            out.push(self.entries[j].1);
            j += 1;
        }
        out
    }

    /// Expanding probe: starting from the deepest level on which any bucket
    /// agrees with `code`, coarsen one level at a time until at least
    /// `min_buckets` buckets are collected (or the whole curve is returned).
    ///
    /// This is the paper's escalation rule for queries in sparse regions:
    /// "when the shared MSB number is small, traverse to a higher level in
    /// the hierarchy and use a larger bucket".
    pub fn probe_expanding(&self, code: &[i32], min_buckets: usize) -> Vec<u32> {
        let target = MortonCode::encode(code);
        let pos = self.insert_position(&target);
        // Deepest meaningful level = max shared bits with either neighbor.
        let mut best_bits = 0usize;
        if pos > 0 {
            best_bits = best_bits.max(self.entries[pos - 1].0.shared_prefix_bits(&target));
        }
        if pos < self.entries.len() {
            best_bits = best_bits.max(self.entries[pos].0.shared_prefix_bits(&target));
        }
        let mut level = best_bits / self.m;
        loop {
            let buckets = self.buckets_at_level(code, level);
            if buckets.len() >= min_buckets || level == 0 {
                return buckets;
            }
            level -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(codes: &[Vec<i32>]) -> ZmHierarchy {
        ZmHierarchy::build(codes.iter().enumerate().map(|(i, c)| (c.as_slice(), i as u32)))
    }

    #[test]
    fn exact_bucket_is_first_nearest() {
        let h = build(&[vec![0, 0], vec![0, 1], vec![8, 8], vec![-5, 2]]);
        let near = h.nearest_buckets(&[0, 1], 1);
        assert_eq!(near, vec![1]);
    }

    #[test]
    fn nearest_buckets_returns_requested_count() {
        let h = build(&[vec![0], vec![1], vec![2], vec![3], vec![10]]);
        assert_eq!(h.nearest_buckets(&[2], 3).len(), 3);
        // Asking for more than exists returns everything.
        assert_eq!(h.nearest_buckets(&[2], 99).len(), 5);
    }

    #[test]
    fn nearest_in_1d_matches_numeric_adjacency() {
        // M=1 Morton order is integer order, so the nearest buckets to 5 are
        // 4 and 6 before 0 and 100.
        let h = build(&[vec![0], vec![4], vec![6], vec![100]]);
        let near = h.nearest_buckets(&[5], 2);
        assert_eq!(
            {
                let mut v = near.clone();
                v.sort_unstable();
                v
            },
            vec![1, 2]
        );
    }

    #[test]
    fn buckets_at_level_zero_is_everything() {
        let h = build(&[vec![1, 1], vec![-1, 3], vec![7, -2]]);
        assert_eq!(h.buckets_at_level(&[0, 0], 0).len(), 3);
    }

    #[test]
    fn buckets_at_full_level_is_exact_match_only() {
        let h = build(&[vec![3, 4], vec![3, 5], vec![9, 9]]);
        let exact = h.buckets_at_level(&[3, 4], 32);
        assert_eq!(exact, vec![0]);
        // A code not in the table matches nothing at full depth.
        assert!(h.buckets_at_level(&[2, 2], 32).is_empty());
    }

    #[test]
    fn deeper_levels_are_subsets_of_shallower() {
        let codes: Vec<Vec<i32>> =
            (0..40).map(|i| vec![i % 7 - 3, (i * 13) % 11 - 5, i / 4]).collect();
        let h = build(&codes);
        let q = [1, -2, 3];
        let mut prev: Option<Vec<u32>> = None;
        for level in (0..=32).rev() {
            let mut cur = h.buckets_at_level(&q, level);
            cur.sort_unstable();
            if let Some(p) = &prev {
                assert!(p.iter().all(|b| cur.contains(b)), "level {level} lost buckets");
            }
            prev = Some(cur);
        }
    }

    #[test]
    fn probe_expanding_meets_minimum_or_exhausts() {
        let codes: Vec<Vec<i32>> = (0..20).map(|i| vec![i, -i]).collect();
        let h = build(&codes);
        let got = h.probe_expanding(&[3, -3], 5);
        assert!(got.len() >= 5);
        // Impossible minimum returns the full curve.
        let all = h.probe_expanding(&[3, -3], 1000);
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn probe_expanding_in_sparse_region_escalates() {
        // Query far from the two tight groups: expansion must still find
        // buckets rather than returning empty.
        let h = build(&[vec![0, 0], vec![0, 1], vec![1000, 1000]]);
        let got = h.probe_expanding(&[500, 500], 1);
        assert!(!got.is_empty());
    }

    #[test]
    fn perturbed_probe_supersets_plain_probe() {
        let codes: Vec<Vec<i32>> = (0..30).map(|i| vec![i - 15, (i * 7) % 11 - 5]).collect();
        let h = build(&codes);
        let q = [2, -3];
        let plain = h.nearest_buckets(&q, 4);
        let perturbed = h.nearest_buckets_perturbed(&q, 4, 8);
        for b in &plain {
            assert!(perturbed.contains(b), "perturbed probe lost bucket {b}");
        }
        assert!(perturbed.len() >= plain.len());
    }

    #[test]
    fn perturbed_probe_has_no_duplicates() {
        let codes: Vec<Vec<i32>> = (0..20).map(|i| vec![i, i % 5]).collect();
        let h = build(&codes);
        let got = h.nearest_buckets_perturbed(&[3, 2], 6, 16);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), got.len());
    }

    #[test]
    fn perturbed_probe_recovers_boundary_neighbors() {
        // -1 and 0 differ in every Morton bit (sign flip): the plain curve
        // search from one side can miss the other at small budgets, while a
        // high-bit flip recovers it.
        let h = build(&[vec![-1], vec![0], vec![1000], vec![-1000]]);
        let got = h.nearest_buckets_perturbed(&[0], 2, 4);
        assert!(got.contains(&0), "bucket of -1 missing: {got:?}");
        assert!(got.contains(&1), "bucket of 0 missing: {got:?}");
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn empty_build_panics() {
        let _ = ZmHierarchy::build(std::iter::empty::<(&[i32], u32)>());
    }
}
