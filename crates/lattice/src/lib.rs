#![warn(missing_docs)]

//! Lattice quantizers and bucket hierarchies for LSH tables.
//!
//! Two space quantizers back the paper's level-2 hash tables:
//!
//! * the integer lattice `Z^M` (plain floor quantization, done in the `lsh`
//!   crate) with a **Morton-curve hierarchy** ([`zm_hierarchy`]) built over
//!   the occupied buckets, and
//! * the **E8 lattice** ([`e8`]) — the densest packing in 8 dimensions —
//!   decoded via its `D8 ∪ (D8 + ½)` coset structure, with a scaled-decode
//!   hierarchy ([`e8_hierarchy`]) exploiting E8's closure under doubling.
//!
//! Everything here is pure integer/float math with no I/O; the `core` crate
//! wires these quantizers behind the `lsh` projections.

pub mod density;
pub mod e8;
pub mod e8_hierarchy;
pub mod morton;
pub mod zm_hierarchy;

pub use e8::{decode_e8_block, decode_e8_raw, e8_ancestor, e8_roots, E8Code};
pub use e8_hierarchy::E8Hierarchy;
pub use morton::MortonCode;
pub use zm_hierarchy::ZmHierarchy;
