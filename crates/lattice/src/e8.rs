//! The E8 lattice: decoder, roots, and scaling hierarchy.
//!
//! E8 is the set of points in `R^8` whose coordinates are all integers or
//! all half-integers and whose coordinate sum is an even integer. It is the
//! densest lattice packing in dimension 8, which is why the paper uses it
//! (via Jégou et al.) as a space quantizer: its Voronoi cell is far closer
//! to a ball than the `Z^8` cube, so a bucket's occupants are genuinely
//! near the query.
//!
//! # Representation
//!
//! Lattice points are stored with **doubled integer coordinates** (`i32`):
//! the point `(½)^8` becomes `(1)^8`. In doubled form a vector `y` is in E8
//! iff all eight coordinates share one parity and `Σy ≡ 0 (mod 4)`.
//! This keeps every code exactly representable and hashable.
//!
//! # Decoding
//!
//! Decoding uses the coset structure `E8 = D8 ∪ (D8 + ½)` where `D8` is the
//! even-sum integer lattice: decode into both cosets (round, then fix parity
//! by flipping the coordinate with the largest rounding error) and keep the
//! closer candidate — the classic ~104-operation decoder the paper cites.

/// An E8 (or block-concatenated E8) code in doubled integer coordinates.
pub type E8Code = Vec<i32>;

/// Rounds `x` to the nearest integer, breaking .5 ties upward.
///
/// A fixed tie rule keeps the decoder deterministic across platforms.
#[inline]
fn round_half_up(x: f64) -> f64 {
    (x + 0.5).floor()
}

/// Nearest `D8` point (even coordinate sum) to `x`, in plain (not doubled)
/// coordinates. Second return is the squared distance.
fn decode_d8(x: &[f64; 8]) -> ([f64; 8], f64) {
    let mut rounded = [0.0f64; 8];
    let mut sum = 0i64;
    // Track the coordinate where flipping the rounding direction costs the
    // least extra error — equivalently, where |err| is largest.
    let mut worst = 0usize;
    let mut worst_abs = -1.0f64;
    for i in 0..8 {
        rounded[i] = round_half_up(x[i]);
        sum += rounded[i] as i64;
        let err = x[i] - rounded[i];
        if err.abs() > worst_abs {
            worst_abs = err.abs();
            worst = i;
        }
    }
    if sum.rem_euclid(2) != 0 {
        // Flip the worst coordinate toward the other side.
        let err = x[worst] - rounded[worst];
        rounded[worst] += if err >= 0.0 { 1.0 } else { -1.0 };
    }
    let mut d2 = 0.0;
    for i in 0..8 {
        let d = x[i] - rounded[i];
        d2 += d * d;
    }
    (rounded, d2)
}

/// Decodes one block of 8 raw values to the nearest E8 point, returned in
/// doubled integer coordinates.
pub fn decode_e8_block(x: &[f64; 8]) -> [i32; 8] {
    // Integer coset.
    let (p_int, d_int) = decode_d8(x);
    // Half-integer coset: decode x - ½ in D8, then shift back.
    let mut shifted = [0.0f64; 8];
    for i in 0..8 {
        shifted[i] = x[i] - 0.5;
    }
    let (p_half, d_half) = decode_d8(&shifted);
    let mut out = [0i32; 8];
    if d_int <= d_half {
        for i in 0..8 {
            out[i] = (2.0 * p_int[i]) as i32;
        }
    } else {
        for i in 0..8 {
            out[i] = (2.0 * (p_half[i] + 0.5)) as i32;
        }
    }
    out
}

/// Decodes an arbitrary-length raw projection by concatenating
/// `⌈len/8⌉` E8 blocks (the paper's `M > 8` strategy); the final partial
/// block is zero-padded.
pub fn decode_e8_raw(raw: &[f32]) -> E8Code {
    assert!(!raw.is_empty(), "cannot decode empty projection");
    let blocks = raw.len().div_ceil(8);
    let mut out = Vec::with_capacity(blocks * 8);
    let mut buf = [0.0f64; 8];
    for b in 0..blocks {
        buf.fill(0.0);
        for (i, slot) in buf.iter_mut().enumerate() {
            if let Some(&v) = raw.get(b * 8 + i) {
                *slot = v as f64;
            }
        }
        out.extend_from_slice(&decode_e8_block(&buf));
    }
    out
}

/// Whether a doubled-coordinate vector is a valid E8 point.
pub fn is_e8_point(y: &[i32; 8]) -> bool {
    let parity = y[0].rem_euclid(2);
    if y.iter().any(|&c| c.rem_euclid(2) != parity) {
        return false;
    }
    y.iter().map(|&c| c as i64).sum::<i64>().rem_euclid(4) == 0
}

/// The 240 minimal vectors (roots) of E8 in doubled coordinates, each with
/// doubled squared norm 8 (true norm `√2`). These are the equidistant
/// nearest lattice neighbors every bucket has, and they drive the E8
/// multi-probe sequence.
pub fn e8_roots() -> Vec<[i32; 8]> {
    let mut roots = Vec::with_capacity(240);
    // Type 1: (±2, ±2, 0^6) in doubled coords — all pairs of positions,
    // all four sign combinations. 28 · 4 = 112.
    for i in 0..8 {
        for j in i + 1..8 {
            for &si in &[2i32, -2] {
                for &sj in &[2i32, -2] {
                    let mut r = [0i32; 8];
                    r[i] = si;
                    r[j] = sj;
                    roots.push(r);
                }
            }
        }
    }
    // Type 2: (±1)^8 with an even number of minus signs. 2^7 = 128.
    for mask in 0u32..256 {
        if mask.count_ones() % 2 == 0 {
            let mut r = [1i32; 8];
            for (i, slot) in r.iter_mut().enumerate() {
                if mask & (1 << i) != 0 {
                    *slot = -1;
                }
            }
            roots.push(r);
        }
    }
    debug_assert_eq!(roots.len(), 240);
    roots
}

/// Squared distance between a raw block (plain coordinates) and a doubled-
/// coordinate lattice point.
pub fn dist_sq_to_point(x: &[f64; 8], doubled: &[i32; 8]) -> f64 {
    let mut d2 = 0.0;
    for i in 0..8 {
        let d = x[i] - doubled[i] as f64 / 2.0;
        d2 += d * d;
    }
    d2
}

/// The parent of an E8 code in the scaling hierarchy (Equation 10).
///
/// The paper's k-th ancestor is `H^k = 2^k · u_k` with the *reduced* codes
/// `u_0 = c`, `u_k = DECODE(u_{k−1} / 2)`; two buckets share a level-k
/// ancestor iff their `u_k` agree, so the hierarchy stores and compares the
/// reduced codes and the `2^k` factor is pure denormalization. This function
/// maps `u_{k−1} → u_k` block-wise. Reduced codes roughly halve in magnitude
/// per level, so every chain converges to the origin.
pub fn e8_ancestor(code: &[i32]) -> E8Code {
    assert_eq!(code.len() % 8, 0, "E8 codes are multiples of 8 long");
    assert!(!code.is_empty(), "E8 codes are non-empty");
    let mut out = Vec::with_capacity(code.len());
    let mut buf = [0.0f64; 8];
    for block in code.chunks_exact(8) {
        for i in 0..8 {
            // Halving the true point halves its doubled coordinates too;
            // doubled/2 expressed in real coordinates is doubled/4.
            buf[i] = block[i] as f64 / 4.0;
        }
        out.extend_from_slice(&decode_e8_block(&buf));
    }
    out
}

/// The 240 sibling codes of `code` (code + root, block-wise for
/// concatenated codes the roots are applied to every block of the first
/// block only — see [`block_neighbors`] for per-block control).
///
/// For a single 8-dim block this is exactly the paper's probe set.
pub fn block_neighbors(code: &[i32; 8]) -> Vec<[i32; 8]> {
    e8_roots()
        .into_iter()
        .map(|r| {
            let mut n = *code;
            for i in 0..8 {
                n[i] += r[i];
            }
            n
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn as_block(code: &[i32]) -> [i32; 8] {
        code.try_into().expect("8-long")
    }

    #[test]
    fn decode_returns_valid_e8_points() {
        let cases: Vec<[f64; 8]> = vec![
            [0.0; 8],
            [0.3, -0.2, 0.9, 1.4, -2.3, 0.1, 0.6, -0.5],
            [10.2, -7.7, 3.3, 0.01, 5.55, -9.9, 2.2, 1.1],
            [0.49, 0.51, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
        ];
        for x in cases {
            let code = decode_e8_block(&x);
            assert!(is_e8_point(&code), "decode({x:?}) = {code:?} not in E8");
        }
    }

    #[test]
    fn decode_is_idempotent_on_lattice_points() {
        // Decoding an exact lattice point returns that point.
        for point in [[0i32; 8], [1; 8], [2, 2, 0, 0, 0, 0, 0, 0], [-1, -1, -1, -1, 1, 1, 1, 1]] {
            assert!(is_e8_point(&point));
            let mut real = [0.0f64; 8];
            for i in 0..8 {
                real[i] = point[i] as f64 / 2.0;
            }
            assert_eq!(decode_e8_block(&real), point);
        }
    }

    #[test]
    fn decode_picks_nearest_among_roots() {
        // A point very close to the root (½)^8 must decode to it, not to 0.
        let x = [0.45f64; 8];
        assert_eq!(decode_e8_block(&x), [1i32; 8]);
        // And a point near the origin decodes to the origin.
        let y = [0.1f64, -0.1, 0.05, 0.0, 0.08, -0.03, 0.02, 0.0];
        assert_eq!(decode_e8_block(&y), [0i32; 8]);
    }

    #[test]
    fn exactly_240_roots_all_valid_and_minimal() {
        let roots = e8_roots();
        assert_eq!(roots.len(), 240);
        let mut seen = std::collections::HashSet::new();
        for r in &roots {
            assert!(is_e8_point(r), "{r:?} not in E8");
            let norm_sq: i64 = r.iter().map(|&c| (c as i64) * (c as i64)).sum();
            assert_eq!(norm_sq, 8, "doubled norm² of a root must be 8, got {r:?}");
            assert!(seen.insert(*r), "duplicate root {r:?}");
        }
    }

    #[test]
    fn decode_never_farther_than_both_cosets() {
        // The decoder must pick the closer of the two coset decodings.
        let x = [0.26f64, 0.24, 0.3, 0.2, 0.25, 0.27, 0.23, 0.22];
        let code = decode_e8_block(&x);
        let d_chosen = dist_sq_to_point(&x, &code);
        // Any root neighbor must be at least as far (local optimality check).
        for n in block_neighbors(&code) {
            assert!(
                dist_sq_to_point(&x, &n) >= d_chosen - 1e-9,
                "neighbor {n:?} closer than decoded {code:?}"
            );
        }
    }

    #[test]
    fn multi_block_decode_pads_with_zeros() {
        let raw: Vec<f32> = (0..12).map(|i| i as f32 * 0.3).collect();
        let code = decode_e8_raw(&raw);
        assert_eq!(code.len(), 16);
        // Last 4 raw entries are implicit zeros -> decoded coordinates of the
        // pad region must belong to the decode of the padded block.
        let mut block2 = [0.0f64; 8];
        for i in 0..4 {
            block2[i] = raw[8 + i] as f64;
        }
        assert_eq!(&code[8..], &decode_e8_block(&block2));
    }

    #[test]
    fn ancestor_is_valid_and_coarser() {
        let x = [3.7f64, -2.1, 0.4, 5.5, -1.2, 2.8, -0.6, 1.9];
        let code = decode_e8_block(&x).to_vec();
        let parent = e8_ancestor(&code);
        assert!(is_e8_point(&as_block(&parent)));
        // Reduced codes shrink: the parent's norm is about half the child's.
        let norm = |c: &[i32]| c.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt();
        assert!(norm(&parent) <= 0.5 * norm(&code) + 4.0, "parent did not shrink");
    }

    #[test]
    fn repeated_ancestors_stabilize_near_origin() {
        let x = [100.0f64, -50.0, 30.0, 7.0, -90.0, 12.0, 44.0, -3.0];
        let mut code = decode_e8_block(&x).to_vec();
        for _ in 0..40 {
            code = e8_ancestor(&code);
        }
        // Chains reach a fixed point: either the origin or a minimal-norm
        // cell-boundary point (tie rounding), never anything larger.
        assert_eq!(code, e8_ancestor(&code), "chain did not stabilize: {code:?}");
        let norm_sq: i64 = code.iter().map(|&c| (c as i64) * (c as i64)).sum();
        assert!(norm_sq <= 16, "fixed point too large: {code:?}");
    }

    #[test]
    fn nearby_points_share_codes_far_points_do_not() {
        let a = [0.1f64, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1];
        let b = [0.12f64, 0.09, 0.11, 0.1, 0.08, 0.1, 0.12, 0.1];
        let c = [5.0f64, -5.0, 5.0, -5.0, 5.0, -5.0, 5.0, -5.0];
        assert_eq!(decode_e8_block(&a), decode_e8_block(&b));
        assert_ne!(decode_e8_block(&a), decode_e8_block(&c));
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn ancestor_rejects_partial_blocks() {
        let _ = e8_ancestor(&[0i32; 7]);
    }
}
