//! Lattice quality measurements backing the paper's density argument
//! (Section II-B): the `Z^M` lattice's cell is a cube, whose inscribed
//! sphere occupies a vanishing fraction of the cell as `M` grows, while E8's
//! Voronoi cell is far closer to a ball. Two measurable consequences:
//!
//! * **quantization error** — the mean squared distance from a random point
//!   to its nearest lattice point (the normalized second moment, up to
//!   scale) is lower for E8 than for `Z^8` at equal cell volume;
//! * **sphere-packing density** — the fraction of space covered by balls of
//!   the packing radius centered on lattice points: `Z^8` manages ≈ 1.6%
//!   against E8's ≈ 25.4% (the densest possible in dimension 8).

use crate::e8::{decode_e8_block, dist_sq_to_point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Monte-Carlo mean squared quantization error of `Z^8` (floor/round
/// quantizer) on uniform random points, with unit cell volume.
pub fn z8_quantization_mse(samples: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0f64;
    for _ in 0..samples {
        // Distance to nearest integer point: each coordinate error uniform
        // in [-0.5, 0.5].
        let mut d2 = 0.0;
        for _ in 0..8 {
            let frac: f64 = rng.gen::<f64>() - 0.5;
            d2 += frac * frac;
        }
        total += d2;
    }
    total / samples as f64
}

/// Monte-Carlo mean squared quantization error of E8, rescaled to unit cell
/// volume (E8's fundamental cell has volume 1 already, so no rescale is
/// needed — the lattice is unimodular).
pub fn e8_quantization_mse(samples: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0f64;
    let mut x = [0.0f64; 8];
    for _ in 0..samples {
        for slot in &mut x {
            *slot = rng.gen::<f64>() * 4.0 - 2.0;
        }
        let code = decode_e8_block(&x);
        total += dist_sq_to_point(&x, &code);
    }
    total / samples as f64
}

/// Sphere-packing density of `Z^8`: packing radius ½, cell volume 1.
pub fn z8_packing_density() -> f64 {
    ball_volume_8d(0.5)
}

/// Sphere-packing density of E8: packing radius `√2 / 2` (half the minimal
/// vector norm `√2`), cell volume 1. Equals `π⁴/384 ≈ 0.2537`, the proven
/// optimum for dimension 8.
pub fn e8_packing_density() -> f64 {
    ball_volume_8d(std::f64::consts::SQRT_2 / 2.0)
}

/// Volume of an 8-dimensional ball of radius `r`: `π⁴ r⁸ / 24`.
fn ball_volume_8d(r: f64) -> f64 {
    let pi4 = std::f64::consts::PI.powi(4);
    pi4 * r.powi(8) / 24.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z8_mse_matches_closed_form() {
        // Uniform error per axis has variance 1/12; eight axes -> 8/12.
        let mse = z8_quantization_mse(200_000, 1);
        assert!((mse - 8.0 / 12.0).abs() < 0.01, "got {mse}");
    }

    #[test]
    fn e8_quantizes_better_than_z8() {
        let z8 = z8_quantization_mse(100_000, 2);
        let e8 = e8_quantization_mse(100_000, 3);
        assert!(e8 < z8, "E8 MSE {e8} should beat Z^8 MSE {z8} at equal cell volume");
        // Known second moments: Z^8 ≈ 0.6667, E8 ≈ 0.5790 (8 · G(E8) with
        // G(E8) ≈ 0.0717).
        assert!((e8 - 0.579).abs() < 0.02, "E8 MSE {e8} off the known value");
    }

    #[test]
    fn packing_densities_match_theory() {
        // Z^8: π⁴ 2⁻⁸ / 24 ≈ 0.01585; E8: π⁴/384 ≈ 0.25367.
        assert!((z8_packing_density() - 0.015854).abs() < 1e-5);
        assert!((e8_packing_density() - 0.253670).abs() < 1e-5);
        assert!(e8_packing_density() / z8_packing_density() > 15.9);
    }
}
