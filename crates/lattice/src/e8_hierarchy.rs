//! Scaled-decode hierarchy over the occupied buckets of an E8 LSH table.
//!
//! E8 has no compact Morton representation (its cells are not axis-aligned
//! boxes), but it *is* closed under doubling, so Equation 10's repeated
//! `2 · DECODE(c/2)` gives every bucket a chain of coarser ancestors. The
//! paper's construction — a linear array of buckets sorted by their ancestor
//! chains plus an index tree of `(start, end, code)` spans — is exactly what
//! this module builds.

use crate::e8::{e8_ancestor, E8Code};
use serde::{Deserialize, Serialize};

/// Hard cap on hierarchy height; reaching it means codes did not converge to
/// a common root (numerically impossible for finite inputs, but we fail safe
/// by attaching a virtual root).
const MAX_LEVELS: usize = 64;

/// One index-tree node spanning `order[start..end]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    /// Common ancestor code of every bucket in the span (`None` only for a
    /// virtual root over a non-converged forest).
    code: Option<E8Code>,
    /// Height above the leaves (0 = leaf bucket nodes).
    level: usize,
    start: usize,
    end: usize,
    children: Vec<usize>,
}

/// The E8 bucket hierarchy: linear bucket array + ancestor index tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E8Hierarchy {
    /// Bucket indices (caller-assigned) in linear-array order.
    order: Vec<u32>,
    nodes: Vec<Node>,
    root: usize,
    /// Height of the tree: ancestor chains have `height + 1` entries
    /// (levels `0..=height`).
    height: usize,
}

/// Ancestor chain of a code: `chain[0]` is the code itself, `chain[i]` its
/// i-th ancestor. Stops when the chain stabilizes (ancestor == code) or the
/// level cap is hit.
fn ancestor_chain(code: &[i32], max_levels: usize) -> Vec<E8Code> {
    let mut chain = vec![code.to_vec()];
    for _ in 0..max_levels {
        let parent = e8_ancestor(chain.last().expect("non-empty"));
        if &parent == chain.last().expect("non-empty") {
            break;
        }
        chain.push(parent);
    }
    chain
}

impl E8Hierarchy {
    /// Builds the hierarchy from `(code, bucket-index)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `codes` is empty or code lengths are not equal multiples
    /// of 8.
    pub fn build<'a, I>(codes: I) -> Self
    where
        I: IntoIterator<Item = (&'a [i32], u32)>,
    {
        let input: Vec<(&[i32], u32)> = codes.into_iter().collect();
        assert!(!input.is_empty(), "hierarchy needs at least one bucket");
        let len = input[0].0.len();
        assert!(len.is_multiple_of(8) && len > 0, "E8 codes are non-empty multiples of 8 long");
        assert!(input.iter().all(|(c, _)| c.len() == len), "mixed code lengths");

        // Grow every chain until all buckets share a common top code.
        let mut chains: Vec<Vec<E8Code>> =
            input.iter().map(|(c, _)| ancestor_chain(c, MAX_LEVELS)).collect();
        let height = chains.iter().map(Vec::len).max().expect("non-empty") - 1;
        // Pad shorter chains by repeating their fixed point.
        for chain in &mut chains {
            while chain.len() <= height {
                chain.push(chain.last().expect("non-empty").clone());
            }
        }
        let converged = {
            let top = &chains[0][height];
            chains.iter().all(|c| &c[height] == top)
        };

        // Sort buckets by their chain read root-first; buckets sharing an
        // ancestor become contiguous at every level.
        let mut perm: Vec<usize> = (0..input.len()).collect();
        perm.sort_by(|&a, &b| {
            for lvl in (0..=height).rev() {
                match chains[a][lvl].cmp(&chains[b][lvl]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        let order: Vec<u32> = perm.iter().map(|&i| input[i].1).collect();

        // Build the index tree top-down over contiguous same-code runs.
        let mut nodes = Vec::new();
        let root = build_node(
            &mut nodes,
            &perm,
            &chains,
            if converged { Some(height) } else { None },
            height,
            0,
            perm.len(),
        );
        Self { order, nodes, root, height }
    }

    /// Number of buckets in the hierarchy.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the hierarchy is empty (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Tree height (number of ancestor levels above the leaf codes).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Descends the tree along the query's ancestor chain, returning the
    /// node path (root first) — the deepest entry is the last node whose
    /// code matches the query's ancestor at that node's level.
    fn descend(&self, code: &[i32]) -> Vec<usize> {
        let mut chain = ancestor_chain(code, MAX_LEVELS);
        while chain.len() <= self.height {
            chain.push(chain.last().expect("non-empty").clone());
        }
        let mut path = vec![self.root];
        // The virtual root always matches; a real root must share the top
        // ancestor with the query or we stop there (paper: "the traversal
        // stops until such a child node does not exist").
        if let Some(root_code) = &self.nodes[self.root].code {
            if root_code != &chain[self.nodes[self.root].level] {
                return path;
            }
        }
        let mut cur = self.root;
        'down: loop {
            let node = &self.nodes[cur];
            if node.level == 0 {
                break;
            }
            for &child in &node.children {
                let c = &self.nodes[child];
                if c.code.as_deref() == Some(chain[c.level].as_slice()) {
                    path.push(child);
                    cur = child;
                    continue 'down;
                }
            }
            break;
        }
        path
    }

    /// All buckets under the deepest hierarchy node matching the query's
    /// ancestor chain — the paper's base hierarchical probe ("all the
    /// buckets rooted from the current node").
    pub fn probe(&self, code: &[i32]) -> Vec<u32> {
        let path = self.descend(code);
        let node = &self.nodes[*path.last().expect("path contains root")];
        self.order[node.start..node.end].to_vec()
    }

    /// Expanding probe: walk back up from the deepest matching node until
    /// the span holds at least `min_buckets` buckets (or the root's span is
    /// returned).
    pub fn probe_expanding(&self, code: &[i32], min_buckets: usize) -> Vec<u32> {
        let path = self.descend(code);
        for &node_idx in path.iter().rev() {
            let node = &self.nodes[node_idx];
            if node.end - node.start >= min_buckets {
                return self.order[node.start..node.end].to_vec();
            }
        }
        let root = &self.nodes[self.root];
        self.order[root.start..root.end].to_vec()
    }
}

/// Recursively materializes the node covering `perm[start..end]` at `level`.
fn build_node(
    nodes: &mut Vec<Node>,
    perm: &[usize],
    chains: &[Vec<E8Code>],
    code_level: Option<usize>, // None => virtual root without a code
    level: usize,
    start: usize,
    end: usize,
) -> usize {
    let idx = nodes.len();
    let code = code_level.map(|lvl| chains[perm[start]][lvl].clone());
    nodes.push(Node { code, level, start, end, children: Vec::new() });
    if level == 0 {
        return idx;
    }
    // Split [start, end) into runs sharing the child-level code.
    let child_level = level - 1;
    let mut children = Vec::new();
    let mut run_start = start;
    while run_start < end {
        let run_code = &chains[perm[run_start]][child_level];
        let mut run_end = run_start + 1;
        while run_end < end && &chains[perm[run_end]][child_level] == run_code {
            run_end += 1;
        }
        let child =
            build_node(nodes, perm, chains, Some(child_level), child_level, run_start, run_end);
        children.push(child);
        run_start = run_end;
    }
    nodes[idx].children = children;
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::e8::decode_e8_raw;

    /// Distinct E8 codes decoded from a spread of raw points.
    fn sample_codes(n: usize) -> Vec<E8Code> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut t = 0.0f32;
        while out.len() < n {
            let raw: Vec<f32> =
                (0..8).map(|i| ((t + i as f32) * 0.7).sin() * (4.0 + t * 0.35) + t * 0.2).collect();
            let code = decode_e8_raw(&raw);
            if seen.insert(code.clone()) {
                out.push(code);
            }
            t += 1.0;
        }
        out
    }

    fn build(codes: &[E8Code]) -> E8Hierarchy {
        E8Hierarchy::build(codes.iter().enumerate().map(|(i, c)| (c.as_slice(), i as u32)))
    }

    #[test]
    fn single_bucket_probe_returns_it() {
        let codes = sample_codes(1);
        let h = build(&codes);
        assert_eq!(h.probe(&codes[0]), vec![0]);
    }

    #[test]
    fn probing_own_code_returns_bucket_containing_it() {
        let codes = sample_codes(25);
        let h = build(&codes);
        for (i, code) in codes.iter().enumerate() {
            let got = h.probe(code);
            assert!(got.contains(&(i as u32)), "bucket {i} missing from its own probe");
        }
    }

    #[test]
    fn linear_array_is_a_permutation() {
        let codes = sample_codes(30);
        let h = build(&codes);
        let mut order: Vec<u32> = h.order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..30).collect::<Vec<u32>>());
    }

    #[test]
    fn expanding_probe_meets_minimum() {
        let codes = sample_codes(20);
        let h = build(&codes);
        let got = h.probe_expanding(&codes[3], 10);
        assert!(got.len() >= 10, "got only {} buckets", got.len());
        // Asking for everything returns everything.
        assert_eq!(h.probe_expanding(&codes[3], 10_000).len(), 20);
    }

    #[test]
    fn unknown_query_code_still_probes_nonempty() {
        let codes = sample_codes(12);
        let h = build(&codes);
        // A code from a far away region: descend stops early, returning a
        // coarse (possibly root) span — never empty.
        let far = decode_e8_raw(&[250.0f32; 8]);
        let got = h.probe_expanding(&far, 1);
        assert!(!got.is_empty());
    }

    #[test]
    fn siblings_group_before_strangers() {
        // Two near-identical codes and one far code: probing near either of
        // the close pair at low min_buckets should not pull in the far one
        // before its sibling.
        let near1 = decode_e8_raw(&[0.1f32; 8]);
        let near2 = decode_e8_raw(&[1.1f32, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let far = decode_e8_raw(&[400.0f32; 8]);
        assert_ne!(near1, near2);
        let codes = vec![near1.clone(), near2, far];
        let h = build(&codes);
        let got = h.probe_expanding(&near1, 2);
        assert!(got.contains(&0));
        if got.len() == 2 {
            assert!(got.contains(&1), "expansion should reach the sibling first: {got:?}");
        }
    }

    #[test]
    fn height_is_bounded_and_positive_for_spread_codes() {
        let codes = sample_codes(15);
        let h = build(&codes);
        assert!(h.height() >= 1);
        assert!(h.height() <= MAX_LEVELS);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn empty_build_panics() {
        let _ = E8Hierarchy::build(std::iter::empty::<(&[i32], u32)>());
    }

    #[test]
    fn multi_block_codes_supported() {
        let raws: Vec<Vec<f32>> =
            (0..10).map(|i| (0..16).map(|j| ((i * 16 + j) as f32).sin() * 6.0).collect()).collect();
        let mut codes: Vec<E8Code> = raws.iter().map(|r| decode_e8_raw(r)).collect();
        codes.dedup();
        let h = E8Hierarchy::build(codes.iter().enumerate().map(|(i, c)| (c.as_slice(), i as u32)));
        assert_eq!(h.len(), codes.len());
        let got = h.probe_expanding(&codes[0], 3);
        assert!(got.len() >= 3.min(codes.len()));
    }
}
