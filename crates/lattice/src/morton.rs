//! Morton (Z-order / Lebesgue) codes for signed multi-dimensional lattice
//! coordinates.
//!
//! The Morton code interleaves the bits of the `M` coordinates so that
//! lexicographic order on the code corresponds to a recursive `2^M`-ary
//! subdivision of space (Section IV-B2a). Signed `i32` coordinates are first
//! mapped order-preservingly to `u32` by flipping the sign bit; all 32 bits
//! of every coordinate are interleaved, so a code is `32 · M` bits stored
//! MSB-first in `u64` words and compared lexicographically.

use serde::{Deserialize, Serialize};

/// A Morton code over `M` coordinates: `32·M` bits, MSB-first.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MortonCode {
    words: Vec<u64>,
    /// Number of interleaved coordinates.
    m: usize,
}

/// Order-preserving signed→unsigned map (flip the sign bit).
#[inline]
fn zigzag(c: i32) -> u32 {
    (c as u32) ^ 0x8000_0000
}

impl MortonCode {
    /// Encodes `coords` by bit interleaving (coordinate 0 contributes the
    /// most significant bit of each group of `M`).
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty.
    pub fn encode(coords: &[i32]) -> Self {
        assert!(!coords.is_empty(), "cannot encode empty coordinates");
        let m = coords.len();
        let total_bits = 32 * m;
        let mut words = vec![0u64; total_bits.div_ceil(64)];
        let unsigned: Vec<u32> = coords.iter().map(|&c| zigzag(c)).collect();
        let mut bit_pos = 0usize; // position from the MSB side
        for level in (0..32).rev() {
            for &u in &unsigned {
                if (u >> level) & 1 == 1 {
                    let word = bit_pos / 64;
                    let offset = 63 - (bit_pos % 64);
                    words[word] |= 1u64 << offset;
                }
                bit_pos += 1;
            }
        }
        Self { words, m }
    }

    /// Recovers the original coordinates.
    pub fn decode(&self) -> Vec<i32> {
        let mut unsigned = vec![0u32; self.m];
        let mut bit_pos = 0usize;
        for level in (0..32).rev() {
            for u in unsigned.iter_mut() {
                let word = bit_pos / 64;
                let offset = 63 - (bit_pos % 64);
                if (self.words[word] >> offset) & 1 == 1 {
                    *u |= 1 << level;
                }
                bit_pos += 1;
            }
        }
        unsigned.into_iter().map(|u| (u ^ 0x8000_0000) as i32).collect()
    }

    /// Number of interleaved coordinates `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total number of bits in the code.
    pub fn bits(&self) -> usize {
        32 * self.m
    }

    /// Number of leading bits shared with `other`.
    ///
    /// Because one subdivision level consumes `M` bits,
    /// `shared_prefix_bits / M` is the number of octree levels on which the
    /// two codes agree.
    ///
    /// # Panics
    ///
    /// Panics if the codes have different `M`.
    pub fn shared_prefix_bits(&self, other: &Self) -> usize {
        assert_eq!(self.m, other.m, "cannot compare codes of different dimension");
        let mut shared = 0usize;
        for (a, b) in self.words.iter().zip(&other.words) {
            let diff = a ^ b;
            if diff == 0 {
                shared += 64;
            } else {
                shared += diff.leading_zeros() as usize;
                break;
            }
        }
        shared.min(self.bits())
    }

    /// Whether the first `bits` bits of `self` and `other` agree.
    pub fn shares_prefix(&self, other: &Self, bits: usize) -> bool {
        self.shared_prefix_bits(other) >= bits
    }

    /// Flips bit `i` (0 = most significant). Used by the bit-perturbation
    /// repeats of the Morton probing scheme (Liao et al.).
    pub fn with_flipped_bit(&self, i: usize) -> Self {
        assert!(i < self.bits(), "bit index out of range");
        let mut out = self.clone();
        out.words[i / 64] ^= 1u64 << (63 - (i % 64));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn encode_decode_roundtrip() {
        let cases: Vec<Vec<i32>> = vec![
            vec![0],
            vec![1, -1],
            vec![5, 0, -3, 7],
            vec![i32::MAX, i32::MIN, 0, 1, -1, 123456, -654321, 42],
        ];
        for c in cases {
            assert_eq!(MortonCode::encode(&c).decode(), c);
        }
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let m = rng.gen_range(1..=12);
            let coords: Vec<i32> = (0..m).map(|_| rng.gen()).collect();
            assert_eq!(MortonCode::encode(&coords).decode(), coords);
        }
    }

    #[test]
    fn order_matches_1d_integer_order() {
        // With M = 1 Morton order is just integer order.
        let mut vals: Vec<i32> = vec![-100, -1, 0, 1, 99, i32::MIN, i32::MAX];
        vals.sort_unstable();
        let codes: Vec<MortonCode> = vals.iter().map(|&v| MortonCode::encode(&[v])).collect();
        for w in codes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn same_cell_shares_full_prefix() {
        let a = MortonCode::encode(&[3, -7, 11]);
        let b = MortonCode::encode(&[3, -7, 11]);
        assert_eq!(a.shared_prefix_bits(&b), a.bits());
    }

    #[test]
    fn nearby_cells_share_longer_prefixes_than_distant_cells() {
        let base = MortonCode::encode(&[4, 4]);
        let near = MortonCode::encode(&[5, 4]);
        let far = MortonCode::encode(&[4096, -4096]);
        assert!(base.shared_prefix_bits(&near) > base.shared_prefix_bits(&far));
    }

    #[test]
    fn prefix_property_matches_octree_ancestry() {
        // Two codes agree on ⌊shared/M⌋ subdivision levels; verify against
        // explicit coordinate-prefix comparison for random pairs.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let m = rng.gen_range(2..=6);
            let a: Vec<i32> = (0..m).map(|_| rng.gen_range(-1000..1000)).collect();
            let b: Vec<i32> = (0..m).map(|_| rng.gen_range(-1000..1000)).collect();
            let ca = MortonCode::encode(&a);
            let cb = MortonCode::encode(&b);
            let levels = ca.shared_prefix_bits(&cb) / m;
            // On every shared level, the top `levels` bits of each unsigned
            // coordinate must agree.
            if levels > 0 {
                let shift = 32 - levels.min(32);
                for i in 0..m {
                    let ua = (a[i] as u32) ^ 0x8000_0000;
                    let ub = (b[i] as u32) ^ 0x8000_0000;
                    assert_eq!(
                        ua.checked_shr(shift as u32).unwrap_or(0),
                        ub.checked_shr(shift as u32).unwrap_or(0),
                        "coords {a:?} vs {b:?} at level {levels}"
                    );
                }
            }
        }
    }

    #[test]
    fn flipped_bit_changes_then_restores() {
        let c = MortonCode::encode(&[17, -17]);
        let f = c.with_flipped_bit(10);
        assert_ne!(c, f);
        assert_eq!(f.with_flipped_bit(10), c);
    }

    #[test]
    fn shares_prefix_thresholds() {
        let a = MortonCode::encode(&[0, 0]);
        let b = MortonCode::encode(&[0, 1]);
        let shared = a.shared_prefix_bits(&b);
        assert!(a.shares_prefix(&b, shared));
        assert!(!a.shares_prefix(&b, shared + 1));
    }

    #[test]
    #[should_panic(expected = "different dimension")]
    fn prefix_across_dims_panics() {
        let a = MortonCode::encode(&[0]);
        let b = MortonCode::encode(&[0, 0]);
        let _ = a.shared_prefix_bits(&b);
    }
}
