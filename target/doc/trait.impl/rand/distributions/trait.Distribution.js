(function() {
    const implementors = Object.fromEntries([["vecstore",[["impl Distribution&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.f32.html\">f32</a>&gt; for <a class=\"struct\" href=\"vecstore/synth/struct.StdNormal.html\" title=\"struct vecstore::synth::StdNormal\">StdNormal</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[269]}