(function() {
    const implementors = Object.fromEntries([["vecstore",[["impl&lt;S: <a class=\"trait\" href=\"vecstore/ooc/trait.RowSource.html\" title=\"trait vecstore::ooc::RowSource\">RowSource</a>&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a> for <a class=\"struct\" href=\"vecstore/ooc/struct.Chunks.html\" title=\"struct vecstore::ooc::Chunks\">Chunks</a>&lt;'_, S&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[455]}