(function() {
    const implementors = Object.fromEntries([["knn_serve",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"knn_serve/service/struct.ServiceLevel.html\" title=\"struct knn_serve::service::ServiceLevel\">ServiceLevel</a>",0]]],["lattice",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"lattice/morton/struct.MortonCode.html\" title=\"struct lattice::morton::MortonCode\">MortonCode</a>",0]]],["vecstore",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"vecstore/exact/struct.Neighbor.html\" title=\"struct vecstore::exact::Neighbor\">Neighbor</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[314,301,296]}