(function() {
    const implementors = Object.fromEntries([["knn_net",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"knn_net/registry/struct.QuotaGuard.html\" title=\"struct knn_net::registry::QuotaGuard\">QuotaGuard</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"knn_net/server/struct.NetServer.html\" title=\"struct knn_net::server::NetServer\">NetServer</a>",0]]],["knn_serve",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"knn_serve/service/struct.Service.html\" title=\"struct knn_serve::service::Service\">Service</a>",0]]],["knn_telemetry",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"knn_telemetry/struct.SpanTimer.html\" title=\"struct knn_telemetry::SpanTimer\">SpanTimer</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[574,293,304]}