(function() {
    const implementors = Object.fromEntries([["knn_net",[["impl&lt;W: <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/std/io/trait.Write.html\" title=\"trait std::io::Write\">Write</a>&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/std/io/trait.Write.html\" title=\"trait std::io::Write\">Write</a> for <a class=\"struct\" href=\"knn_net/frame/struct.CountingWriter.html\" title=\"struct knn_net::frame::CountingWriter\">CountingWriter</a>&lt;'_, W&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[440]}