(function() {
    const implementors = Object.fromEntries([["knn_net",[["impl <a class=\"trait\" href=\"knn_serve/fanout/trait.ShardSource.html\" title=\"trait knn_serve::fanout::ShardSource\">ShardSource</a> for <a class=\"struct\" href=\"knn_net/remote/struct.RemoteShard.html\" title=\"struct knn_net::remote::RemoteShard\">RemoteShard</a>",0]]],["knn_serve",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[289,17]}