/root/repo/target/debug/deps/ext_end_to_end-5f643e9643dea83a.d: crates/bench/src/bin/ext_end_to_end.rs

/root/repo/target/debug/deps/ext_end_to_end-5f643e9643dea83a: crates/bench/src/bin/ext_end_to_end.rs

crates/bench/src/bin/ext_end_to_end.rs:
