/root/repo/target/debug/deps/abl_batch-20c51bb50dd71b9b.d: crates/bench/src/bin/abl_batch.rs

/root/repo/target/debug/deps/abl_batch-20c51bb50dd71b9b: crates/bench/src/bin/abl_batch.rs

crates/bench/src/bin/abl_batch.rs:
