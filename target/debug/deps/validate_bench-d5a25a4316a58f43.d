/root/repo/target/debug/deps/validate_bench-d5a25a4316a58f43.d: crates/bench/src/bin/validate_bench.rs

/root/repo/target/debug/deps/validate_bench-d5a25a4316a58f43: crates/bench/src/bin/validate_bench.rs

crates/bench/src/bin/validate_bench.rs:
