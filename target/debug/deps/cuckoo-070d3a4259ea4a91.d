/root/repo/target/debug/deps/cuckoo-070d3a4259ea4a91.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/debug/deps/libcuckoo-070d3a4259ea4a91.rmeta: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
