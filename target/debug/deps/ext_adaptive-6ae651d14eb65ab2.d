/root/repo/target/debug/deps/ext_adaptive-6ae651d14eb65ab2.d: crates/bench/src/bin/ext_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libext_adaptive-6ae651d14eb65ab2.rmeta: crates/bench/src/bin/ext_adaptive.rs Cargo.toml

crates/bench/src/bin/ext_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
