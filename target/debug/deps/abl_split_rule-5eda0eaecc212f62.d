/root/repo/target/debug/deps/abl_split_rule-5eda0eaecc212f62.d: crates/bench/src/bin/abl_split_rule.rs

/root/repo/target/debug/deps/abl_split_rule-5eda0eaecc212f62: crates/bench/src/bin/abl_split_rule.rs

crates/bench/src/bin/abl_split_rule.rs:
