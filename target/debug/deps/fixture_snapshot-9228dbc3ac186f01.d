/root/repo/target/debug/deps/fixture_snapshot-9228dbc3ac186f01.d: crates/core/tests/fixture_snapshot.rs

/root/repo/target/debug/deps/fixture_snapshot-9228dbc3ac186f01: crates/core/tests/fixture_snapshot.rs

crates/core/tests/fixture_snapshot.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
