/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-f8f4931c1bde886f.d: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_zm_standard_vs_bilevel-f8f4931c1bde886f.rmeta: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs Cargo.toml

crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
