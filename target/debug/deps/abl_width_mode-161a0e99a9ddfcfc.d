/root/repo/target/debug/deps/abl_width_mode-161a0e99a9ddfcfc.d: crates/bench/src/bin/abl_width_mode.rs

/root/repo/target/debug/deps/abl_width_mode-161a0e99a9ddfcfc: crates/bench/src/bin/abl_width_mode.rs

crates/bench/src/bin/abl_width_mode.rs:
