/root/repo/target/debug/deps/abl_lattice_density-51f708459108dafa.d: crates/bench/src/bin/abl_lattice_density.rs

/root/repo/target/debug/deps/abl_lattice_density-51f708459108dafa: crates/bench/src/bin/abl_lattice_density.rs

crates/bench/src/bin/abl_lattice_density.rs:
