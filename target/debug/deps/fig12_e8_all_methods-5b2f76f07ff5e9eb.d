/root/repo/target/debug/deps/fig12_e8_all_methods-5b2f76f07ff5e9eb.d: crates/bench/src/bin/fig12_e8_all_methods.rs

/root/repo/target/debug/deps/fig12_e8_all_methods-5b2f76f07ff5e9eb: crates/bench/src/bin/fig12_e8_all_methods.rs

crates/bench/src/bin/fig12_e8_all_methods.rs:
