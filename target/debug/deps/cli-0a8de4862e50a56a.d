/root/repo/target/debug/deps/cli-0a8de4862e50a56a.d: crates/serve/tests/cli.rs

/root/repo/target/debug/deps/cli-0a8de4862e50a56a: crates/serve/tests/cli.rs

crates/serve/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_bilevel-serve=/root/repo/target/debug/bilevel-serve
