/root/repo/target/debug/deps/ext_serve-9087308c9f15e3f9.d: crates/bench/src/bin/ext_serve.rs

/root/repo/target/debug/deps/ext_serve-9087308c9f15e3f9: crates/bench/src/bin/ext_serve.rs

crates/bench/src/bin/ext_serve.rs:
