/root/repo/target/debug/deps/mutation-ae59ae46b3c0f4cc.d: crates/serve/tests/mutation.rs

/root/repo/target/debug/deps/mutation-ae59ae46b3c0f4cc: crates/serve/tests/mutation.rs

crates/serve/tests/mutation.rs:

# env-dep:CARGO_BIN_EXE_bilevel-serve=/root/repo/target/debug/bilevel-serve
