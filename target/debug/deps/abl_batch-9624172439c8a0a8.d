/root/repo/target/debug/deps/abl_batch-9624172439c8a0a8.d: crates/bench/src/bin/abl_batch.rs Cargo.toml

/root/repo/target/debug/deps/libabl_batch-9624172439c8a0a8.rmeta: crates/bench/src/bin/abl_batch.rs Cargo.toml

crates/bench/src/bin/abl_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
