/root/repo/target/debug/deps/rand-e167b992f1282bf9.d: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/rngs.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/seq.rs

/root/repo/target/debug/deps/librand-e167b992f1282bf9.rlib: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/rngs.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/seq.rs

/root/repo/target/debug/deps/librand-e167b992f1282bf9.rmeta: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/rngs.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/seq.rs

/tmp/vendor/rand/src/lib.rs:
/tmp/vendor/rand/src/rngs.rs:
/tmp/vendor/rand/src/distributions.rs:
/tmp/vendor/rand/src/seq.rs:
