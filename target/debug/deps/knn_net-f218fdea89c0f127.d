/root/repo/target/debug/deps/knn_net-f218fdea89c0f127.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

/root/repo/target/debug/deps/libknn_net-f218fdea89c0f127.rlib: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

/root/repo/target/debug/deps/libknn_net-f218fdea89c0f127.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/registry.rs:
crates/net/src/remote.rs:
crates/net/src/server.rs:
