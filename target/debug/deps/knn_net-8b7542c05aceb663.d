/root/repo/target/debug/deps/knn_net-8b7542c05aceb663.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

/root/repo/target/debug/deps/libknn_net-8b7542c05aceb663.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/registry.rs:
crates/net/src/remote.rs:
crates/net/src/server.rs:
