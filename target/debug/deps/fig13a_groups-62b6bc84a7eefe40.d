/root/repo/target/debug/deps/fig13a_groups-62b6bc84a7eefe40.d: crates/bench/src/bin/fig13a_groups.rs

/root/repo/target/debug/deps/fig13a_groups-62b6bc84a7eefe40: crates/bench/src/bin/fig13a_groups.rs

crates/bench/src/bin/fig13a_groups.rs:
