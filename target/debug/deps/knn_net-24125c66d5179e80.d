/root/repo/target/debug/deps/knn_net-24125c66d5179e80.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

/root/repo/target/debug/deps/knn_net-24125c66d5179e80: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/registry.rs:
crates/net/src/remote.rs:
crates/net/src/server.rs:
