/root/repo/target/debug/deps/bench-12d3f9a668381fb0.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libbench-12d3f9a668381fb0.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/data.rs:
crates/bench/src/figures.rs:
crates/bench/src/methods.rs:
crates/bench/src/record.rs:
crates/bench/src/report.rs:
crates/bench/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
