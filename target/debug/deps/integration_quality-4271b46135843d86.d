/root/repo/target/debug/deps/integration_quality-4271b46135843d86.d: crates/core/../../tests/integration_quality.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_quality-4271b46135843d86.rmeta: crates/core/../../tests/integration_quality.rs Cargo.toml

crates/core/../../tests/integration_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
