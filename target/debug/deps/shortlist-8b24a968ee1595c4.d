/root/repo/target/debug/deps/shortlist-8b24a968ee1595c4.d: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs Cargo.toml

/root/repo/target/debug/deps/libshortlist-8b24a968ee1595c4.rmeta: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs Cargo.toml

crates/shortlist/src/lib.rs:
crates/shortlist/src/engine.rs:
crates/shortlist/src/primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
