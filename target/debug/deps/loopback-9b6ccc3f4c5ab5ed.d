/root/repo/target/debug/deps/loopback-9b6ccc3f4c5ab5ed.d: crates/net/tests/loopback.rs Cargo.toml

/root/repo/target/debug/deps/libloopback-9b6ccc3f4c5ab5ed.rmeta: crates/net/tests/loopback.rs Cargo.toml

crates/net/tests/loopback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
