/root/repo/target/debug/deps/ext_adaptive-a0dc18e7dc901556.d: crates/bench/src/bin/ext_adaptive.rs

/root/repo/target/debug/deps/ext_adaptive-a0dc18e7dc901556: crates/bench/src/bin/ext_adaptive.rs

crates/bench/src/bin/ext_adaptive.rs:
