/root/repo/target/debug/deps/e8_decode-37eac6c4ebd7280a.d: crates/bench/benches/e8_decode.rs Cargo.toml

/root/repo/target/debug/deps/libe8_decode-37eac6c4ebd7280a.rmeta: crates/bench/benches/e8_decode.rs Cargo.toml

crates/bench/benches/e8_decode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
