/root/repo/target/debug/deps/integration_storage-827e02cdc1fb67e6.d: crates/core/../../tests/integration_storage.rs

/root/repo/target/debug/deps/integration_storage-827e02cdc1fb67e6: crates/core/../../tests/integration_storage.rs

crates/core/../../tests/integration_storage.rs:
