/root/repo/target/debug/deps/mutation-abe43504ac642fa0.d: crates/serve/tests/mutation.rs Cargo.toml

/root/repo/target/debug/deps/libmutation-abe43504ac642fa0.rmeta: crates/serve/tests/mutation.rs Cargo.toml

crates/serve/tests/mutation.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_bilevel-serve=placeholder:bilevel-serve
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
