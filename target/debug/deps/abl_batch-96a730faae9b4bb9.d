/root/repo/target/debug/deps/abl_batch-96a730faae9b4bb9.d: crates/bench/src/bin/abl_batch.rs

/root/repo/target/debug/deps/abl_batch-96a730faae9b4bb9: crates/bench/src/bin/abl_batch.rs

crates/bench/src/bin/abl_batch.rs:
