/root/repo/target/debug/deps/ext_forest-3a920cc4addab87d.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/debug/deps/ext_forest-3a920cc4addab87d: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:
