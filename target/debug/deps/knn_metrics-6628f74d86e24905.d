/root/repo/target/debug/deps/knn_metrics-6628f74d86e24905.d: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libknn_metrics-6628f74d86e24905.rmeta: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/curve.rs:
crates/metrics/src/quality.rs:
crates/metrics/src/significance.rs:
crates/metrics/src/stats.rs:
