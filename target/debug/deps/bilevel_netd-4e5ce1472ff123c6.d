/root/repo/target/debug/deps/bilevel_netd-4e5ce1472ff123c6.d: crates/net/src/bin/bilevel-netd.rs Cargo.toml

/root/repo/target/debug/deps/libbilevel_netd-4e5ce1472ff123c6.rmeta: crates/net/src/bin/bilevel-netd.rs Cargo.toml

crates/net/src/bin/bilevel-netd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
