/root/repo/target/debug/deps/proptests-73cdac2a1a16b677.d: crates/lattice/tests/proptests.rs

/root/repo/target/debug/deps/proptests-73cdac2a1a16b677: crates/lattice/tests/proptests.rs

crates/lattice/tests/proptests.rs:
