/root/repo/target/debug/deps/fig13c_partitioner-c03782821689ac65.d: crates/bench/src/bin/fig13c_partitioner.rs

/root/repo/target/debug/deps/fig13c_partitioner-c03782821689ac65: crates/bench/src/bin/fig13c_partitioner.rs

crates/bench/src/bin/fig13c_partitioner.rs:
