/root/repo/target/debug/deps/lsh-ce7782623a925b86.d: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/level2.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/debug/deps/liblsh-ce7782623a925b86.rmeta: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/level2.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

crates/lsh/src/lib.rs:
crates/lsh/src/adaptive.rs:
crates/lsh/src/family.rs:
crates/lsh/src/forest.rs:
crates/lsh/src/level2.rs:
crates/lsh/src/multiprobe.rs:
crates/lsh/src/table.rs:
crates/lsh/src/tuning.rs:
