/root/repo/target/debug/deps/run_all-3dc1de712cc73086.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-3dc1de712cc73086: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
