/root/repo/target/debug/deps/loopback-af3dd9314ce51c64.d: crates/net/tests/loopback.rs Cargo.toml

/root/repo/target/debug/deps/libloopback-af3dd9314ce51c64.rmeta: crates/net/tests/loopback.rs Cargo.toml

crates/net/tests/loopback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
