/root/repo/target/debug/deps/proptest-e5d881f4baab7e32.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-e5d881f4baab7e32.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-e5d881f4baab7e32.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
