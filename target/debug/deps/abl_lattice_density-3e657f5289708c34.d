/root/repo/target/debug/deps/abl_lattice_density-3e657f5289708c34.d: crates/bench/src/bin/abl_lattice_density.rs Cargo.toml

/root/repo/target/debug/deps/libabl_lattice_density-3e657f5289708c34.rmeta: crates/bench/src/bin/abl_lattice_density.rs Cargo.toml

crates/bench/src/bin/abl_lattice_density.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
