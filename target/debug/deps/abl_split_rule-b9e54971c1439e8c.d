/root/repo/target/debug/deps/abl_split_rule-b9e54971c1439e8c.d: crates/bench/src/bin/abl_split_rule.rs

/root/repo/target/debug/deps/abl_split_rule-b9e54971c1439e8c: crates/bench/src/bin/abl_split_rule.rs

crates/bench/src/bin/abl_split_rule.rs:
