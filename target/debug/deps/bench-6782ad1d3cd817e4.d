/root/repo/target/debug/deps/bench-6782ad1d3cd817e4.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/bench-6782ad1d3cd817e4: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/data.rs:
crates/bench/src/figures.rs:
crates/bench/src/methods.rs:
crates/bench/src/record.rs:
crates/bench/src/report.rs:
crates/bench/src/sweep.rs:
