/root/repo/target/debug/deps/validate_bench-fe7b20417ce53bb3.d: crates/bench/src/bin/validate_bench.rs

/root/repo/target/debug/deps/validate_bench-fe7b20417ce53bb3: crates/bench/src/bin/validate_bench.rs

crates/bench/src/bin/validate_bench.rs:
