/root/repo/target/debug/deps/bilevel_netd-0a8f683192aeee74.d: crates/net/src/bin/bilevel-netd.rs

/root/repo/target/debug/deps/bilevel_netd-0a8f683192aeee74: crates/net/src/bin/bilevel-netd.rs

crates/net/src/bin/bilevel-netd.rs:
