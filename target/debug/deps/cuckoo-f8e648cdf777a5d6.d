/root/repo/target/debug/deps/cuckoo-f8e648cdf777a5d6.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/debug/deps/cuckoo-f8e648cdf777a5d6: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
