/root/repo/target/debug/deps/serde_derive-827383ac29680e9f.d: /tmp/vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-827383ac29680e9f.so: /tmp/vendor/serde_derive/src/lib.rs

/tmp/vendor/serde_derive/src/lib.rs:
