/root/repo/target/debug/deps/abl_curse-02a910e6440d1baa.d: crates/bench/src/bin/abl_curse.rs

/root/repo/target/debug/deps/abl_curse-02a910e6440d1baa: crates/bench/src/bin/abl_curse.rs

crates/bench/src/bin/abl_curse.rs:
