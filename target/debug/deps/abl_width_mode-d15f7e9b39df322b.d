/root/repo/target/debug/deps/abl_width_mode-d15f7e9b39df322b.d: crates/bench/src/bin/abl_width_mode.rs

/root/repo/target/debug/deps/abl_width_mode-d15f7e9b39df322b: crates/bench/src/bin/abl_width_mode.rs

crates/bench/src/bin/abl_width_mode.rs:
