/root/repo/target/debug/deps/bench-6c4dc53fd7ac0771.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libbench-6c4dc53fd7ac0771.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/data.rs:
crates/bench/src/figures.rs:
crates/bench/src/methods.rs:
crates/bench/src/record.rs:
crates/bench/src/report.rs:
crates/bench/src/sweep.rs:
