/root/repo/target/debug/deps/ext_ooc-b702c77c168aa8f0.d: crates/bench/src/bin/ext_ooc.rs

/root/repo/target/debug/deps/ext_ooc-b702c77c168aa8f0: crates/bench/src/bin/ext_ooc.rs

crates/bench/src/bin/ext_ooc.rs:
