/root/repo/target/debug/deps/ext_families-91d53d770461cfb5.d: crates/bench/src/bin/ext_families.rs Cargo.toml

/root/repo/target/debug/deps/libext_families-91d53d770461cfb5.rmeta: crates/bench/src/bin/ext_families.rs Cargo.toml

crates/bench/src/bin/ext_families.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
