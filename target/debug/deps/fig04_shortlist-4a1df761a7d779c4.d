/root/repo/target/debug/deps/fig04_shortlist-4a1df761a7d779c4.d: crates/bench/src/bin/fig04_shortlist.rs

/root/repo/target/debug/deps/fig04_shortlist-4a1df761a7d779c4: crates/bench/src/bin/fig04_shortlist.rs

crates/bench/src/bin/fig04_shortlist.rs:
