/root/repo/target/debug/deps/containment-d36e2a389739fc13.d: crates/serve/tests/containment.rs

/root/repo/target/debug/deps/containment-d36e2a389739fc13: crates/serve/tests/containment.rs

crates/serve/tests/containment.rs:
