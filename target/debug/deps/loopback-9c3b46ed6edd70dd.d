/root/repo/target/debug/deps/loopback-9c3b46ed6edd70dd.d: crates/net/tests/loopback.rs

/root/repo/target/debug/deps/loopback-9c3b46ed6edd70dd: crates/net/tests/loopback.rs

crates/net/tests/loopback.rs:
