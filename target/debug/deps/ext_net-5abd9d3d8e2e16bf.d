/root/repo/target/debug/deps/ext_net-5abd9d3d8e2e16bf.d: crates/bench/src/bin/ext_net.rs

/root/repo/target/debug/deps/ext_net-5abd9d3d8e2e16bf: crates/bench/src/bin/ext_net.rs

crates/bench/src/bin/ext_net.rs:
