/root/repo/target/debug/deps/integration_pipeline-a6aab4fdac2a0c13.d: crates/core/../../tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-a6aab4fdac2a0c13: crates/core/../../tests/integration_pipeline.rs

crates/core/../../tests/integration_pipeline.rs:
