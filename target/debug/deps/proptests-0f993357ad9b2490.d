/root/repo/target/debug/deps/proptests-0f993357ad9b2490.d: crates/lsh/tests/proptests.rs

/root/repo/target/debug/deps/proptests-0f993357ad9b2490: crates/lsh/tests/proptests.rs

crates/lsh/tests/proptests.rs:
