/root/repo/target/debug/deps/ext_adaptive-8a07d9d169da5e1b.d: crates/bench/src/bin/ext_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libext_adaptive-8a07d9d169da5e1b.rmeta: crates/bench/src/bin/ext_adaptive.rs Cargo.toml

crates/bench/src/bin/ext_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
