/root/repo/target/debug/deps/equivalence-81dedc1c5595fb6c.d: crates/core/tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-81dedc1c5595fb6c.rmeta: crates/core/tests/equivalence.rs Cargo.toml

crates/core/tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
