/root/repo/target/debug/deps/ext_forest-e7829ba9937b9b31.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/debug/deps/ext_forest-e7829ba9937b9b31: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:
