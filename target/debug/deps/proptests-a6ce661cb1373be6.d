/root/repo/target/debug/deps/proptests-a6ce661cb1373be6.d: crates/shortlist/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a6ce661cb1373be6: crates/shortlist/tests/proptests.rs

crates/shortlist/tests/proptests.rs:
