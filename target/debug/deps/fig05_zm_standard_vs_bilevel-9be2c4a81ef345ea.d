/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-9be2c4a81ef345ea.d: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_zm_standard_vs_bilevel-9be2c4a81ef345ea.rmeta: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs Cargo.toml

crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
