/root/repo/target/debug/deps/abl_curse-52798c49f1c561c9.d: crates/bench/src/bin/abl_curse.rs

/root/repo/target/debug/deps/abl_curse-52798c49f1c561c9: crates/bench/src/bin/abl_curse.rs

crates/bench/src/bin/abl_curse.rs:
