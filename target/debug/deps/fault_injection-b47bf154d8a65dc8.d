/root/repo/target/debug/deps/fault_injection-b47bf154d8a65dc8.d: crates/core/tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-b47bf154d8a65dc8.rmeta: crates/core/tests/fault_injection.rs Cargo.toml

crates/core/tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
