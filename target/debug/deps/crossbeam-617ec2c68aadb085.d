/root/repo/target/debug/deps/crossbeam-617ec2c68aadb085.d: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-617ec2c68aadb085.rlib: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-617ec2c68aadb085.rmeta: /tmp/vendor/crossbeam/src/lib.rs

/tmp/vendor/crossbeam/src/lib.rs:
