/root/repo/target/debug/deps/ext_net-637d66cebc0a44e4.d: crates/bench/src/bin/ext_net.rs Cargo.toml

/root/repo/target/debug/deps/libext_net-637d66cebc0a44e4.rmeta: crates/bench/src/bin/ext_net.rs Cargo.toml

crates/bench/src/bin/ext_net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
