/root/repo/target/debug/deps/rptree-b1ed674d9ab81152.d: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/debug/deps/rptree-b1ed674d9ab81152: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

crates/rptree/src/lib.rs:
crates/rptree/src/diameter.rs:
crates/rptree/src/kdknn.rs:
crates/rptree/src/kdpart.rs:
crates/rptree/src/kmeans.rs:
crates/rptree/src/partition.rs:
crates/rptree/src/tree.rs:
