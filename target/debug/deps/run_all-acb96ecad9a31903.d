/root/repo/target/debug/deps/run_all-acb96ecad9a31903.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-acb96ecad9a31903: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
