/root/repo/target/debug/deps/lsh-b4a8610657e7eb02.d: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/debug/deps/lsh-b4a8610657e7eb02: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

crates/lsh/src/lib.rs:
crates/lsh/src/adaptive.rs:
crates/lsh/src/family.rs:
crates/lsh/src/forest.rs:
crates/lsh/src/multiprobe.rs:
crates/lsh/src/table.rs:
crates/lsh/src/tuning.rs:
