/root/repo/target/debug/deps/ext_adaptive-3edb69535f6bc876.d: crates/bench/src/bin/ext_adaptive.rs

/root/repo/target/debug/deps/ext_adaptive-3edb69535f6bc876: crates/bench/src/bin/ext_adaptive.rs

crates/bench/src/bin/ext_adaptive.rs:
