/root/repo/target/debug/deps/proptests-74f8e88c4cd30d28.d: crates/lattice/tests/proptests.rs

/root/repo/target/debug/deps/proptests-74f8e88c4cd30d28: crates/lattice/tests/proptests.rs

crates/lattice/tests/proptests.rs:
