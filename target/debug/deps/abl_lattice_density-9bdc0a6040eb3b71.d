/root/repo/target/debug/deps/abl_lattice_density-9bdc0a6040eb3b71.d: crates/bench/src/bin/abl_lattice_density.rs

/root/repo/target/debug/deps/abl_lattice_density-9bdc0a6040eb3b71: crates/bench/src/bin/abl_lattice_density.rs

crates/bench/src/bin/abl_lattice_density.rs:
