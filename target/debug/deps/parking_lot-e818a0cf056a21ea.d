/root/repo/target/debug/deps/parking_lot-e818a0cf056a21ea.d: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-e818a0cf056a21ea.rlib: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-e818a0cf056a21ea.rmeta: /tmp/vendor/parking_lot/src/lib.rs

/tmp/vendor/parking_lot/src/lib.rs:
