/root/repo/target/debug/deps/integration_persistence-93043831bf69a1ca.d: crates/core/../../tests/integration_persistence.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_persistence-93043831bf69a1ca.rmeta: crates/core/../../tests/integration_persistence.rs Cargo.toml

crates/core/../../tests/integration_persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
