/root/repo/target/debug/deps/abl_split_rule-cebc3f472379ce22.d: crates/bench/src/bin/abl_split_rule.rs Cargo.toml

/root/repo/target/debug/deps/libabl_split_rule-cebc3f472379ce22.rmeta: crates/bench/src/bin/abl_split_rule.rs Cargo.toml

crates/bench/src/bin/abl_split_rule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
