/root/repo/target/debug/deps/crossbeam-c0011fc4e5527840.d: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-c0011fc4e5527840.rlib: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-c0011fc4e5527840.rmeta: /tmp/vendor/crossbeam/src/lib.rs

/tmp/vendor/crossbeam/src/lib.rs:
