/root/repo/target/debug/deps/ext_adaptive-b7ef26eb885e12fe.d: crates/bench/src/bin/ext_adaptive.rs

/root/repo/target/debug/deps/ext_adaptive-b7ef26eb885e12fe: crates/bench/src/bin/ext_adaptive.rs

crates/bench/src/bin/ext_adaptive.rs:
