/root/repo/target/debug/deps/stress-61902de369dd39c3.d: crates/serve/tests/stress.rs

/root/repo/target/debug/deps/stress-61902de369dd39c3: crates/serve/tests/stress.rs

crates/serve/tests/stress.rs:
