/root/repo/target/debug/deps/ext_forest-a680b9c6791587b8.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/debug/deps/ext_forest-a680b9c6791587b8: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:
