/root/repo/target/debug/deps/cli-82ed3d39621116dd.d: crates/core/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-82ed3d39621116dd.rmeta: crates/core/tests/cli.rs Cargo.toml

crates/core/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_bilevel=placeholder:bilevel
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
