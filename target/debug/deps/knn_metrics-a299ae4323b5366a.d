/root/repo/target/debug/deps/knn_metrics-a299ae4323b5366a.d: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libknn_metrics-a299ae4323b5366a.rlib: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libknn_metrics-a299ae4323b5366a.rmeta: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/curve.rs:
crates/metrics/src/quality.rs:
crates/metrics/src/significance.rs:
crates/metrics/src/stats.rs:
