/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-b6bcd1fbf47c1de9.d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-b6bcd1fbf47c1de9: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs:
