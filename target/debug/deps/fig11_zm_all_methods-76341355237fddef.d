/root/repo/target/debug/deps/fig11_zm_all_methods-76341355237fddef.d: crates/bench/src/bin/fig11_zm_all_methods.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_zm_all_methods-76341355237fddef.rmeta: crates/bench/src/bin/fig11_zm_all_methods.rs Cargo.toml

crates/bench/src/bin/fig11_zm_all_methods.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
