/root/repo/target/debug/deps/fig13b_dims-aa9397aa73f5915e.d: crates/bench/src/bin/fig13b_dims.rs Cargo.toml

/root/repo/target/debug/deps/libfig13b_dims-aa9397aa73f5915e.rmeta: crates/bench/src/bin/fig13b_dims.rs Cargo.toml

crates/bench/src/bin/fig13b_dims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
