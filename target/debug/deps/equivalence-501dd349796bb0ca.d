/root/repo/target/debug/deps/equivalence-501dd349796bb0ca.d: crates/core/tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-501dd349796bb0ca.rmeta: crates/core/tests/equivalence.rs Cargo.toml

crates/core/tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
