/root/repo/target/debug/deps/equivalence-0bc16acef5513f4f.d: crates/core/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-0bc16acef5513f4f: crates/core/tests/equivalence.rs

crates/core/tests/equivalence.rs:
