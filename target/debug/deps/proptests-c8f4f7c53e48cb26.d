/root/repo/target/debug/deps/proptests-c8f4f7c53e48cb26.d: crates/cuckoo/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c8f4f7c53e48cb26.rmeta: crates/cuckoo/tests/proptests.rs Cargo.toml

crates/cuckoo/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
