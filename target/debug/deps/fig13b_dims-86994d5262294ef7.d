/root/repo/target/debug/deps/fig13b_dims-86994d5262294ef7.d: crates/bench/src/bin/fig13b_dims.rs

/root/repo/target/debug/deps/fig13b_dims-86994d5262294ef7: crates/bench/src/bin/fig13b_dims.rs

crates/bench/src/bin/fig13b_dims.rs:
