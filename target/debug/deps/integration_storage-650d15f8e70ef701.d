/root/repo/target/debug/deps/integration_storage-650d15f8e70ef701.d: crates/core/../../tests/integration_storage.rs

/root/repo/target/debug/deps/integration_storage-650d15f8e70ef701: crates/core/../../tests/integration_storage.rs

crates/core/../../tests/integration_storage.rs:
