/root/repo/target/debug/deps/proptest-de1e35474435d2dd.d: /tmp/vendor/proptest/src/lib.rs /tmp/vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-de1e35474435d2dd.rlib: /tmp/vendor/proptest/src/lib.rs /tmp/vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-de1e35474435d2dd.rmeta: /tmp/vendor/proptest/src/lib.rs /tmp/vendor/proptest/src/collection.rs

/tmp/vendor/proptest/src/lib.rs:
/tmp/vendor/proptest/src/collection.rs:
