/root/repo/target/debug/deps/fig07_zm_multiprobe-4d7f2f813a9f1028.d: crates/bench/src/bin/fig07_zm_multiprobe.rs

/root/repo/target/debug/deps/fig07_zm_multiprobe-4d7f2f813a9f1028: crates/bench/src/bin/fig07_zm_multiprobe.rs

crates/bench/src/bin/fig07_zm_multiprobe.rs:
