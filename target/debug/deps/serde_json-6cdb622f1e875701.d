/root/repo/target/debug/deps/serde_json-6cdb622f1e875701.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6cdb622f1e875701.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
