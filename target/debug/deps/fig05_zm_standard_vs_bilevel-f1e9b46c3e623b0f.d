/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-f1e9b46c3e623b0f.d: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-f1e9b46c3e623b0f: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs:
