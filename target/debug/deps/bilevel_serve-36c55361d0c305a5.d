/root/repo/target/debug/deps/bilevel_serve-36c55361d0c305a5.d: crates/serve/src/bin/bilevel-serve.rs

/root/repo/target/debug/deps/bilevel_serve-36c55361d0c305a5: crates/serve/src/bin/bilevel-serve.rs

crates/serve/src/bin/bilevel-serve.rs:
