/root/repo/target/debug/deps/abl_split_rule-a1fe57d4a6e72866.d: crates/bench/src/bin/abl_split_rule.rs

/root/repo/target/debug/deps/abl_split_rule-a1fe57d4a6e72866: crates/bench/src/bin/abl_split_rule.rs

crates/bench/src/bin/abl_split_rule.rs:
