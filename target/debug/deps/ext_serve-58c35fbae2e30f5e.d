/root/repo/target/debug/deps/ext_serve-58c35fbae2e30f5e.d: crates/bench/src/bin/ext_serve.rs

/root/repo/target/debug/deps/ext_serve-58c35fbae2e30f5e: crates/bench/src/bin/ext_serve.rs

crates/bench/src/bin/ext_serve.rs:
