/root/repo/target/debug/deps/fig08_e8_multiprobe-68db635f8a4d1b82.d: crates/bench/src/bin/fig08_e8_multiprobe.rs

/root/repo/target/debug/deps/fig08_e8_multiprobe-68db635f8a4d1b82: crates/bench/src/bin/fig08_e8_multiprobe.rs

crates/bench/src/bin/fig08_e8_multiprobe.rs:
