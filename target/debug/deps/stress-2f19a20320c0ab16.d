/root/repo/target/debug/deps/stress-2f19a20320c0ab16.d: crates/serve/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-2f19a20320c0ab16.rmeta: crates/serve/tests/stress.rs Cargo.toml

crates/serve/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
