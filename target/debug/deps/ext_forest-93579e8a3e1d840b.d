/root/repo/target/debug/deps/ext_forest-93579e8a3e1d840b.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/debug/deps/ext_forest-93579e8a3e1d840b: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:
