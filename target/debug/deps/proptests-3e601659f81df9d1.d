/root/repo/target/debug/deps/proptests-3e601659f81df9d1.d: crates/rptree/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3e601659f81df9d1: crates/rptree/tests/proptests.rs

crates/rptree/tests/proptests.rs:
