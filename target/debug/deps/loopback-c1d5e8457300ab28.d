/root/repo/target/debug/deps/loopback-c1d5e8457300ab28.d: crates/net/tests/loopback.rs

/root/repo/target/debug/deps/loopback-c1d5e8457300ab28: crates/net/tests/loopback.rs

crates/net/tests/loopback.rs:
