/root/repo/target/debug/deps/shortlist-89e757a2c52ec30e.d: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/debug/deps/libshortlist-89e757a2c52ec30e.rlib: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/debug/deps/libshortlist-89e757a2c52ec30e.rmeta: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

crates/shortlist/src/lib.rs:
crates/shortlist/src/engine.rs:
crates/shortlist/src/primitives.rs:
