/root/repo/target/debug/deps/rptree-a0f1a6a4654e6a97.d: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/debug/deps/librptree-a0f1a6a4654e6a97.rmeta: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

crates/rptree/src/lib.rs:
crates/rptree/src/diameter.rs:
crates/rptree/src/kdknn.rs:
crates/rptree/src/kdpart.rs:
crates/rptree/src/kmeans.rs:
crates/rptree/src/partition.rs:
crates/rptree/src/tree.rs:
