/root/repo/target/debug/deps/lattice-d97203a93f444e9b.d: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/liblattice-d97203a93f444e9b.rmeta: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs Cargo.toml

crates/lattice/src/lib.rs:
crates/lattice/src/density.rs:
crates/lattice/src/e8.rs:
crates/lattice/src/e8_hierarchy.rs:
crates/lattice/src/morton.rs:
crates/lattice/src/zm_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
