/root/repo/target/debug/deps/fig07_zm_multiprobe-48add8b32b0c82d4.d: crates/bench/src/bin/fig07_zm_multiprobe.rs

/root/repo/target/debug/deps/fig07_zm_multiprobe-48add8b32b0c82d4: crates/bench/src/bin/fig07_zm_multiprobe.rs

crates/bench/src/bin/fig07_zm_multiprobe.rs:
