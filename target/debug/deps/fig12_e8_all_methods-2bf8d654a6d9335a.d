/root/repo/target/debug/deps/fig12_e8_all_methods-2bf8d654a6d9335a.d: crates/bench/src/bin/fig12_e8_all_methods.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_e8_all_methods-2bf8d654a6d9335a.rmeta: crates/bench/src/bin/fig12_e8_all_methods.rs Cargo.toml

crates/bench/src/bin/fig12_e8_all_methods.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
