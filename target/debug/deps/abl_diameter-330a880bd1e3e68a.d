/root/repo/target/debug/deps/abl_diameter-330a880bd1e3e68a.d: crates/bench/src/bin/abl_diameter.rs

/root/repo/target/debug/deps/abl_diameter-330a880bd1e3e68a: crates/bench/src/bin/abl_diameter.rs

crates/bench/src/bin/abl_diameter.rs:
