/root/repo/target/debug/deps/ext_ooc-4ebe7d9b9a5a7b8f.d: crates/bench/src/bin/ext_ooc.rs Cargo.toml

/root/repo/target/debug/deps/libext_ooc-4ebe7d9b9a5a7b8f.rmeta: crates/bench/src/bin/ext_ooc.rs Cargo.toml

crates/bench/src/bin/ext_ooc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
