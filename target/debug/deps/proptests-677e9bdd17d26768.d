/root/repo/target/debug/deps/proptests-677e9bdd17d26768.d: crates/vecstore/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-677e9bdd17d26768.rmeta: crates/vecstore/tests/proptests.rs Cargo.toml

crates/vecstore/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
