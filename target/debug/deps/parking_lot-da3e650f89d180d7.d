/root/repo/target/debug/deps/parking_lot-da3e650f89d180d7.d: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-da3e650f89d180d7.rmeta: /tmp/vendor/parking_lot/src/lib.rs

/tmp/vendor/parking_lot/src/lib.rs:
