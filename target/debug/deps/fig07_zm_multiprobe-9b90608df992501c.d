/root/repo/target/debug/deps/fig07_zm_multiprobe-9b90608df992501c.d: crates/bench/src/bin/fig07_zm_multiprobe.rs

/root/repo/target/debug/deps/fig07_zm_multiprobe-9b90608df992501c: crates/bench/src/bin/fig07_zm_multiprobe.rs

crates/bench/src/bin/fig07_zm_multiprobe.rs:
