/root/repo/target/debug/deps/fig13b_dims-28ad974dc58acf5e.d: crates/bench/src/bin/fig13b_dims.rs

/root/repo/target/debug/deps/fig13b_dims-28ad974dc58acf5e: crates/bench/src/bin/fig13b_dims.rs

crates/bench/src/bin/fig13b_dims.rs:
