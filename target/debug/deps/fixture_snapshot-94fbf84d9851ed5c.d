/root/repo/target/debug/deps/fixture_snapshot-94fbf84d9851ed5c.d: crates/core/tests/fixture_snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libfixture_snapshot-94fbf84d9851ed5c.rmeta: crates/core/tests/fixture_snapshot.rs Cargo.toml

crates/core/tests/fixture_snapshot.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
