/root/repo/target/debug/deps/abl_batch-def0cb7f80c211f3.d: crates/bench/src/bin/abl_batch.rs

/root/repo/target/debug/deps/abl_batch-def0cb7f80c211f3: crates/bench/src/bin/abl_batch.rs

crates/bench/src/bin/abl_batch.rs:
