/root/repo/target/debug/deps/knn_metrics-733470470eea2b7b.d: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libknn_metrics-733470470eea2b7b.rmeta: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/curve.rs:
crates/metrics/src/quality.rs:
crates/metrics/src/significance.rs:
crates/metrics/src/stats.rs:
