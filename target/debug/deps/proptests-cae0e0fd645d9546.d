/root/repo/target/debug/deps/proptests-cae0e0fd645d9546.d: crates/shortlist/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-cae0e0fd645d9546.rmeta: crates/shortlist/tests/proptests.rs Cargo.toml

crates/shortlist/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
