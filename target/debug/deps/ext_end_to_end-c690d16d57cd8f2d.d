/root/repo/target/debug/deps/ext_end_to_end-c690d16d57cd8f2d.d: crates/bench/src/bin/ext_end_to_end.rs

/root/repo/target/debug/deps/ext_end_to_end-c690d16d57cd8f2d: crates/bench/src/bin/ext_end_to_end.rs

crates/bench/src/bin/ext_end_to_end.rs:
