/root/repo/target/debug/deps/knn_serve-f543c16c26b5f723.d: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

/root/repo/target/debug/deps/knn_serve-f543c16c26b5f723: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

crates/serve/src/lib.rs:
crates/serve/src/backend.rs:
crates/serve/src/fanout.rs:
crates/serve/src/mutable.rs:
crates/serve/src/protocol.rs:
crates/serve/src/service.rs:
crates/serve/src/stats.rs:
