/root/repo/target/debug/deps/fig13a_groups-b2c853c90b794a14.d: crates/bench/src/bin/fig13a_groups.rs

/root/repo/target/debug/deps/fig13a_groups-b2c853c90b794a14: crates/bench/src/bin/fig13a_groups.rs

crates/bench/src/bin/fig13a_groups.rs:
