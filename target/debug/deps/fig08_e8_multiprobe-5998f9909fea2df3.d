/root/repo/target/debug/deps/fig08_e8_multiprobe-5998f9909fea2df3.d: crates/bench/src/bin/fig08_e8_multiprobe.rs

/root/repo/target/debug/deps/fig08_e8_multiprobe-5998f9909fea2df3: crates/bench/src/bin/fig08_e8_multiprobe.rs

crates/bench/src/bin/fig08_e8_multiprobe.rs:
