/root/repo/target/debug/deps/vecstore-86da01a181efb57f.d: crates/vecstore/src/lib.rs crates/vecstore/src/dataset.rs crates/vecstore/src/exact.rs crates/vecstore/src/fault.rs crates/vecstore/src/io.rs crates/vecstore/src/kernel.rs crates/vecstore/src/metric.rs crates/vecstore/src/ooc.rs crates/vecstore/src/preprocess.rs crates/vecstore/src/quant.rs crates/vecstore/src/stats.rs crates/vecstore/src/synth.rs crates/vecstore/src/tombstone.rs crates/vecstore/src/topk.rs Cargo.toml

/root/repo/target/debug/deps/libvecstore-86da01a181efb57f.rmeta: crates/vecstore/src/lib.rs crates/vecstore/src/dataset.rs crates/vecstore/src/exact.rs crates/vecstore/src/fault.rs crates/vecstore/src/io.rs crates/vecstore/src/kernel.rs crates/vecstore/src/metric.rs crates/vecstore/src/ooc.rs crates/vecstore/src/preprocess.rs crates/vecstore/src/quant.rs crates/vecstore/src/stats.rs crates/vecstore/src/synth.rs crates/vecstore/src/tombstone.rs crates/vecstore/src/topk.rs Cargo.toml

crates/vecstore/src/lib.rs:
crates/vecstore/src/dataset.rs:
crates/vecstore/src/exact.rs:
crates/vecstore/src/fault.rs:
crates/vecstore/src/io.rs:
crates/vecstore/src/kernel.rs:
crates/vecstore/src/metric.rs:
crates/vecstore/src/ooc.rs:
crates/vecstore/src/preprocess.rs:
crates/vecstore/src/quant.rs:
crates/vecstore/src/stats.rs:
crates/vecstore/src/synth.rs:
crates/vecstore/src/tombstone.rs:
crates/vecstore/src/topk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
