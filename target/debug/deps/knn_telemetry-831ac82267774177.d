/root/repo/target/debug/deps/knn_telemetry-831ac82267774177.d: crates/telemetry/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libknn_telemetry-831ac82267774177.rmeta: crates/telemetry/src/lib.rs Cargo.toml

crates/telemetry/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
