/root/repo/target/debug/deps/vecstore-7f253b373bebbb65.d: crates/vecstore/src/lib.rs crates/vecstore/src/dataset.rs crates/vecstore/src/exact.rs crates/vecstore/src/fault.rs crates/vecstore/src/io.rs crates/vecstore/src/kernel.rs crates/vecstore/src/metric.rs crates/vecstore/src/ooc.rs crates/vecstore/src/preprocess.rs crates/vecstore/src/quant.rs crates/vecstore/src/stats.rs crates/vecstore/src/synth.rs crates/vecstore/src/tombstone.rs crates/vecstore/src/topk.rs

/root/repo/target/debug/deps/libvecstore-7f253b373bebbb65.rmeta: crates/vecstore/src/lib.rs crates/vecstore/src/dataset.rs crates/vecstore/src/exact.rs crates/vecstore/src/fault.rs crates/vecstore/src/io.rs crates/vecstore/src/kernel.rs crates/vecstore/src/metric.rs crates/vecstore/src/ooc.rs crates/vecstore/src/preprocess.rs crates/vecstore/src/quant.rs crates/vecstore/src/stats.rs crates/vecstore/src/synth.rs crates/vecstore/src/tombstone.rs crates/vecstore/src/topk.rs

crates/vecstore/src/lib.rs:
crates/vecstore/src/dataset.rs:
crates/vecstore/src/exact.rs:
crates/vecstore/src/fault.rs:
crates/vecstore/src/io.rs:
crates/vecstore/src/kernel.rs:
crates/vecstore/src/metric.rs:
crates/vecstore/src/ooc.rs:
crates/vecstore/src/preprocess.rs:
crates/vecstore/src/quant.rs:
crates/vecstore/src/stats.rs:
crates/vecstore/src/synth.rs:
crates/vecstore/src/tombstone.rs:
crates/vecstore/src/topk.rs:
