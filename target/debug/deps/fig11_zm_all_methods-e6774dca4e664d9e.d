/root/repo/target/debug/deps/fig11_zm_all_methods-e6774dca4e664d9e.d: crates/bench/src/bin/fig11_zm_all_methods.rs

/root/repo/target/debug/deps/fig11_zm_all_methods-e6774dca4e664d9e: crates/bench/src/bin/fig11_zm_all_methods.rs

crates/bench/src/bin/fig11_zm_all_methods.rs:
