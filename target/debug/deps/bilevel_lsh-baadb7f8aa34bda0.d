/root/repo/target/debug/deps/bilevel_lsh-baadb7f8aa34bda0.d: crates/core/src/lib.rs crates/core/src/binio.rs crates/core/src/code.rs crates/core/src/compat.rs crates/core/src/config.rs crates/core/src/evaluate.rs crates/core/src/flat.rs crates/core/src/index.rs crates/core/src/interval.rs crates/core/src/jsonio.rs crates/core/src/ooc.rs crates/core/src/options.rs crates/core/src/persist.rs crates/core/src/shard.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libbilevel_lsh-baadb7f8aa34bda0.rlib: crates/core/src/lib.rs crates/core/src/binio.rs crates/core/src/code.rs crates/core/src/compat.rs crates/core/src/config.rs crates/core/src/evaluate.rs crates/core/src/flat.rs crates/core/src/index.rs crates/core/src/interval.rs crates/core/src/jsonio.rs crates/core/src/ooc.rs crates/core/src/options.rs crates/core/src/persist.rs crates/core/src/shard.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libbilevel_lsh-baadb7f8aa34bda0.rmeta: crates/core/src/lib.rs crates/core/src/binio.rs crates/core/src/code.rs crates/core/src/compat.rs crates/core/src/config.rs crates/core/src/evaluate.rs crates/core/src/flat.rs crates/core/src/index.rs crates/core/src/interval.rs crates/core/src/jsonio.rs crates/core/src/ooc.rs crates/core/src/options.rs crates/core/src/persist.rs crates/core/src/shard.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/binio.rs:
crates/core/src/code.rs:
crates/core/src/compat.rs:
crates/core/src/config.rs:
crates/core/src/evaluate.rs:
crates/core/src/flat.rs:
crates/core/src/index.rs:
crates/core/src/interval.rs:
crates/core/src/jsonio.rs:
crates/core/src/ooc.rs:
crates/core/src/options.rs:
crates/core/src/persist.rs:
crates/core/src/shard.rs:
crates/core/src/stats.rs:
