/root/repo/target/debug/deps/criterion-30e5b123b96c5162.d: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-30e5b123b96c5162.rlib: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-30e5b123b96c5162.rmeta: /tmp/vendor/criterion/src/lib.rs

/tmp/vendor/criterion/src/lib.rs:
