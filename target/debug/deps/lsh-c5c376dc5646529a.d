/root/repo/target/debug/deps/lsh-c5c376dc5646529a.d: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/debug/deps/liblsh-c5c376dc5646529a.rlib: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/debug/deps/liblsh-c5c376dc5646529a.rmeta: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

crates/lsh/src/lib.rs:
crates/lsh/src/adaptive.rs:
crates/lsh/src/family.rs:
crates/lsh/src/forest.rs:
crates/lsh/src/multiprobe.rs:
crates/lsh/src/table.rs:
crates/lsh/src/tuning.rs:
