/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-c04ee9475518b4bf.d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_e8_standard_vs_bilevel-c04ee9475518b4bf.rmeta: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs Cargo.toml

crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
