/root/repo/target/debug/deps/fig13c_partitioner-043f7238d25c2826.d: crates/bench/src/bin/fig13c_partitioner.rs

/root/repo/target/debug/deps/fig13c_partitioner-043f7238d25c2826: crates/bench/src/bin/fig13c_partitioner.rs

crates/bench/src/bin/fig13c_partitioner.rs:
