/root/repo/target/debug/deps/fig09_zm_hierarchy-e65ced27a81dc979.d: crates/bench/src/bin/fig09_zm_hierarchy.rs

/root/repo/target/debug/deps/fig09_zm_hierarchy-e65ced27a81dc979: crates/bench/src/bin/fig09_zm_hierarchy.rs

crates/bench/src/bin/fig09_zm_hierarchy.rs:
