/root/repo/target/debug/deps/fig10_e8_hierarchy-6b2432cffb60488b.d: crates/bench/src/bin/fig10_e8_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_e8_hierarchy-6b2432cffb60488b.rmeta: crates/bench/src/bin/fig10_e8_hierarchy.rs Cargo.toml

crates/bench/src/bin/fig10_e8_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
