/root/repo/target/debug/deps/abl_diameter-0cd1ff3d8f4df862.d: crates/bench/src/bin/abl_diameter.rs

/root/repo/target/debug/deps/abl_diameter-0cd1ff3d8f4df862: crates/bench/src/bin/abl_diameter.rs

crates/bench/src/bin/abl_diameter.rs:
