/root/repo/target/debug/deps/knn_serve-2357262a8e1464f5.d: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libknn_serve-2357262a8e1464f5.rmeta: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/backend.rs:
crates/serve/src/fanout.rs:
crates/serve/src/mutable.rs:
crates/serve/src/protocol.rs:
crates/serve/src/service.rs:
crates/serve/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
