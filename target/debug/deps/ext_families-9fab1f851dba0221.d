/root/repo/target/debug/deps/ext_families-9fab1f851dba0221.d: crates/bench/src/bin/ext_families.rs

/root/repo/target/debug/deps/ext_families-9fab1f851dba0221: crates/bench/src/bin/ext_families.rs

crates/bench/src/bin/ext_families.rs:
