/root/repo/target/debug/deps/cuckoo-b357e417c4330bcf.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/debug/deps/libcuckoo-b357e417c4330bcf.rlib: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/debug/deps/libcuckoo-b357e417c4330bcf.rmeta: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
