/root/repo/target/debug/deps/proptests-79c3c318cda2cf6e.d: crates/metrics/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-79c3c318cda2cf6e.rmeta: crates/metrics/tests/proptests.rs Cargo.toml

crates/metrics/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
