/root/repo/target/debug/deps/knn_telemetry-2d3bd6642d14216e.d: crates/telemetry/src/lib.rs

/root/repo/target/debug/deps/libknn_telemetry-2d3bd6642d14216e.rlib: crates/telemetry/src/lib.rs

/root/repo/target/debug/deps/libknn_telemetry-2d3bd6642d14216e.rmeta: crates/telemetry/src/lib.rs

crates/telemetry/src/lib.rs:
