/root/repo/target/debug/deps/abl_curse-b0ea17b27337b4ee.d: crates/bench/src/bin/abl_curse.rs Cargo.toml

/root/repo/target/debug/deps/libabl_curse-b0ea17b27337b4ee.rmeta: crates/bench/src/bin/abl_curse.rs Cargo.toml

crates/bench/src/bin/abl_curse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
