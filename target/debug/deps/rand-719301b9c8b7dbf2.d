/root/repo/target/debug/deps/rand-719301b9c8b7dbf2.d: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/rngs.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/seq.rs

/root/repo/target/debug/deps/librand-719301b9c8b7dbf2.rmeta: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/rngs.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/seq.rs

/tmp/vendor/rand/src/lib.rs:
/tmp/vendor/rand/src/rngs.rs:
/tmp/vendor/rand/src/distributions.rs:
/tmp/vendor/rand/src/seq.rs:
