/root/repo/target/debug/deps/ext_end_to_end-62750027d8e771cf.d: crates/bench/src/bin/ext_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libext_end_to_end-62750027d8e771cf.rmeta: crates/bench/src/bin/ext_end_to_end.rs Cargo.toml

crates/bench/src/bin/ext_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
