/root/repo/target/debug/deps/shortlist-3a19e450dc7b6c2e.d: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/debug/deps/libshortlist-3a19e450dc7b6c2e.rmeta: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

crates/shortlist/src/lib.rs:
crates/shortlist/src/engine.rs:
crates/shortlist/src/primitives.rs:
