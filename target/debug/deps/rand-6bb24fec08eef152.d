/root/repo/target/debug/deps/rand-6bb24fec08eef152.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-6bb24fec08eef152.rlib: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-6bb24fec08eef152.rmeta: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
