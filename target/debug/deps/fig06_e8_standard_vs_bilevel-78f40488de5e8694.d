/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-78f40488de5e8694.d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-78f40488de5e8694: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs:
