/root/repo/target/debug/deps/proptests-a67d0113e18de638.d: crates/lattice/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a67d0113e18de638.rmeta: crates/lattice/tests/proptests.rs Cargo.toml

crates/lattice/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
