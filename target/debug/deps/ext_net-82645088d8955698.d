/root/repo/target/debug/deps/ext_net-82645088d8955698.d: crates/bench/src/bin/ext_net.rs

/root/repo/target/debug/deps/ext_net-82645088d8955698: crates/bench/src/bin/ext_net.rs

crates/bench/src/bin/ext_net.rs:
