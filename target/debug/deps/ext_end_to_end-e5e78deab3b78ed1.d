/root/repo/target/debug/deps/ext_end_to_end-e5e78deab3b78ed1.d: crates/bench/src/bin/ext_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libext_end_to_end-e5e78deab3b78ed1.rmeta: crates/bench/src/bin/ext_end_to_end.rs Cargo.toml

crates/bench/src/bin/ext_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
