/root/repo/target/debug/deps/bilevel_netd-8adf29837beec8e8.d: crates/net/src/bin/bilevel-netd.rs

/root/repo/target/debug/deps/bilevel_netd-8adf29837beec8e8: crates/net/src/bin/bilevel-netd.rs

crates/net/src/bin/bilevel-netd.rs:
