/root/repo/target/debug/deps/ext_serve-2d04b515122a0514.d: crates/bench/src/bin/ext_serve.rs

/root/repo/target/debug/deps/ext_serve-2d04b515122a0514: crates/bench/src/bin/ext_serve.rs

crates/bench/src/bin/ext_serve.rs:
