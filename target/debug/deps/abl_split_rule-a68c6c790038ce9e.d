/root/repo/target/debug/deps/abl_split_rule-a68c6c790038ce9e.d: crates/bench/src/bin/abl_split_rule.rs

/root/repo/target/debug/deps/abl_split_rule-a68c6c790038ce9e: crates/bench/src/bin/abl_split_rule.rs

crates/bench/src/bin/abl_split_rule.rs:
