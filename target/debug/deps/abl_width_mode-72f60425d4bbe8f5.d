/root/repo/target/debug/deps/abl_width_mode-72f60425d4bbe8f5.d: crates/bench/src/bin/abl_width_mode.rs

/root/repo/target/debug/deps/abl_width_mode-72f60425d4bbe8f5: crates/bench/src/bin/abl_width_mode.rs

crates/bench/src/bin/abl_width_mode.rs:
