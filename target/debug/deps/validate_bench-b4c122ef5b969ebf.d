/root/repo/target/debug/deps/validate_bench-b4c122ef5b969ebf.d: crates/bench/src/bin/validate_bench.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate_bench-b4c122ef5b969ebf.rmeta: crates/bench/src/bin/validate_bench.rs Cargo.toml

crates/bench/src/bin/validate_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
