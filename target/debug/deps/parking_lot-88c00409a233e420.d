/root/repo/target/debug/deps/parking_lot-88c00409a233e420.d: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-88c00409a233e420.rlib: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-88c00409a233e420.rmeta: /tmp/vendor/parking_lot/src/lib.rs

/tmp/vendor/parking_lot/src/lib.rs:
