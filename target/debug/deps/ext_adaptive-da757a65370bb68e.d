/root/repo/target/debug/deps/ext_adaptive-da757a65370bb68e.d: crates/bench/src/bin/ext_adaptive.rs

/root/repo/target/debug/deps/ext_adaptive-da757a65370bb68e: crates/bench/src/bin/ext_adaptive.rs

crates/bench/src/bin/ext_adaptive.rs:
