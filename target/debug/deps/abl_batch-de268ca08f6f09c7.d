/root/repo/target/debug/deps/abl_batch-de268ca08f6f09c7.d: crates/bench/src/bin/abl_batch.rs

/root/repo/target/debug/deps/abl_batch-de268ca08f6f09c7: crates/bench/src/bin/abl_batch.rs

crates/bench/src/bin/abl_batch.rs:
