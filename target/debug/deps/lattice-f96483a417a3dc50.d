/root/repo/target/debug/deps/lattice-f96483a417a3dc50.d: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/debug/deps/lattice-f96483a417a3dc50: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

crates/lattice/src/lib.rs:
crates/lattice/src/density.rs:
crates/lattice/src/e8.rs:
crates/lattice/src/e8_hierarchy.rs:
crates/lattice/src/morton.rs:
crates/lattice/src/zm_hierarchy.rs:
