/root/repo/target/debug/deps/cli-67ebe007ca56dbc7.d: crates/core/tests/cli.rs

/root/repo/target/debug/deps/cli-67ebe007ca56dbc7: crates/core/tests/cli.rs

crates/core/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_bilevel=/root/repo/target/debug/bilevel
