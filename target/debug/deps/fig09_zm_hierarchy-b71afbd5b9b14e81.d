/root/repo/target/debug/deps/fig09_zm_hierarchy-b71afbd5b9b14e81.d: crates/bench/src/bin/fig09_zm_hierarchy.rs

/root/repo/target/debug/deps/fig09_zm_hierarchy-b71afbd5b9b14e81: crates/bench/src/bin/fig09_zm_hierarchy.rs

crates/bench/src/bin/fig09_zm_hierarchy.rs:
