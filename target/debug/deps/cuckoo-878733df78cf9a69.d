/root/repo/target/debug/deps/cuckoo-878733df78cf9a69.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libcuckoo-878733df78cf9a69.rmeta: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs Cargo.toml

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
