/root/repo/target/debug/deps/cli-23c2e59f2493c0f8.d: crates/core/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-23c2e59f2493c0f8.rmeta: crates/core/tests/cli.rs Cargo.toml

crates/core/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_bilevel=placeholder:bilevel
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
