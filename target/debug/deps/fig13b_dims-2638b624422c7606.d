/root/repo/target/debug/deps/fig13b_dims-2638b624422c7606.d: crates/bench/src/bin/fig13b_dims.rs

/root/repo/target/debug/deps/fig13b_dims-2638b624422c7606: crates/bench/src/bin/fig13b_dims.rs

crates/bench/src/bin/fig13b_dims.rs:
