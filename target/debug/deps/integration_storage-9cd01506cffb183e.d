/root/repo/target/debug/deps/integration_storage-9cd01506cffb183e.d: crates/core/../../tests/integration_storage.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_storage-9cd01506cffb183e.rmeta: crates/core/../../tests/integration_storage.rs Cargo.toml

crates/core/../../tests/integration_storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
