/root/repo/target/debug/deps/ext_end_to_end-1a5aa92c3397e326.d: crates/bench/src/bin/ext_end_to_end.rs

/root/repo/target/debug/deps/ext_end_to_end-1a5aa92c3397e326: crates/bench/src/bin/ext_end_to_end.rs

crates/bench/src/bin/ext_end_to_end.rs:
