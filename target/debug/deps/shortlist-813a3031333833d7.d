/root/repo/target/debug/deps/shortlist-813a3031333833d7.d: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/debug/deps/libshortlist-813a3031333833d7.rlib: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/debug/deps/libshortlist-813a3031333833d7.rmeta: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

crates/shortlist/src/lib.rs:
crates/shortlist/src/engine.rs:
crates/shortlist/src/primitives.rs:
