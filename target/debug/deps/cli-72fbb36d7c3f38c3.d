/root/repo/target/debug/deps/cli-72fbb36d7c3f38c3.d: crates/serve/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-72fbb36d7c3f38c3.rmeta: crates/serve/tests/cli.rs Cargo.toml

crates/serve/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_bilevel-serve=placeholder:bilevel-serve
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
