/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-f55afbac71bb3da9.d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_e8_standard_vs_bilevel-f55afbac71bb3da9.rmeta: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs Cargo.toml

crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
