/root/repo/target/debug/deps/bilevel_serve-75df83317ca2d835.d: crates/serve/src/bin/bilevel-serve.rs

/root/repo/target/debug/deps/bilevel_serve-75df83317ca2d835: crates/serve/src/bin/bilevel-serve.rs

crates/serve/src/bin/bilevel-serve.rs:
