/root/repo/target/debug/deps/ext_forest-650f5a9c3222602a.d: crates/bench/src/bin/ext_forest.rs Cargo.toml

/root/repo/target/debug/deps/libext_forest-650f5a9c3222602a.rmeta: crates/bench/src/bin/ext_forest.rs Cargo.toml

crates/bench/src/bin/ext_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
