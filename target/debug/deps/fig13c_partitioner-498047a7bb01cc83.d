/root/repo/target/debug/deps/fig13c_partitioner-498047a7bb01cc83.d: crates/bench/src/bin/fig13c_partitioner.rs

/root/repo/target/debug/deps/fig13c_partitioner-498047a7bb01cc83: crates/bench/src/bin/fig13c_partitioner.rs

crates/bench/src/bin/fig13c_partitioner.rs:
