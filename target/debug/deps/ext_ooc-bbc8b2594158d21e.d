/root/repo/target/debug/deps/ext_ooc-bbc8b2594158d21e.d: crates/bench/src/bin/ext_ooc.rs Cargo.toml

/root/repo/target/debug/deps/libext_ooc-bbc8b2594158d21e.rmeta: crates/bench/src/bin/ext_ooc.rs Cargo.toml

crates/bench/src/bin/ext_ooc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
