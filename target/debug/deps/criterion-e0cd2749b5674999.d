/root/repo/target/debug/deps/criterion-e0cd2749b5674999.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e0cd2749b5674999.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e0cd2749b5674999.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
