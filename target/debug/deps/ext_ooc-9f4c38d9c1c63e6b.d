/root/repo/target/debug/deps/ext_ooc-9f4c38d9c1c63e6b.d: crates/bench/src/bin/ext_ooc.rs

/root/repo/target/debug/deps/ext_ooc-9f4c38d9c1c63e6b: crates/bench/src/bin/ext_ooc.rs

crates/bench/src/bin/ext_ooc.rs:
