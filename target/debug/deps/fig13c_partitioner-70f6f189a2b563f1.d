/root/repo/target/debug/deps/fig13c_partitioner-70f6f189a2b563f1.d: crates/bench/src/bin/fig13c_partitioner.rs

/root/repo/target/debug/deps/fig13c_partitioner-70f6f189a2b563f1: crates/bench/src/bin/fig13c_partitioner.rs

crates/bench/src/bin/fig13c_partitioner.rs:
