/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-3e40fdff9586a026.d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-3e40fdff9586a026: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs:
