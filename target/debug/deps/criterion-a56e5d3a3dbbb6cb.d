/root/repo/target/debug/deps/criterion-a56e5d3a3dbbb6cb.d: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-a56e5d3a3dbbb6cb.rmeta: /tmp/vendor/criterion/src/lib.rs

/tmp/vendor/criterion/src/lib.rs:
