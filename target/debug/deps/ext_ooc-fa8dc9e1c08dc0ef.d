/root/repo/target/debug/deps/ext_ooc-fa8dc9e1c08dc0ef.d: crates/bench/src/bin/ext_ooc.rs

/root/repo/target/debug/deps/ext_ooc-fa8dc9e1c08dc0ef: crates/bench/src/bin/ext_ooc.rs

crates/bench/src/bin/ext_ooc.rs:
