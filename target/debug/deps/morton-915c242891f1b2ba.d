/root/repo/target/debug/deps/morton-915c242891f1b2ba.d: crates/bench/benches/morton.rs Cargo.toml

/root/repo/target/debug/deps/libmorton-915c242891f1b2ba.rmeta: crates/bench/benches/morton.rs Cargo.toml

crates/bench/benches/morton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
