/root/repo/target/debug/deps/proptest-308495568dbed4f4.d: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-308495568dbed4f4.rmeta: /tmp/vendor/proptest/src/lib.rs

/tmp/vendor/proptest/src/lib.rs:
