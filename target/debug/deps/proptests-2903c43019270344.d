/root/repo/target/debug/deps/proptests-2903c43019270344.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2903c43019270344: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
