/root/repo/target/debug/deps/proptests-51afeb4a314232ac.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-51afeb4a314232ac: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
