/root/repo/target/debug/deps/fig04_shortlist-f748fece2707f497.d: crates/bench/src/bin/fig04_shortlist.rs

/root/repo/target/debug/deps/fig04_shortlist-f748fece2707f497: crates/bench/src/bin/fig04_shortlist.rs

crates/bench/src/bin/fig04_shortlist.rs:
