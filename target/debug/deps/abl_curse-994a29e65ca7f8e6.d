/root/repo/target/debug/deps/abl_curse-994a29e65ca7f8e6.d: crates/bench/src/bin/abl_curse.rs

/root/repo/target/debug/deps/abl_curse-994a29e65ca7f8e6: crates/bench/src/bin/abl_curse.rs

crates/bench/src/bin/abl_curse.rs:
