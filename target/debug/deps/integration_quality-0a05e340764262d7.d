/root/repo/target/debug/deps/integration_quality-0a05e340764262d7.d: crates/core/../../tests/integration_quality.rs

/root/repo/target/debug/deps/integration_quality-0a05e340764262d7: crates/core/../../tests/integration_quality.rs

crates/core/../../tests/integration_quality.rs:
