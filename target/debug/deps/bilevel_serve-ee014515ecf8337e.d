/root/repo/target/debug/deps/bilevel_serve-ee014515ecf8337e.d: crates/serve/src/bin/bilevel-serve.rs

/root/repo/target/debug/deps/bilevel_serve-ee014515ecf8337e: crates/serve/src/bin/bilevel-serve.rs

crates/serve/src/bin/bilevel-serve.rs:
