/root/repo/target/debug/deps/validate_bench-66cd40e478ca6e41.d: crates/bench/src/bin/validate_bench.rs

/root/repo/target/debug/deps/validate_bench-66cd40e478ca6e41: crates/bench/src/bin/validate_bench.rs

crates/bench/src/bin/validate_bench.rs:
