/root/repo/target/debug/deps/cuckoo-d4b3636093967668.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/debug/deps/libcuckoo-d4b3636093967668.rlib: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/debug/deps/libcuckoo-d4b3636093967668.rmeta: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
