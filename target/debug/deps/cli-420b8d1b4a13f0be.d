/root/repo/target/debug/deps/cli-420b8d1b4a13f0be.d: crates/serve/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-420b8d1b4a13f0be.rmeta: crates/serve/tests/cli.rs Cargo.toml

crates/serve/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_bilevel-serve=placeholder:bilevel-serve
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
