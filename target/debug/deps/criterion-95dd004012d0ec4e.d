/root/repo/target/debug/deps/criterion-95dd004012d0ec4e.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-95dd004012d0ec4e.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
