/root/repo/target/debug/deps/abl_lattice_density-d5e36e9df4828adc.d: crates/bench/src/bin/abl_lattice_density.rs

/root/repo/target/debug/deps/abl_lattice_density-d5e36e9df4828adc: crates/bench/src/bin/abl_lattice_density.rs

crates/bench/src/bin/abl_lattice_density.rs:
