/root/repo/target/debug/deps/lsh_hash-04728da17777efb4.d: crates/bench/benches/lsh_hash.rs Cargo.toml

/root/repo/target/debug/deps/liblsh_hash-04728da17777efb4.rmeta: crates/bench/benches/lsh_hash.rs Cargo.toml

crates/bench/benches/lsh_hash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
