/root/repo/target/debug/deps/cuckoo-1b80c9bc1a85f4d2.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libcuckoo-1b80c9bc1a85f4d2.rmeta: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs Cargo.toml

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
