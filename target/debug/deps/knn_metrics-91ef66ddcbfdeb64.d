/root/repo/target/debug/deps/knn_metrics-91ef66ddcbfdeb64.d: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libknn_metrics-91ef66ddcbfdeb64.rmeta: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/curve.rs:
crates/metrics/src/quality.rs:
crates/metrics/src/significance.rs:
crates/metrics/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
