/root/repo/target/debug/deps/lattice-b5f31f5afd67d5c7.d: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/debug/deps/liblattice-b5f31f5afd67d5c7.rlib: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/debug/deps/liblattice-b5f31f5afd67d5c7.rmeta: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

crates/lattice/src/lib.rs:
crates/lattice/src/density.rs:
crates/lattice/src/e8.rs:
crates/lattice/src/e8_hierarchy.rs:
crates/lattice/src/morton.rs:
crates/lattice/src/zm_hierarchy.rs:
