/root/repo/target/debug/deps/integration_variants-b16ca5d01f58849f.d: crates/core/../../tests/integration_variants.rs

/root/repo/target/debug/deps/integration_variants-b16ca5d01f58849f: crates/core/../../tests/integration_variants.rs

crates/core/../../tests/integration_variants.rs:
