/root/repo/target/debug/deps/bilevel_lsh-6ff0d241eb797079.d: crates/core/src/lib.rs crates/core/src/binio.rs crates/core/src/code.rs crates/core/src/compat.rs crates/core/src/config.rs crates/core/src/evaluate.rs crates/core/src/flat.rs crates/core/src/index.rs crates/core/src/interval.rs crates/core/src/jsonio.rs crates/core/src/ooc.rs crates/core/src/options.rs crates/core/src/persist.rs crates/core/src/shard.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libbilevel_lsh-6ff0d241eb797079.rlib: crates/core/src/lib.rs crates/core/src/binio.rs crates/core/src/code.rs crates/core/src/compat.rs crates/core/src/config.rs crates/core/src/evaluate.rs crates/core/src/flat.rs crates/core/src/index.rs crates/core/src/interval.rs crates/core/src/jsonio.rs crates/core/src/ooc.rs crates/core/src/options.rs crates/core/src/persist.rs crates/core/src/shard.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libbilevel_lsh-6ff0d241eb797079.rmeta: crates/core/src/lib.rs crates/core/src/binio.rs crates/core/src/code.rs crates/core/src/compat.rs crates/core/src/config.rs crates/core/src/evaluate.rs crates/core/src/flat.rs crates/core/src/index.rs crates/core/src/interval.rs crates/core/src/jsonio.rs crates/core/src/ooc.rs crates/core/src/options.rs crates/core/src/persist.rs crates/core/src/shard.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/binio.rs:
crates/core/src/code.rs:
crates/core/src/compat.rs:
crates/core/src/config.rs:
crates/core/src/evaluate.rs:
crates/core/src/flat.rs:
crates/core/src/index.rs:
crates/core/src/interval.rs:
crates/core/src/jsonio.rs:
crates/core/src/ooc.rs:
crates/core/src/options.rs:
crates/core/src/persist.rs:
crates/core/src/shard.rs:
crates/core/src/stats.rs:
