/root/repo/target/debug/deps/ext_ooc-747e8d9916772096.d: crates/bench/src/bin/ext_ooc.rs

/root/repo/target/debug/deps/ext_ooc-747e8d9916772096: crates/bench/src/bin/ext_ooc.rs

crates/bench/src/bin/ext_ooc.rs:
