/root/repo/target/debug/deps/fig11_zm_all_methods-acf9b5eda02664d4.d: crates/bench/src/bin/fig11_zm_all_methods.rs

/root/repo/target/debug/deps/fig11_zm_all_methods-acf9b5eda02664d4: crates/bench/src/bin/fig11_zm_all_methods.rs

crates/bench/src/bin/fig11_zm_all_methods.rs:
