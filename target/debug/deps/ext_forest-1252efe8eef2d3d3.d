/root/repo/target/debug/deps/ext_forest-1252efe8eef2d3d3.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/debug/deps/ext_forest-1252efe8eef2d3d3: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:
