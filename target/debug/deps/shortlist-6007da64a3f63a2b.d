/root/repo/target/debug/deps/shortlist-6007da64a3f63a2b.d: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/debug/deps/libshortlist-6007da64a3f63a2b.rmeta: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

crates/shortlist/src/lib.rs:
crates/shortlist/src/engine.rs:
crates/shortlist/src/primitives.rs:
