/root/repo/target/debug/deps/proptests-350f52c5ddd6295a.d: crates/vecstore/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-350f52c5ddd6295a.rmeta: crates/vecstore/tests/proptests.rs Cargo.toml

crates/vecstore/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
