/root/repo/target/debug/deps/proptests-62d004292ae1a942.d: crates/lattice/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-62d004292ae1a942.rmeta: crates/lattice/tests/proptests.rs Cargo.toml

crates/lattice/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
