/root/repo/target/debug/deps/fig09_zm_hierarchy-bd5d6dbcb007f354.d: crates/bench/src/bin/fig09_zm_hierarchy.rs

/root/repo/target/debug/deps/fig09_zm_hierarchy-bd5d6dbcb007f354: crates/bench/src/bin/fig09_zm_hierarchy.rs

crates/bench/src/bin/fig09_zm_hierarchy.rs:
