/root/repo/target/debug/deps/families-7b7157732b59341d.d: crates/core/tests/families.rs

/root/repo/target/debug/deps/families-7b7157732b59341d: crates/core/tests/families.rs

crates/core/tests/families.rs:
