/root/repo/target/debug/deps/abl_batch-1002319da07f66e5.d: crates/bench/src/bin/abl_batch.rs

/root/repo/target/debug/deps/abl_batch-1002319da07f66e5: crates/bench/src/bin/abl_batch.rs

crates/bench/src/bin/abl_batch.rs:
