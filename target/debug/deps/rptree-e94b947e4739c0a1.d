/root/repo/target/debug/deps/rptree-e94b947e4739c0a1.d: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/debug/deps/librptree-e94b947e4739c0a1.rmeta: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

crates/rptree/src/lib.rs:
crates/rptree/src/diameter.rs:
crates/rptree/src/kdknn.rs:
crates/rptree/src/kdpart.rs:
crates/rptree/src/kmeans.rs:
crates/rptree/src/partition.rs:
crates/rptree/src/tree.rs:
