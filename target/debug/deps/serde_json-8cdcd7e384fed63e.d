/root/repo/target/debug/deps/serde_json-8cdcd7e384fed63e.d: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-8cdcd7e384fed63e.rmeta: /tmp/vendor/serde_json/src/lib.rs

/tmp/vendor/serde_json/src/lib.rs:
