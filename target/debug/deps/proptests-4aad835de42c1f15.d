/root/repo/target/debug/deps/proptests-4aad835de42c1f15.d: crates/vecstore/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4aad835de42c1f15: crates/vecstore/tests/proptests.rs

crates/vecstore/tests/proptests.rs:
