/root/repo/target/debug/deps/fig09_zm_hierarchy-ae96cbaf34c4f8f4.d: crates/bench/src/bin/fig09_zm_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_zm_hierarchy-ae96cbaf34c4f8f4.rmeta: crates/bench/src/bin/fig09_zm_hierarchy.rs Cargo.toml

crates/bench/src/bin/fig09_zm_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
