/root/repo/target/debug/deps/fig08_e8_multiprobe-bf82833d1536f96b.d: crates/bench/src/bin/fig08_e8_multiprobe.rs

/root/repo/target/debug/deps/fig08_e8_multiprobe-bf82833d1536f96b: crates/bench/src/bin/fig08_e8_multiprobe.rs

crates/bench/src/bin/fig08_e8_multiprobe.rs:
