/root/repo/target/debug/deps/cuckoo-48c096f651a5ee07.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/debug/deps/cuckoo-48c096f651a5ee07: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
