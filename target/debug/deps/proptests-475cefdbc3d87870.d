/root/repo/target/debug/deps/proptests-475cefdbc3d87870.d: crates/vecstore/tests/proptests.rs

/root/repo/target/debug/deps/proptests-475cefdbc3d87870: crates/vecstore/tests/proptests.rs

crates/vecstore/tests/proptests.rs:
