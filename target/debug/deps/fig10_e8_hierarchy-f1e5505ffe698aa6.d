/root/repo/target/debug/deps/fig10_e8_hierarchy-f1e5505ffe698aa6.d: crates/bench/src/bin/fig10_e8_hierarchy.rs

/root/repo/target/debug/deps/fig10_e8_hierarchy-f1e5505ffe698aa6: crates/bench/src/bin/fig10_e8_hierarchy.rs

crates/bench/src/bin/fig10_e8_hierarchy.rs:
