/root/repo/target/debug/deps/fixture_snapshot-7ab2032424bc8590.d: crates/core/tests/fixture_snapshot.rs

/root/repo/target/debug/deps/fixture_snapshot-7ab2032424bc8590: crates/core/tests/fixture_snapshot.rs

crates/core/tests/fixture_snapshot.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
