/root/repo/target/debug/deps/integration_persistence-3d006d1b3c25a5f4.d: crates/core/../../tests/integration_persistence.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_persistence-3d006d1b3c25a5f4.rmeta: crates/core/../../tests/integration_persistence.rs Cargo.toml

crates/core/../../tests/integration_persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
