/root/repo/target/debug/deps/fig04_shortlist-6941b1aa663064d0.d: crates/bench/src/bin/fig04_shortlist.rs

/root/repo/target/debug/deps/fig04_shortlist-6941b1aa663064d0: crates/bench/src/bin/fig04_shortlist.rs

crates/bench/src/bin/fig04_shortlist.rs:
