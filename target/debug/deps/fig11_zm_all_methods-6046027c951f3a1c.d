/root/repo/target/debug/deps/fig11_zm_all_methods-6046027c951f3a1c.d: crates/bench/src/bin/fig11_zm_all_methods.rs

/root/repo/target/debug/deps/fig11_zm_all_methods-6046027c951f3a1c: crates/bench/src/bin/fig11_zm_all_methods.rs

crates/bench/src/bin/fig11_zm_all_methods.rs:
