/root/repo/target/debug/deps/proptests-41fe874f1bf15434.d: crates/shortlist/tests/proptests.rs

/root/repo/target/debug/deps/proptests-41fe874f1bf15434: crates/shortlist/tests/proptests.rs

crates/shortlist/tests/proptests.rs:
