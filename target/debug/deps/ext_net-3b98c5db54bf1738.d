/root/repo/target/debug/deps/ext_net-3b98c5db54bf1738.d: crates/bench/src/bin/ext_net.rs

/root/repo/target/debug/deps/ext_net-3b98c5db54bf1738: crates/bench/src/bin/ext_net.rs

crates/bench/src/bin/ext_net.rs:
