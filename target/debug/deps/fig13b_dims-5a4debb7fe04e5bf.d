/root/repo/target/debug/deps/fig13b_dims-5a4debb7fe04e5bf.d: crates/bench/src/bin/fig13b_dims.rs Cargo.toml

/root/repo/target/debug/deps/libfig13b_dims-5a4debb7fe04e5bf.rmeta: crates/bench/src/bin/fig13b_dims.rs Cargo.toml

crates/bench/src/bin/fig13b_dims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
