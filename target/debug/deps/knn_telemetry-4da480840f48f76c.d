/root/repo/target/debug/deps/knn_telemetry-4da480840f48f76c.d: crates/telemetry/src/lib.rs

/root/repo/target/debug/deps/knn_telemetry-4da480840f48f76c: crates/telemetry/src/lib.rs

crates/telemetry/src/lib.rs:
