/root/repo/target/debug/deps/serde-18656d722d4129f0.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-18656d722d4129f0.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
