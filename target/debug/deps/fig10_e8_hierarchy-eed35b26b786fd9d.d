/root/repo/target/debug/deps/fig10_e8_hierarchy-eed35b26b786fd9d.d: crates/bench/src/bin/fig10_e8_hierarchy.rs

/root/repo/target/debug/deps/fig10_e8_hierarchy-eed35b26b786fd9d: crates/bench/src/bin/fig10_e8_hierarchy.rs

crates/bench/src/bin/fig10_e8_hierarchy.rs:
