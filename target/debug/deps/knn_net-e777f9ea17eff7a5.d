/root/repo/target/debug/deps/knn_net-e777f9ea17eff7a5.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

/root/repo/target/debug/deps/libknn_net-e777f9ea17eff7a5.rlib: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

/root/repo/target/debug/deps/libknn_net-e777f9ea17eff7a5.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/registry.rs:
crates/net/src/remote.rs:
crates/net/src/server.rs:
