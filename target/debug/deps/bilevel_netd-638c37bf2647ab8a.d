/root/repo/target/debug/deps/bilevel_netd-638c37bf2647ab8a.d: crates/net/src/bin/bilevel-netd.rs Cargo.toml

/root/repo/target/debug/deps/libbilevel_netd-638c37bf2647ab8a.rmeta: crates/net/src/bin/bilevel-netd.rs Cargo.toml

crates/net/src/bin/bilevel-netd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
