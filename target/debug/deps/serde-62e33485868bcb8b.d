/root/repo/target/debug/deps/serde-62e33485868bcb8b.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-62e33485868bcb8b.rlib: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-62e33485868bcb8b.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
