/root/repo/target/debug/deps/rptree_build-3fe90ef1a6908bfa.d: crates/bench/benches/rptree_build.rs Cargo.toml

/root/repo/target/debug/deps/librptree_build-3fe90ef1a6908bfa.rmeta: crates/bench/benches/rptree_build.rs Cargo.toml

crates/bench/benches/rptree_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
