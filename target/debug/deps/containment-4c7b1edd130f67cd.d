/root/repo/target/debug/deps/containment-4c7b1edd130f67cd.d: crates/serve/tests/containment.rs Cargo.toml

/root/repo/target/debug/deps/libcontainment-4c7b1edd130f67cd.rmeta: crates/serve/tests/containment.rs Cargo.toml

crates/serve/tests/containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
