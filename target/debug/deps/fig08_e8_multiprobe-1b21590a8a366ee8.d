/root/repo/target/debug/deps/fig08_e8_multiprobe-1b21590a8a366ee8.d: crates/bench/src/bin/fig08_e8_multiprobe.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_e8_multiprobe-1b21590a8a366ee8.rmeta: crates/bench/src/bin/fig08_e8_multiprobe.rs Cargo.toml

crates/bench/src/bin/fig08_e8_multiprobe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
