/root/repo/target/debug/deps/abl_lattice_density-e78e97d6b0f1d868.d: crates/bench/src/bin/abl_lattice_density.rs

/root/repo/target/debug/deps/abl_lattice_density-e78e97d6b0f1d868: crates/bench/src/bin/abl_lattice_density.rs

crates/bench/src/bin/abl_lattice_density.rs:
