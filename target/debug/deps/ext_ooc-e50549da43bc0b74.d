/root/repo/target/debug/deps/ext_ooc-e50549da43bc0b74.d: crates/bench/src/bin/ext_ooc.rs Cargo.toml

/root/repo/target/debug/deps/libext_ooc-e50549da43bc0b74.rmeta: crates/bench/src/bin/ext_ooc.rs Cargo.toml

crates/bench/src/bin/ext_ooc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
