/root/repo/target/debug/deps/lsh-8316c76f27605539.d: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/level2.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/debug/deps/liblsh-8316c76f27605539.rlib: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/level2.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/debug/deps/liblsh-8316c76f27605539.rmeta: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/level2.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

crates/lsh/src/lib.rs:
crates/lsh/src/adaptive.rs:
crates/lsh/src/family.rs:
crates/lsh/src/forest.rs:
crates/lsh/src/level2.rs:
crates/lsh/src/multiprobe.rs:
crates/lsh/src/table.rs:
crates/lsh/src/tuning.rs:
