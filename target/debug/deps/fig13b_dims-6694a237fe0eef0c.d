/root/repo/target/debug/deps/fig13b_dims-6694a237fe0eef0c.d: crates/bench/src/bin/fig13b_dims.rs

/root/repo/target/debug/deps/fig13b_dims-6694a237fe0eef0c: crates/bench/src/bin/fig13b_dims.rs

crates/bench/src/bin/fig13b_dims.rs:
