/root/repo/target/debug/deps/bench-0fb8072aa0da1f7c.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libbench-0fb8072aa0da1f7c.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/data.rs:
crates/bench/src/figures.rs:
crates/bench/src/methods.rs:
crates/bench/src/record.rs:
crates/bench/src/report.rs:
crates/bench/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
