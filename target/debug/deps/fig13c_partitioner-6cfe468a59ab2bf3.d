/root/repo/target/debug/deps/fig13c_partitioner-6cfe468a59ab2bf3.d: crates/bench/src/bin/fig13c_partitioner.rs Cargo.toml

/root/repo/target/debug/deps/libfig13c_partitioner-6cfe468a59ab2bf3.rmeta: crates/bench/src/bin/fig13c_partitioner.rs Cargo.toml

crates/bench/src/bin/fig13c_partitioner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
