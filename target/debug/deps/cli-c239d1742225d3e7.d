/root/repo/target/debug/deps/cli-c239d1742225d3e7.d: crates/core/tests/cli.rs

/root/repo/target/debug/deps/cli-c239d1742225d3e7: crates/core/tests/cli.rs

crates/core/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_bilevel=/root/repo/target/debug/bilevel
