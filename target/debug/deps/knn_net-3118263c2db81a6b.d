/root/repo/target/debug/deps/knn_net-3118263c2db81a6b.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libknn_net-3118263c2db81a6b.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/registry.rs:
crates/net/src/remote.rs:
crates/net/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
