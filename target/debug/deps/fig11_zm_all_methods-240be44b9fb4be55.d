/root/repo/target/debug/deps/fig11_zm_all_methods-240be44b9fb4be55.d: crates/bench/src/bin/fig11_zm_all_methods.rs

/root/repo/target/debug/deps/fig11_zm_all_methods-240be44b9fb4be55: crates/bench/src/bin/fig11_zm_all_methods.rs

crates/bench/src/bin/fig11_zm_all_methods.rs:
