/root/repo/target/debug/deps/ext_adaptive-c6a9c57d31e50625.d: crates/bench/src/bin/ext_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libext_adaptive-c6a9c57d31e50625.rmeta: crates/bench/src/bin/ext_adaptive.rs Cargo.toml

crates/bench/src/bin/ext_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
