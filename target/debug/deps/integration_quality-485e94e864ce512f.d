/root/repo/target/debug/deps/integration_quality-485e94e864ce512f.d: crates/core/../../tests/integration_quality.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_quality-485e94e864ce512f.rmeta: crates/core/../../tests/integration_quality.rs Cargo.toml

crates/core/../../tests/integration_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
