/root/repo/target/debug/deps/fig10_e8_hierarchy-c3bdcc928a3ba234.d: crates/bench/src/bin/fig10_e8_hierarchy.rs

/root/repo/target/debug/deps/fig10_e8_hierarchy-c3bdcc928a3ba234: crates/bench/src/bin/fig10_e8_hierarchy.rs

crates/bench/src/bin/fig10_e8_hierarchy.rs:
