/root/repo/target/debug/deps/fig08_e8_multiprobe-399c95a704a1a3dd.d: crates/bench/src/bin/fig08_e8_multiprobe.rs

/root/repo/target/debug/deps/fig08_e8_multiprobe-399c95a704a1a3dd: crates/bench/src/bin/fig08_e8_multiprobe.rs

crates/bench/src/bin/fig08_e8_multiprobe.rs:
