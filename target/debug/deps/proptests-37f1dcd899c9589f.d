/root/repo/target/debug/deps/proptests-37f1dcd899c9589f.d: crates/rptree/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-37f1dcd899c9589f.rmeta: crates/rptree/tests/proptests.rs Cargo.toml

crates/rptree/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
