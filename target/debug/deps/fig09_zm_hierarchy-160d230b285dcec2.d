/root/repo/target/debug/deps/fig09_zm_hierarchy-160d230b285dcec2.d: crates/bench/src/bin/fig09_zm_hierarchy.rs

/root/repo/target/debug/deps/fig09_zm_hierarchy-160d230b285dcec2: crates/bench/src/bin/fig09_zm_hierarchy.rs

crates/bench/src/bin/fig09_zm_hierarchy.rs:
