/root/repo/target/debug/deps/serde_json-fef4cf001232943a.d: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-fef4cf001232943a.rlib: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-fef4cf001232943a.rmeta: /tmp/vendor/serde_json/src/lib.rs

/tmp/vendor/serde_json/src/lib.rs:
