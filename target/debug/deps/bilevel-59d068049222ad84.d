/root/repo/target/debug/deps/bilevel-59d068049222ad84.d: crates/core/src/bin/bilevel.rs Cargo.toml

/root/repo/target/debug/deps/libbilevel-59d068049222ad84.rmeta: crates/core/src/bin/bilevel.rs Cargo.toml

crates/core/src/bin/bilevel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
