/root/repo/target/debug/deps/mutation-f2a1d3344ae256d3.d: crates/serve/tests/mutation.rs

/root/repo/target/debug/deps/mutation-f2a1d3344ae256d3: crates/serve/tests/mutation.rs

crates/serve/tests/mutation.rs:

# env-dep:CARGO_BIN_EXE_bilevel-serve=/root/repo/target/debug/bilevel-serve
