/root/repo/target/debug/deps/fig13c_partitioner-a6f9d22051fabd3e.d: crates/bench/src/bin/fig13c_partitioner.rs

/root/repo/target/debug/deps/fig13c_partitioner-a6f9d22051fabd3e: crates/bench/src/bin/fig13c_partitioner.rs

crates/bench/src/bin/fig13c_partitioner.rs:
