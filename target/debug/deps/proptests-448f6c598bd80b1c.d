/root/repo/target/debug/deps/proptests-448f6c598bd80b1c.d: crates/rptree/tests/proptests.rs

/root/repo/target/debug/deps/proptests-448f6c598bd80b1c: crates/rptree/tests/proptests.rs

crates/rptree/tests/proptests.rs:
