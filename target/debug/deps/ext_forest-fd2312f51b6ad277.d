/root/repo/target/debug/deps/ext_forest-fd2312f51b6ad277.d: crates/bench/src/bin/ext_forest.rs Cargo.toml

/root/repo/target/debug/deps/libext_forest-fd2312f51b6ad277.rmeta: crates/bench/src/bin/ext_forest.rs Cargo.toml

crates/bench/src/bin/ext_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
