/root/repo/target/debug/deps/proptests-66557f630c37f560.d: crates/metrics/tests/proptests.rs

/root/repo/target/debug/deps/proptests-66557f630c37f560: crates/metrics/tests/proptests.rs

crates/metrics/tests/proptests.rs:
