/root/repo/target/debug/deps/lattice-c046901115d65f41.d: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/debug/deps/liblattice-c046901115d65f41.rlib: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/debug/deps/liblattice-c046901115d65f41.rmeta: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

crates/lattice/src/lib.rs:
crates/lattice/src/density.rs:
crates/lattice/src/e8.rs:
crates/lattice/src/e8_hierarchy.rs:
crates/lattice/src/morton.rs:
crates/lattice/src/zm_hierarchy.rs:
