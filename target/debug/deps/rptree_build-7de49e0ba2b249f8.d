/root/repo/target/debug/deps/rptree_build-7de49e0ba2b249f8.d: crates/bench/benches/rptree_build.rs Cargo.toml

/root/repo/target/debug/deps/librptree_build-7de49e0ba2b249f8.rmeta: crates/bench/benches/rptree_build.rs Cargo.toml

crates/bench/benches/rptree_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
