/root/repo/target/debug/deps/shortlist-96a0d23fa1b787c6.d: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/debug/deps/libshortlist-96a0d23fa1b787c6.rlib: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/debug/deps/libshortlist-96a0d23fa1b787c6.rmeta: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

crates/shortlist/src/lib.rs:
crates/shortlist/src/engine.rs:
crates/shortlist/src/primitives.rs:
