/root/repo/target/debug/deps/fig10_e8_hierarchy-35976e07691861ae.d: crates/bench/src/bin/fig10_e8_hierarchy.rs

/root/repo/target/debug/deps/fig10_e8_hierarchy-35976e07691861ae: crates/bench/src/bin/fig10_e8_hierarchy.rs

crates/bench/src/bin/fig10_e8_hierarchy.rs:
