/root/repo/target/debug/deps/serde_json-3fb25abe5ad3d4d8.d: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3fb25abe5ad3d4d8.rlib: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3fb25abe5ad3d4d8.rmeta: /tmp/vendor/serde_json/src/lib.rs

/tmp/vendor/serde_json/src/lib.rs:
