/root/repo/target/debug/deps/cuckoo-c1c2efd7e881463b.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libcuckoo-c1c2efd7e881463b.rmeta: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs Cargo.toml

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
