/root/repo/target/debug/deps/cuckoo-1262f29ad850526a.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/debug/deps/libcuckoo-1262f29ad850526a.rmeta: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
