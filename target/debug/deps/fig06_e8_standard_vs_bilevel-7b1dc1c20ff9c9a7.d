/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-7b1dc1c20ff9c9a7.d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_e8_standard_vs_bilevel-7b1dc1c20ff9c9a7.rmeta: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs Cargo.toml

crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
