/root/repo/target/debug/deps/serde_derive-5d0167cf29d0f6cf.d: /tmp/vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-5d0167cf29d0f6cf.so: /tmp/vendor/serde_derive/src/lib.rs

/tmp/vendor/serde_derive/src/lib.rs:
