/root/repo/target/debug/deps/bilevel-11a113c4203a5abe.d: crates/core/src/bin/bilevel.rs

/root/repo/target/debug/deps/bilevel-11a113c4203a5abe: crates/core/src/bin/bilevel.rs

crates/core/src/bin/bilevel.rs:
