/root/repo/target/debug/deps/proptests-b0ac8057b4336723.d: crates/lsh/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b0ac8057b4336723: crates/lsh/tests/proptests.rs

crates/lsh/tests/proptests.rs:
