/root/repo/target/debug/deps/fig10_e8_hierarchy-c2ab60753b98fbde.d: crates/bench/src/bin/fig10_e8_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_e8_hierarchy-c2ab60753b98fbde.rmeta: crates/bench/src/bin/fig10_e8_hierarchy.rs Cargo.toml

crates/bench/src/bin/fig10_e8_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
