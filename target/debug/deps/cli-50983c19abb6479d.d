/root/repo/target/debug/deps/cli-50983c19abb6479d.d: crates/serve/tests/cli.rs

/root/repo/target/debug/deps/cli-50983c19abb6479d: crates/serve/tests/cli.rs

crates/serve/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_bilevel-serve=/root/repo/target/debug/bilevel-serve
