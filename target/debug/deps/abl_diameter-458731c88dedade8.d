/root/repo/target/debug/deps/abl_diameter-458731c88dedade8.d: crates/bench/src/bin/abl_diameter.rs

/root/repo/target/debug/deps/abl_diameter-458731c88dedade8: crates/bench/src/bin/abl_diameter.rs

crates/bench/src/bin/abl_diameter.rs:
