/root/repo/target/debug/deps/lattice-349e581017d6488c.d: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/debug/deps/lattice-349e581017d6488c: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

crates/lattice/src/lib.rs:
crates/lattice/src/density.rs:
crates/lattice/src/e8.rs:
crates/lattice/src/e8_hierarchy.rs:
crates/lattice/src/morton.rs:
crates/lattice/src/zm_hierarchy.rs:
