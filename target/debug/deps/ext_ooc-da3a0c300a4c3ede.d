/root/repo/target/debug/deps/ext_ooc-da3a0c300a4c3ede.d: crates/bench/src/bin/ext_ooc.rs Cargo.toml

/root/repo/target/debug/deps/libext_ooc-da3a0c300a4c3ede.rmeta: crates/bench/src/bin/ext_ooc.rs Cargo.toml

crates/bench/src/bin/ext_ooc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
