/root/repo/target/debug/deps/proptests-8a57138ea55fc793.d: crates/cuckoo/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8a57138ea55fc793: crates/cuckoo/tests/proptests.rs

crates/cuckoo/tests/proptests.rs:
