/root/repo/target/debug/deps/validate_bench-125ee6cd66f27549.d: crates/bench/src/bin/validate_bench.rs

/root/repo/target/debug/deps/validate_bench-125ee6cd66f27549: crates/bench/src/bin/validate_bench.rs

crates/bench/src/bin/validate_bench.rs:
