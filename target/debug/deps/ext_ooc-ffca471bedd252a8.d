/root/repo/target/debug/deps/ext_ooc-ffca471bedd252a8.d: crates/bench/src/bin/ext_ooc.rs

/root/repo/target/debug/deps/ext_ooc-ffca471bedd252a8: crates/bench/src/bin/ext_ooc.rs

crates/bench/src/bin/ext_ooc.rs:
