/root/repo/target/debug/deps/rptree-b1f2cc727885a032.d: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/debug/deps/librptree-b1f2cc727885a032.rlib: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/debug/deps/librptree-b1f2cc727885a032.rmeta: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

crates/rptree/src/lib.rs:
crates/rptree/src/diameter.rs:
crates/rptree/src/kdknn.rs:
crates/rptree/src/kdpart.rs:
crates/rptree/src/kmeans.rs:
crates/rptree/src/partition.rs:
crates/rptree/src/tree.rs:
