/root/repo/target/debug/deps/bilevel_serve-d113bbdfa36cf8f7.d: crates/serve/src/bin/bilevel-serve.rs

/root/repo/target/debug/deps/bilevel_serve-d113bbdfa36cf8f7: crates/serve/src/bin/bilevel-serve.rs

crates/serve/src/bin/bilevel-serve.rs:
