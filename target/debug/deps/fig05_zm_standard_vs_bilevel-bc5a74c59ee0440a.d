/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-bc5a74c59ee0440a.d: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-bc5a74c59ee0440a: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs:
