/root/repo/target/debug/deps/fig13a_groups-c2c8d1fb6c8026be.d: crates/bench/src/bin/fig13a_groups.rs

/root/repo/target/debug/deps/fig13a_groups-c2c8d1fb6c8026be: crates/bench/src/bin/fig13a_groups.rs

crates/bench/src/bin/fig13a_groups.rs:
