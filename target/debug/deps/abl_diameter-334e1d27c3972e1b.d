/root/repo/target/debug/deps/abl_diameter-334e1d27c3972e1b.d: crates/bench/src/bin/abl_diameter.rs

/root/repo/target/debug/deps/abl_diameter-334e1d27c3972e1b: crates/bench/src/bin/abl_diameter.rs

crates/bench/src/bin/abl_diameter.rs:
