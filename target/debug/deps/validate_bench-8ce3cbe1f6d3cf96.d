/root/repo/target/debug/deps/validate_bench-8ce3cbe1f6d3cf96.d: crates/bench/src/bin/validate_bench.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate_bench-8ce3cbe1f6d3cf96.rmeta: crates/bench/src/bin/validate_bench.rs Cargo.toml

crates/bench/src/bin/validate_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
