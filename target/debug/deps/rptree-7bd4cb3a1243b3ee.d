/root/repo/target/debug/deps/rptree-7bd4cb3a1243b3ee.d: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/debug/deps/librptree-7bd4cb3a1243b3ee.rlib: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/debug/deps/librptree-7bd4cb3a1243b3ee.rmeta: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

crates/rptree/src/lib.rs:
crates/rptree/src/diameter.rs:
crates/rptree/src/kdknn.rs:
crates/rptree/src/kdpart.rs:
crates/rptree/src/kmeans.rs:
crates/rptree/src/partition.rs:
crates/rptree/src/tree.rs:
