/root/repo/target/debug/deps/proptest-1b888e75e3162eee.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-1b888e75e3162eee.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
