/root/repo/target/debug/deps/fig12_e8_all_methods-6148b82ba88ff65c.d: crates/bench/src/bin/fig12_e8_all_methods.rs

/root/repo/target/debug/deps/fig12_e8_all_methods-6148b82ba88ff65c: crates/bench/src/bin/fig12_e8_all_methods.rs

crates/bench/src/bin/fig12_e8_all_methods.rs:
