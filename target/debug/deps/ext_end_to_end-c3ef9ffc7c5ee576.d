/root/repo/target/debug/deps/ext_end_to_end-c3ef9ffc7c5ee576.d: crates/bench/src/bin/ext_end_to_end.rs

/root/repo/target/debug/deps/ext_end_to_end-c3ef9ffc7c5ee576: crates/bench/src/bin/ext_end_to_end.rs

crates/bench/src/bin/ext_end_to_end.rs:
