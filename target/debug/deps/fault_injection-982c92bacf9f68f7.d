/root/repo/target/debug/deps/fault_injection-982c92bacf9f68f7.d: crates/core/tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-982c92bacf9f68f7: crates/core/tests/fault_injection.rs

crates/core/tests/fault_injection.rs:
