/root/repo/target/debug/deps/abl_curse-5b65abda1ba94416.d: crates/bench/src/bin/abl_curse.rs

/root/repo/target/debug/deps/abl_curse-5b65abda1ba94416: crates/bench/src/bin/abl_curse.rs

crates/bench/src/bin/abl_curse.rs:
