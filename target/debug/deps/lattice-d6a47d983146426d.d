/root/repo/target/debug/deps/lattice-d6a47d983146426d.d: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/debug/deps/liblattice-d6a47d983146426d.rmeta: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

crates/lattice/src/lib.rs:
crates/lattice/src/density.rs:
crates/lattice/src/e8.rs:
crates/lattice/src/e8_hierarchy.rs:
crates/lattice/src/morton.rs:
crates/lattice/src/zm_hierarchy.rs:
