/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-275eff03a4208104.d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-275eff03a4208104: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs:
