/root/repo/target/debug/deps/ext_end_to_end-9837897504c5e4bc.d: crates/bench/src/bin/ext_end_to_end.rs

/root/repo/target/debug/deps/ext_end_to_end-9837897504c5e4bc: crates/bench/src/bin/ext_end_to_end.rs

crates/bench/src/bin/ext_end_to_end.rs:
