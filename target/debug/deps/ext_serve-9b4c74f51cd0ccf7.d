/root/repo/target/debug/deps/ext_serve-9b4c74f51cd0ccf7.d: crates/bench/src/bin/ext_serve.rs Cargo.toml

/root/repo/target/debug/deps/libext_serve-9b4c74f51cd0ccf7.rmeta: crates/bench/src/bin/ext_serve.rs Cargo.toml

crates/bench/src/bin/ext_serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
