/root/repo/target/debug/deps/fault_injection-6adfedb1cd516956.d: crates/core/tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-6adfedb1cd516956: crates/core/tests/fault_injection.rs

crates/core/tests/fault_injection.rs:
