/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-fb1797c91ad00fb3.d: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-fb1797c91ad00fb3: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs:
