/root/repo/target/debug/deps/crossbeam-36aeadbc7b959ea0.d: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-36aeadbc7b959ea0.rmeta: /tmp/vendor/crossbeam/src/lib.rs

/tmp/vendor/crossbeam/src/lib.rs:
