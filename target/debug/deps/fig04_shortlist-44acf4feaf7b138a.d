/root/repo/target/debug/deps/fig04_shortlist-44acf4feaf7b138a.d: crates/bench/src/bin/fig04_shortlist.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_shortlist-44acf4feaf7b138a.rmeta: crates/bench/src/bin/fig04_shortlist.rs Cargo.toml

crates/bench/src/bin/fig04_shortlist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
