/root/repo/target/debug/deps/bench-37c197bc64a194a9.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libbench-37c197bc64a194a9.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libbench-37c197bc64a194a9.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/data.rs:
crates/bench/src/figures.rs:
crates/bench/src/methods.rs:
crates/bench/src/record.rs:
crates/bench/src/report.rs:
crates/bench/src/sweep.rs:
