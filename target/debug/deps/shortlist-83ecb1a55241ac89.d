/root/repo/target/debug/deps/shortlist-83ecb1a55241ac89.d: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/debug/deps/shortlist-83ecb1a55241ac89: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

crates/shortlist/src/lib.rs:
crates/shortlist/src/engine.rs:
crates/shortlist/src/primitives.rs:
