/root/repo/target/debug/deps/fig13b_dims-7c21889dffc94cf2.d: crates/bench/src/bin/fig13b_dims.rs

/root/repo/target/debug/deps/fig13b_dims-7c21889dffc94cf2: crates/bench/src/bin/fig13b_dims.rs

crates/bench/src/bin/fig13b_dims.rs:
