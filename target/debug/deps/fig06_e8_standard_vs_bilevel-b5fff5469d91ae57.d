/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-b5fff5469d91ae57.d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

/root/repo/target/debug/deps/fig06_e8_standard_vs_bilevel-b5fff5469d91ae57: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs:
