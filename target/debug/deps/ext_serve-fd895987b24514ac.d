/root/repo/target/debug/deps/ext_serve-fd895987b24514ac.d: crates/bench/src/bin/ext_serve.rs Cargo.toml

/root/repo/target/debug/deps/libext_serve-fd895987b24514ac.rmeta: crates/bench/src/bin/ext_serve.rs Cargo.toml

crates/bench/src/bin/ext_serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
