/root/repo/target/debug/deps/abl_lattice_density-8d4d4fdc9a9157dc.d: crates/bench/src/bin/abl_lattice_density.rs

/root/repo/target/debug/deps/abl_lattice_density-8d4d4fdc9a9157dc: crates/bench/src/bin/abl_lattice_density.rs

crates/bench/src/bin/abl_lattice_density.rs:
