/root/repo/target/debug/deps/abl_width_mode-3bebe1b58c0ea95a.d: crates/bench/src/bin/abl_width_mode.rs

/root/repo/target/debug/deps/abl_width_mode-3bebe1b58c0ea95a: crates/bench/src/bin/abl_width_mode.rs

crates/bench/src/bin/abl_width_mode.rs:
