/root/repo/target/debug/deps/fig07_zm_multiprobe-400768954b9bfd11.d: crates/bench/src/bin/fig07_zm_multiprobe.rs

/root/repo/target/debug/deps/fig07_zm_multiprobe-400768954b9bfd11: crates/bench/src/bin/fig07_zm_multiprobe.rs

crates/bench/src/bin/fig07_zm_multiprobe.rs:
