/root/repo/target/debug/deps/fig07_zm_multiprobe-881ec2fdd186cbb1.d: crates/bench/src/bin/fig07_zm_multiprobe.rs

/root/repo/target/debug/deps/fig07_zm_multiprobe-881ec2fdd186cbb1: crates/bench/src/bin/fig07_zm_multiprobe.rs

crates/bench/src/bin/fig07_zm_multiprobe.rs:
