/root/repo/target/debug/deps/fig10_e8_hierarchy-3e5cda1ac1359aeb.d: crates/bench/src/bin/fig10_e8_hierarchy.rs

/root/repo/target/debug/deps/fig10_e8_hierarchy-3e5cda1ac1359aeb: crates/bench/src/bin/fig10_e8_hierarchy.rs

crates/bench/src/bin/fig10_e8_hierarchy.rs:
