/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-2459ab17229e82a0.d: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-2459ab17229e82a0: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs:
