/root/repo/target/debug/deps/cuckoo-0eaf398fe83475fa.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/debug/deps/libcuckoo-0eaf398fe83475fa.rlib: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/debug/deps/libcuckoo-0eaf398fe83475fa.rmeta: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
