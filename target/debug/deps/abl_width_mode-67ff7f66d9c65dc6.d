/root/repo/target/debug/deps/abl_width_mode-67ff7f66d9c65dc6.d: crates/bench/src/bin/abl_width_mode.rs Cargo.toml

/root/repo/target/debug/deps/libabl_width_mode-67ff7f66d9c65dc6.rmeta: crates/bench/src/bin/abl_width_mode.rs Cargo.toml

crates/bench/src/bin/abl_width_mode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
