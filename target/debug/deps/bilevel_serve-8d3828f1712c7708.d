/root/repo/target/debug/deps/bilevel_serve-8d3828f1712c7708.d: crates/serve/src/bin/bilevel-serve.rs Cargo.toml

/root/repo/target/debug/deps/libbilevel_serve-8d3828f1712c7708.rmeta: crates/serve/src/bin/bilevel-serve.rs Cargo.toml

crates/serve/src/bin/bilevel-serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
