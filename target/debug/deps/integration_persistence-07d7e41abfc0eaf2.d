/root/repo/target/debug/deps/integration_persistence-07d7e41abfc0eaf2.d: crates/core/../../tests/integration_persistence.rs

/root/repo/target/debug/deps/integration_persistence-07d7e41abfc0eaf2: crates/core/../../tests/integration_persistence.rs

crates/core/../../tests/integration_persistence.rs:
