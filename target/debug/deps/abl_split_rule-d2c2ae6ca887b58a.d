/root/repo/target/debug/deps/abl_split_rule-d2c2ae6ca887b58a.d: crates/bench/src/bin/abl_split_rule.rs Cargo.toml

/root/repo/target/debug/deps/libabl_split_rule-d2c2ae6ca887b58a.rmeta: crates/bench/src/bin/abl_split_rule.rs Cargo.toml

crates/bench/src/bin/abl_split_rule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
