/root/repo/target/debug/deps/knn_serve-e6bfd3dc93a1113a.d: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

/root/repo/target/debug/deps/knn_serve-e6bfd3dc93a1113a: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

crates/serve/src/lib.rs:
crates/serve/src/backend.rs:
crates/serve/src/fanout.rs:
crates/serve/src/mutable.rs:
crates/serve/src/protocol.rs:
crates/serve/src/service.rs:
crates/serve/src/stats.rs:
