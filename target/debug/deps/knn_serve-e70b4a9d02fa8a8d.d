/root/repo/target/debug/deps/knn_serve-e70b4a9d02fa8a8d.d: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

/root/repo/target/debug/deps/libknn_serve-e70b4a9d02fa8a8d.rlib: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

/root/repo/target/debug/deps/libknn_serve-e70b4a9d02fa8a8d.rmeta: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

crates/serve/src/lib.rs:
crates/serve/src/backend.rs:
crates/serve/src/fanout.rs:
crates/serve/src/mutable.rs:
crates/serve/src/protocol.rs:
crates/serve/src/service.rs:
crates/serve/src/stats.rs:
