/root/repo/target/debug/deps/shortlist-9bf2934b141ddb15.d: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/debug/deps/shortlist-9bf2934b141ddb15: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

crates/shortlist/src/lib.rs:
crates/shortlist/src/engine.rs:
crates/shortlist/src/primitives.rs:
