/root/repo/target/debug/deps/lattice-342aa5d4c8787b01.d: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/debug/deps/liblattice-342aa5d4c8787b01.rlib: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/debug/deps/liblattice-342aa5d4c8787b01.rmeta: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

crates/lattice/src/lib.rs:
crates/lattice/src/density.rs:
crates/lattice/src/e8.rs:
crates/lattice/src/e8_hierarchy.rs:
crates/lattice/src/morton.rs:
crates/lattice/src/zm_hierarchy.rs:
