/root/repo/target/debug/deps/bilevel_serve-5b2555ce4fbe6128.d: crates/serve/src/bin/bilevel-serve.rs Cargo.toml

/root/repo/target/debug/deps/libbilevel_serve-5b2555ce4fbe6128.rmeta: crates/serve/src/bin/bilevel-serve.rs Cargo.toml

crates/serve/src/bin/bilevel-serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
