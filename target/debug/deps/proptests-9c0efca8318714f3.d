/root/repo/target/debug/deps/proptests-9c0efca8318714f3.d: crates/cuckoo/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9c0efca8318714f3.rmeta: crates/cuckoo/tests/proptests.rs Cargo.toml

crates/cuckoo/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
