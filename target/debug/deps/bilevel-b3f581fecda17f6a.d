/root/repo/target/debug/deps/bilevel-b3f581fecda17f6a.d: crates/core/src/bin/bilevel.rs

/root/repo/target/debug/deps/bilevel-b3f581fecda17f6a: crates/core/src/bin/bilevel.rs

crates/core/src/bin/bilevel.rs:
