/root/repo/target/debug/deps/knn_net-9f7aae4aed875d57.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

/root/repo/target/debug/deps/knn_net-9f7aae4aed875d57: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/registry.rs:
crates/net/src/remote.rs:
crates/net/src/server.rs:
