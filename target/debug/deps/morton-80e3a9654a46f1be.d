/root/repo/target/debug/deps/morton-80e3a9654a46f1be.d: crates/bench/benches/morton.rs Cargo.toml

/root/repo/target/debug/deps/libmorton-80e3a9654a46f1be.rmeta: crates/bench/benches/morton.rs Cargo.toml

crates/bench/benches/morton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
