/root/repo/target/debug/deps/serde-6749ba6057c70d9b.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6749ba6057c70d9b.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6749ba6057c70d9b.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
