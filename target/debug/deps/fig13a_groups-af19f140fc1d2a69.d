/root/repo/target/debug/deps/fig13a_groups-af19f140fc1d2a69.d: crates/bench/src/bin/fig13a_groups.rs

/root/repo/target/debug/deps/fig13a_groups-af19f140fc1d2a69: crates/bench/src/bin/fig13a_groups.rs

crates/bench/src/bin/fig13a_groups.rs:
