/root/repo/target/debug/deps/proptest-b90558672af4988f.d: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-b90558672af4988f.rlib: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-b90558672af4988f.rmeta: /tmp/vendor/proptest/src/lib.rs

/tmp/vendor/proptest/src/lib.rs:
