/root/repo/target/debug/deps/abl_width_mode-b3de16fd69bc4da0.d: crates/bench/src/bin/abl_width_mode.rs

/root/repo/target/debug/deps/abl_width_mode-b3de16fd69bc4da0: crates/bench/src/bin/abl_width_mode.rs

crates/bench/src/bin/abl_width_mode.rs:
