/root/repo/target/debug/deps/abl_split_rule-b2dbbb52e00077ba.d: crates/bench/src/bin/abl_split_rule.rs

/root/repo/target/debug/deps/abl_split_rule-b2dbbb52e00077ba: crates/bench/src/bin/abl_split_rule.rs

crates/bench/src/bin/abl_split_rule.rs:
