/root/repo/target/debug/deps/rand-aef5a024eae95fcd.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-aef5a024eae95fcd.rmeta: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
