/root/repo/target/debug/deps/ext_serve-805828c5effc4bc5.d: crates/bench/src/bin/ext_serve.rs

/root/repo/target/debug/deps/ext_serve-805828c5effc4bc5: crates/bench/src/bin/ext_serve.rs

crates/bench/src/bin/ext_serve.rs:
