/root/repo/target/debug/deps/fig11_zm_all_methods-f38a6999d82558aa.d: crates/bench/src/bin/fig11_zm_all_methods.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_zm_all_methods-f38a6999d82558aa.rmeta: crates/bench/src/bin/fig11_zm_all_methods.rs Cargo.toml

crates/bench/src/bin/fig11_zm_all_methods.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
