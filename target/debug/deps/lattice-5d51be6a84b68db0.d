/root/repo/target/debug/deps/lattice-5d51be6a84b68db0.d: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/debug/deps/liblattice-5d51be6a84b68db0.rmeta: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

crates/lattice/src/lib.rs:
crates/lattice/src/density.rs:
crates/lattice/src/e8.rs:
crates/lattice/src/e8_hierarchy.rs:
crates/lattice/src/morton.rs:
crates/lattice/src/zm_hierarchy.rs:
