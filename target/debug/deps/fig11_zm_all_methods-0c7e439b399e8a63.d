/root/repo/target/debug/deps/fig11_zm_all_methods-0c7e439b399e8a63.d: crates/bench/src/bin/fig11_zm_all_methods.rs

/root/repo/target/debug/deps/fig11_zm_all_methods-0c7e439b399e8a63: crates/bench/src/bin/fig11_zm_all_methods.rs

crates/bench/src/bin/fig11_zm_all_methods.rs:
