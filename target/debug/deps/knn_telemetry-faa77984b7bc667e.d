/root/repo/target/debug/deps/knn_telemetry-faa77984b7bc667e.d: crates/telemetry/src/lib.rs

/root/repo/target/debug/deps/libknn_telemetry-faa77984b7bc667e.rmeta: crates/telemetry/src/lib.rs

crates/telemetry/src/lib.rs:
