/root/repo/target/debug/deps/ext_adaptive-4271dd18f7f7a135.d: crates/bench/src/bin/ext_adaptive.rs

/root/repo/target/debug/deps/ext_adaptive-4271dd18f7f7a135: crates/bench/src/bin/ext_adaptive.rs

crates/bench/src/bin/ext_adaptive.rs:
