/root/repo/target/debug/deps/bilevel_netd-640d15dea600148d.d: crates/net/src/bin/bilevel-netd.rs Cargo.toml

/root/repo/target/debug/deps/libbilevel_netd-640d15dea600148d.rmeta: crates/net/src/bin/bilevel-netd.rs Cargo.toml

crates/net/src/bin/bilevel-netd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
