/root/repo/target/debug/deps/integration_quality-1f9b60223032a9ea.d: crates/core/../../tests/integration_quality.rs

/root/repo/target/debug/deps/integration_quality-1f9b60223032a9ea: crates/core/../../tests/integration_quality.rs

crates/core/../../tests/integration_quality.rs:
