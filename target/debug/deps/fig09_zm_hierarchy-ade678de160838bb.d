/root/repo/target/debug/deps/fig09_zm_hierarchy-ade678de160838bb.d: crates/bench/src/bin/fig09_zm_hierarchy.rs

/root/repo/target/debug/deps/fig09_zm_hierarchy-ade678de160838bb: crates/bench/src/bin/fig09_zm_hierarchy.rs

crates/bench/src/bin/fig09_zm_hierarchy.rs:
