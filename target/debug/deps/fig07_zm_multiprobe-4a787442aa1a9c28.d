/root/repo/target/debug/deps/fig07_zm_multiprobe-4a787442aa1a9c28.d: crates/bench/src/bin/fig07_zm_multiprobe.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_zm_multiprobe-4a787442aa1a9c28.rmeta: crates/bench/src/bin/fig07_zm_multiprobe.rs Cargo.toml

crates/bench/src/bin/fig07_zm_multiprobe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
