/root/repo/target/debug/deps/proptests-352e9e641c8737cb.d: crates/cuckoo/tests/proptests.rs

/root/repo/target/debug/deps/proptests-352e9e641c8737cb: crates/cuckoo/tests/proptests.rs

crates/cuckoo/tests/proptests.rs:
