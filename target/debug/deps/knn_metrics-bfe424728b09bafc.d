/root/repo/target/debug/deps/knn_metrics-bfe424728b09bafc.d: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/knn_metrics-bfe424728b09bafc: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/curve.rs:
crates/metrics/src/quality.rs:
crates/metrics/src/significance.rs:
crates/metrics/src/stats.rs:
