/root/repo/target/debug/deps/proptests-4986be7f09d2e6ee.d: crates/rptree/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-4986be7f09d2e6ee.rmeta: crates/rptree/tests/proptests.rs Cargo.toml

crates/rptree/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
