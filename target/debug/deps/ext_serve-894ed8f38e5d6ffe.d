/root/repo/target/debug/deps/ext_serve-894ed8f38e5d6ffe.d: crates/bench/src/bin/ext_serve.rs

/root/repo/target/debug/deps/ext_serve-894ed8f38e5d6ffe: crates/bench/src/bin/ext_serve.rs

crates/bench/src/bin/ext_serve.rs:
