/root/repo/target/debug/deps/containment-15186dd79fc6a332.d: crates/serve/tests/containment.rs Cargo.toml

/root/repo/target/debug/deps/libcontainment-15186dd79fc6a332.rmeta: crates/serve/tests/containment.rs Cargo.toml

crates/serve/tests/containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
