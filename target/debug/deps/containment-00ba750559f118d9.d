/root/repo/target/debug/deps/containment-00ba750559f118d9.d: crates/serve/tests/containment.rs

/root/repo/target/debug/deps/containment-00ba750559f118d9: crates/serve/tests/containment.rs

crates/serve/tests/containment.rs:
