/root/repo/target/debug/deps/bilevel_serve-99b493139418c2a6.d: crates/serve/src/bin/bilevel-serve.rs Cargo.toml

/root/repo/target/debug/deps/libbilevel_serve-99b493139418c2a6.rmeta: crates/serve/src/bin/bilevel-serve.rs Cargo.toml

crates/serve/src/bin/bilevel-serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
