/root/repo/target/debug/deps/serde-e0735101b22b9616.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e0735101b22b9616.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
