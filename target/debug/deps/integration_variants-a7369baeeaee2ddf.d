/root/repo/target/debug/deps/integration_variants-a7369baeeaee2ddf.d: crates/core/../../tests/integration_variants.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_variants-a7369baeeaee2ddf.rmeta: crates/core/../../tests/integration_variants.rs Cargo.toml

crates/core/../../tests/integration_variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
