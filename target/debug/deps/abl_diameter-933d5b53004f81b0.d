/root/repo/target/debug/deps/abl_diameter-933d5b53004f81b0.d: crates/bench/src/bin/abl_diameter.rs

/root/repo/target/debug/deps/abl_diameter-933d5b53004f81b0: crates/bench/src/bin/abl_diameter.rs

crates/bench/src/bin/abl_diameter.rs:
