/root/repo/target/debug/deps/fig12_e8_all_methods-e5411115c7bed094.d: crates/bench/src/bin/fig12_e8_all_methods.rs

/root/repo/target/debug/deps/fig12_e8_all_methods-e5411115c7bed094: crates/bench/src/bin/fig12_e8_all_methods.rs

crates/bench/src/bin/fig12_e8_all_methods.rs:
