/root/repo/target/debug/deps/fig10_e8_hierarchy-dbfd1290505075c8.d: crates/bench/src/bin/fig10_e8_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_e8_hierarchy-dbfd1290505075c8.rmeta: crates/bench/src/bin/fig10_e8_hierarchy.rs Cargo.toml

crates/bench/src/bin/fig10_e8_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
