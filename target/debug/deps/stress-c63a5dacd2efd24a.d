/root/repo/target/debug/deps/stress-c63a5dacd2efd24a.d: crates/serve/tests/stress.rs

/root/repo/target/debug/deps/stress-c63a5dacd2efd24a: crates/serve/tests/stress.rs

crates/serve/tests/stress.rs:
