/root/repo/target/debug/deps/ext_serve-f8d2e1ceb3354854.d: crates/bench/src/bin/ext_serve.rs Cargo.toml

/root/repo/target/debug/deps/libext_serve-f8d2e1ceb3354854.rmeta: crates/bench/src/bin/ext_serve.rs Cargo.toml

crates/bench/src/bin/ext_serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
