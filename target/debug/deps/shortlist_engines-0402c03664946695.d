/root/repo/target/debug/deps/shortlist_engines-0402c03664946695.d: crates/bench/benches/shortlist_engines.rs Cargo.toml

/root/repo/target/debug/deps/libshortlist_engines-0402c03664946695.rmeta: crates/bench/benches/shortlist_engines.rs Cargo.toml

crates/bench/benches/shortlist_engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
