/root/repo/target/debug/deps/families-05cf2989b426c6d5.d: crates/core/tests/families.rs Cargo.toml

/root/repo/target/debug/deps/libfamilies-05cf2989b426c6d5.rmeta: crates/core/tests/families.rs Cargo.toml

crates/core/tests/families.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
