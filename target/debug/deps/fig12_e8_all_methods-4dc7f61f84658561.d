/root/repo/target/debug/deps/fig12_e8_all_methods-4dc7f61f84658561.d: crates/bench/src/bin/fig12_e8_all_methods.rs

/root/repo/target/debug/deps/fig12_e8_all_methods-4dc7f61f84658561: crates/bench/src/bin/fig12_e8_all_methods.rs

crates/bench/src/bin/fig12_e8_all_methods.rs:
