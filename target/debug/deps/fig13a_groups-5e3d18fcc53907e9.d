/root/repo/target/debug/deps/fig13a_groups-5e3d18fcc53907e9.d: crates/bench/src/bin/fig13a_groups.rs Cargo.toml

/root/repo/target/debug/deps/libfig13a_groups-5e3d18fcc53907e9.rmeta: crates/bench/src/bin/fig13a_groups.rs Cargo.toml

crates/bench/src/bin/fig13a_groups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
