/root/repo/target/debug/deps/parking_lot-d642c8f8026a5c61.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d642c8f8026a5c61.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d642c8f8026a5c61.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
