/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-d9a643b0b37ecf8b.d: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

/root/repo/target/debug/deps/fig05_zm_standard_vs_bilevel-d9a643b0b37ecf8b: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs:
