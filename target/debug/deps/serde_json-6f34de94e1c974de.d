/root/repo/target/debug/deps/serde_json-6f34de94e1c974de.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6f34de94e1c974de.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6f34de94e1c974de.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
