/root/repo/target/debug/deps/parking_lot-a07cd8451f6f2ff8.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-a07cd8451f6f2ff8.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
