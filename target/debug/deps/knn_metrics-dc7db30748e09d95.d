/root/repo/target/debug/deps/knn_metrics-dc7db30748e09d95.d: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libknn_metrics-dc7db30748e09d95.rlib: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libknn_metrics-dc7db30748e09d95.rmeta: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/curve.rs:
crates/metrics/src/quality.rs:
crates/metrics/src/significance.rs:
crates/metrics/src/stats.rs:
