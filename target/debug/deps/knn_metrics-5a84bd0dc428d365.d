/root/repo/target/debug/deps/knn_metrics-5a84bd0dc428d365.d: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libknn_metrics-5a84bd0dc428d365.rlib: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libknn_metrics-5a84bd0dc428d365.rmeta: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/curve.rs:
crates/metrics/src/quality.rs:
crates/metrics/src/significance.rs:
crates/metrics/src/stats.rs:
