/root/repo/target/debug/deps/knn_serve-d6c9d086d498e8ff.d: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

/root/repo/target/debug/deps/libknn_serve-d6c9d086d498e8ff.rmeta: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

crates/serve/src/lib.rs:
crates/serve/src/backend.rs:
crates/serve/src/fanout.rs:
crates/serve/src/mutable.rs:
crates/serve/src/protocol.rs:
crates/serve/src/service.rs:
crates/serve/src/stats.rs:
