/root/repo/target/debug/deps/bilevel-e5fd13e3c564c5b5.d: crates/core/src/bin/bilevel.rs Cargo.toml

/root/repo/target/debug/deps/libbilevel-e5fd13e3c564c5b5.rmeta: crates/core/src/bin/bilevel.rs Cargo.toml

crates/core/src/bin/bilevel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
