/root/repo/target/debug/deps/proptests-89d1dc9aa6afac45.d: crates/metrics/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-89d1dc9aa6afac45.rmeta: crates/metrics/tests/proptests.rs Cargo.toml

crates/metrics/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
