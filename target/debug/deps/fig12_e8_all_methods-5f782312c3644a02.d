/root/repo/target/debug/deps/fig12_e8_all_methods-5f782312c3644a02.d: crates/bench/src/bin/fig12_e8_all_methods.rs

/root/repo/target/debug/deps/fig12_e8_all_methods-5f782312c3644a02: crates/bench/src/bin/fig12_e8_all_methods.rs

crates/bench/src/bin/fig12_e8_all_methods.rs:
