/root/repo/target/debug/deps/integration_variants-aa5bee91f83ab645.d: crates/core/../../tests/integration_variants.rs

/root/repo/target/debug/deps/integration_variants-aa5bee91f83ab645: crates/core/../../tests/integration_variants.rs

crates/core/../../tests/integration_variants.rs:
