/root/repo/target/debug/deps/ext_forest-cbbea989a74ebbee.d: crates/bench/src/bin/ext_forest.rs Cargo.toml

/root/repo/target/debug/deps/libext_forest-cbbea989a74ebbee.rmeta: crates/bench/src/bin/ext_forest.rs Cargo.toml

crates/bench/src/bin/ext_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
