/root/repo/target/debug/deps/stress-f1d13f747ce97ffa.d: crates/serve/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-f1d13f747ce97ffa.rmeta: crates/serve/tests/stress.rs Cargo.toml

crates/serve/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
