/root/repo/target/debug/deps/bilevel_netd-bfe79f79c230c762.d: crates/net/src/bin/bilevel-netd.rs

/root/repo/target/debug/deps/bilevel_netd-bfe79f79c230c762: crates/net/src/bin/bilevel-netd.rs

crates/net/src/bin/bilevel-netd.rs:
