/root/repo/target/debug/deps/fig09_zm_hierarchy-24088c490a0ea0b4.d: crates/bench/src/bin/fig09_zm_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_zm_hierarchy-24088c490a0ea0b4.rmeta: crates/bench/src/bin/fig09_zm_hierarchy.rs Cargo.toml

crates/bench/src/bin/fig09_zm_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
