/root/repo/target/debug/deps/fig04_shortlist-b9158785f7ae47cf.d: crates/bench/src/bin/fig04_shortlist.rs

/root/repo/target/debug/deps/fig04_shortlist-b9158785f7ae47cf: crates/bench/src/bin/fig04_shortlist.rs

crates/bench/src/bin/fig04_shortlist.rs:
