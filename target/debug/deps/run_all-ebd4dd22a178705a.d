/root/repo/target/debug/deps/run_all-ebd4dd22a178705a.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-ebd4dd22a178705a: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
