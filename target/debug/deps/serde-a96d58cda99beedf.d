/root/repo/target/debug/deps/serde-a96d58cda99beedf.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a96d58cda99beedf.rlib: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a96d58cda99beedf.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
