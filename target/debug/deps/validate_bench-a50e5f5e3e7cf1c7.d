/root/repo/target/debug/deps/validate_bench-a50e5f5e3e7cf1c7.d: crates/bench/src/bin/validate_bench.rs

/root/repo/target/debug/deps/validate_bench-a50e5f5e3e7cf1c7: crates/bench/src/bin/validate_bench.rs

crates/bench/src/bin/validate_bench.rs:
