/root/repo/target/debug/deps/knn_metrics-10d4f4f6d3759b29.d: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/knn_metrics-10d4f4f6d3759b29: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/curve.rs:
crates/metrics/src/quality.rs:
crates/metrics/src/significance.rs:
crates/metrics/src/stats.rs:
