/root/repo/target/debug/deps/proptests-ea2ce675716811dd.d: crates/metrics/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ea2ce675716811dd: crates/metrics/tests/proptests.rs

crates/metrics/tests/proptests.rs:
