/root/repo/target/debug/deps/bilevel-aff37bdf715d7801.d: crates/core/src/bin/bilevel.rs

/root/repo/target/debug/deps/bilevel-aff37bdf715d7801: crates/core/src/bin/bilevel.rs

crates/core/src/bin/bilevel.rs:
