/root/repo/target/debug/deps/rptree-298c1dc71f774b00.d: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/debug/deps/rptree-298c1dc71f774b00: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

crates/rptree/src/lib.rs:
crates/rptree/src/diameter.rs:
crates/rptree/src/kdknn.rs:
crates/rptree/src/kdpart.rs:
crates/rptree/src/kmeans.rs:
crates/rptree/src/partition.rs:
crates/rptree/src/tree.rs:
