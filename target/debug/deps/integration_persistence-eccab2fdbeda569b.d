/root/repo/target/debug/deps/integration_persistence-eccab2fdbeda569b.d: crates/core/../../tests/integration_persistence.rs

/root/repo/target/debug/deps/integration_persistence-eccab2fdbeda569b: crates/core/../../tests/integration_persistence.rs

crates/core/../../tests/integration_persistence.rs:
