/root/repo/target/debug/deps/bilevel_netd-835dafc8a53da3e5.d: crates/net/src/bin/bilevel-netd.rs

/root/repo/target/debug/deps/bilevel_netd-835dafc8a53da3e5: crates/net/src/bin/bilevel-netd.rs

crates/net/src/bin/bilevel-netd.rs:
