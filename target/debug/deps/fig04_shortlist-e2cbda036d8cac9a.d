/root/repo/target/debug/deps/fig04_shortlist-e2cbda036d8cac9a.d: crates/bench/src/bin/fig04_shortlist.rs

/root/repo/target/debug/deps/fig04_shortlist-e2cbda036d8cac9a: crates/bench/src/bin/fig04_shortlist.rs

crates/bench/src/bin/fig04_shortlist.rs:
