/root/repo/target/debug/deps/run_all-a2db34ae9049af46.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-a2db34ae9049af46: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
