/root/repo/target/debug/deps/lsh-46d7a41709a59e0a.d: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/debug/deps/liblsh-46d7a41709a59e0a.rmeta: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

crates/lsh/src/lib.rs:
crates/lsh/src/adaptive.rs:
crates/lsh/src/family.rs:
crates/lsh/src/forest.rs:
crates/lsh/src/multiprobe.rs:
crates/lsh/src/table.rs:
crates/lsh/src/tuning.rs:
