/root/repo/target/debug/deps/integration_pipeline-e02dd5b8773e12e1.d: crates/core/../../tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-e02dd5b8773e12e1: crates/core/../../tests/integration_pipeline.rs

crates/core/../../tests/integration_pipeline.rs:
