/root/repo/target/debug/deps/lsh-c5942668bb27e2b4.d: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/debug/deps/liblsh-c5942668bb27e2b4.rlib: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/debug/deps/liblsh-c5942668bb27e2b4.rmeta: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

crates/lsh/src/lib.rs:
crates/lsh/src/adaptive.rs:
crates/lsh/src/family.rs:
crates/lsh/src/forest.rs:
crates/lsh/src/multiprobe.rs:
crates/lsh/src/table.rs:
crates/lsh/src/tuning.rs:
