/root/repo/target/debug/deps/equivalence-87682f75ec4f4cbb.d: crates/core/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-87682f75ec4f4cbb: crates/core/tests/equivalence.rs

crates/core/tests/equivalence.rs:
