/root/repo/target/debug/deps/abl_curse-3edc4c825c2776b5.d: crates/bench/src/bin/abl_curse.rs

/root/repo/target/debug/deps/abl_curse-3edc4c825c2776b5: crates/bench/src/bin/abl_curse.rs

crates/bench/src/bin/abl_curse.rs:
