/root/repo/target/debug/deps/abl_diameter-84df18d0b2222d66.d: crates/bench/src/bin/abl_diameter.rs Cargo.toml

/root/repo/target/debug/deps/libabl_diameter-84df18d0b2222d66.rmeta: crates/bench/src/bin/abl_diameter.rs Cargo.toml

crates/bench/src/bin/abl_diameter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
