/root/repo/target/debug/deps/rptree-9f5f8b760b85b8ba.d: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/librptree-9f5f8b760b85b8ba.rmeta: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs Cargo.toml

crates/rptree/src/lib.rs:
crates/rptree/src/diameter.rs:
crates/rptree/src/kdknn.rs:
crates/rptree/src/kdpart.rs:
crates/rptree/src/kmeans.rs:
crates/rptree/src/partition.rs:
crates/rptree/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
