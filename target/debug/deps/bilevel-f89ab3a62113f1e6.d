/root/repo/target/debug/deps/bilevel-f89ab3a62113f1e6.d: crates/core/src/bin/bilevel.rs

/root/repo/target/debug/deps/bilevel-f89ab3a62113f1e6: crates/core/src/bin/bilevel.rs

crates/core/src/bin/bilevel.rs:
