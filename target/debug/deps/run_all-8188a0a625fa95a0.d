/root/repo/target/debug/deps/run_all-8188a0a625fa95a0.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-8188a0a625fa95a0: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
