/root/repo/target/debug/deps/serde_derive-bca0572c95f09de9.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-bca0572c95f09de9.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
