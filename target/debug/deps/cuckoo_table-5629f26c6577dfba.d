/root/repo/target/debug/deps/cuckoo_table-5629f26c6577dfba.d: crates/bench/benches/cuckoo_table.rs Cargo.toml

/root/repo/target/debug/deps/libcuckoo_table-5629f26c6577dfba.rmeta: crates/bench/benches/cuckoo_table.rs Cargo.toml

crates/bench/benches/cuckoo_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
