/root/repo/target/debug/deps/fig13a_groups-9b3b7ed4338c5540.d: crates/bench/src/bin/fig13a_groups.rs

/root/repo/target/debug/deps/fig13a_groups-9b3b7ed4338c5540: crates/bench/src/bin/fig13a_groups.rs

crates/bench/src/bin/fig13a_groups.rs:
