/root/repo/target/debug/deps/lsh-00d09ef1d58e4403.d: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/level2.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs Cargo.toml

/root/repo/target/debug/deps/liblsh-00d09ef1d58e4403.rmeta: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/level2.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs Cargo.toml

crates/lsh/src/lib.rs:
crates/lsh/src/adaptive.rs:
crates/lsh/src/family.rs:
crates/lsh/src/forest.rs:
crates/lsh/src/level2.rs:
crates/lsh/src/multiprobe.rs:
crates/lsh/src/table.rs:
crates/lsh/src/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
