/root/repo/target/debug/deps/rand-c6fc291b5608cbb7.d: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-c6fc291b5608cbb7.rlib: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-c6fc291b5608cbb7.rmeta: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/rngs.rs

/tmp/vendor/rand/src/lib.rs:
/tmp/vendor/rand/src/distributions.rs:
/tmp/vendor/rand/src/rngs.rs:
