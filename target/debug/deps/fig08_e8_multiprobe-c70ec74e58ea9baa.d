/root/repo/target/debug/deps/fig08_e8_multiprobe-c70ec74e58ea9baa.d: crates/bench/src/bin/fig08_e8_multiprobe.rs

/root/repo/target/debug/deps/fig08_e8_multiprobe-c70ec74e58ea9baa: crates/bench/src/bin/fig08_e8_multiprobe.rs

crates/bench/src/bin/fig08_e8_multiprobe.rs:
