/root/repo/target/debug/deps/abl_split_rule-efc7d31b1b4d4b86.d: crates/bench/src/bin/abl_split_rule.rs Cargo.toml

/root/repo/target/debug/deps/libabl_split_rule-efc7d31b1b4d4b86.rmeta: crates/bench/src/bin/abl_split_rule.rs Cargo.toml

crates/bench/src/bin/abl_split_rule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
