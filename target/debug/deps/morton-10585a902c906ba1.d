/root/repo/target/debug/deps/morton-10585a902c906ba1.d: crates/bench/benches/morton.rs Cargo.toml

/root/repo/target/debug/deps/libmorton-10585a902c906ba1.rmeta: crates/bench/benches/morton.rs Cargo.toml

crates/bench/benches/morton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
