/root/repo/target/debug/examples/parameter_tuning-94c1d125ee94b958.d: crates/core/../../examples/parameter_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libparameter_tuning-94c1d125ee94b958.rmeta: crates/core/../../examples/parameter_tuning.rs Cargo.toml

crates/core/../../examples/parameter_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
