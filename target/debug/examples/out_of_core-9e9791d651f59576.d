/root/repo/target/debug/examples/out_of_core-9e9791d651f59576.d: crates/core/../../examples/out_of_core.rs Cargo.toml

/root/repo/target/debug/examples/libout_of_core-9e9791d651f59576.rmeta: crates/core/../../examples/out_of_core.rs Cargo.toml

crates/core/../../examples/out_of_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
