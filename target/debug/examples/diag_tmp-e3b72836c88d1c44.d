/root/repo/target/debug/examples/diag_tmp-e3b72836c88d1c44.d: crates/core/examples/diag_tmp.rs

/root/repo/target/debug/examples/diag_tmp-e3b72836c88d1c44: crates/core/examples/diag_tmp.rs

crates/core/examples/diag_tmp.rs:
