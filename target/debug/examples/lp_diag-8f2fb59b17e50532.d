/root/repo/target/debug/examples/lp_diag-8f2fb59b17e50532.d: crates/core/examples/lp_diag.rs

/root/repo/target/debug/examples/lp_diag-8f2fb59b17e50532: crates/core/examples/lp_diag.rs

crates/core/examples/lp_diag.rs:
