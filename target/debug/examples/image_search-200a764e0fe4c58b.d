/root/repo/target/debug/examples/image_search-200a764e0fe4c58b.d: crates/core/../../examples/image_search.rs Cargo.toml

/root/repo/target/debug/examples/libimage_search-200a764e0fe4c58b.rmeta: crates/core/../../examples/image_search.rs Cargo.toml

crates/core/../../examples/image_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
