/root/repo/target/debug/examples/out_of_core-eda4ddb783eda6d5.d: crates/core/../../examples/out_of_core.rs

/root/repo/target/debug/examples/out_of_core-eda4ddb783eda6d5: crates/core/../../examples/out_of_core.rs

crates/core/../../examples/out_of_core.rs:
