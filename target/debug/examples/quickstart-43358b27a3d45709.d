/root/repo/target/debug/examples/quickstart-43358b27a3d45709.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-43358b27a3d45709: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
