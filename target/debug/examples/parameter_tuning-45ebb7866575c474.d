/root/repo/target/debug/examples/parameter_tuning-45ebb7866575c474.d: crates/core/../../examples/parameter_tuning.rs

/root/repo/target/debug/examples/parameter_tuning-45ebb7866575c474: crates/core/../../examples/parameter_tuning.rs

crates/core/../../examples/parameter_tuning.rs:
