/root/repo/target/debug/examples/image_search-96c62d00ae45b311.d: crates/core/../../examples/image_search.rs

/root/repo/target/debug/examples/image_search-96c62d00ae45b311: crates/core/../../examples/image_search.rs

crates/core/../../examples/image_search.rs:
