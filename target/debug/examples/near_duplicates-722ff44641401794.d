/root/repo/target/debug/examples/near_duplicates-722ff44641401794.d: crates/core/../../examples/near_duplicates.rs Cargo.toml

/root/repo/target/debug/examples/libnear_duplicates-722ff44641401794.rmeta: crates/core/../../examples/near_duplicates.rs Cargo.toml

crates/core/../../examples/near_duplicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
