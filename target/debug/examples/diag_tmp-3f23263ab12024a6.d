/root/repo/target/debug/examples/diag_tmp-3f23263ab12024a6.d: crates/core/examples/diag_tmp.rs

/root/repo/target/debug/examples/diag_tmp-3f23263ab12024a6: crates/core/examples/diag_tmp.rs

crates/core/examples/diag_tmp.rs:
