/root/repo/target/debug/examples/near_duplicates-a65ca45637ea6544.d: crates/core/../../examples/near_duplicates.rs

/root/repo/target/debug/examples/near_duplicates-a65ca45637ea6544: crates/core/../../examples/near_duplicates.rs

crates/core/../../examples/near_duplicates.rs:
