/root/repo/target/debug/examples/parameter_tuning-ad9ead4de761f556.d: crates/core/../../examples/parameter_tuning.rs

/root/repo/target/debug/examples/parameter_tuning-ad9ead4de761f556: crates/core/../../examples/parameter_tuning.rs

crates/core/../../examples/parameter_tuning.rs:
