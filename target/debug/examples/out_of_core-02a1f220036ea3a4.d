/root/repo/target/debug/examples/out_of_core-02a1f220036ea3a4.d: crates/core/../../examples/out_of_core.rs

/root/repo/target/debug/examples/out_of_core-02a1f220036ea3a4: crates/core/../../examples/out_of_core.rs

crates/core/../../examples/out_of_core.rs:
