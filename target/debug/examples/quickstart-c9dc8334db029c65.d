/root/repo/target/debug/examples/quickstart-c9dc8334db029c65.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c9dc8334db029c65: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
