/root/repo/target/debug/examples/parameter_tuning-957ad6ab7b95b9a7.d: crates/core/../../examples/parameter_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libparameter_tuning-957ad6ab7b95b9a7.rmeta: crates/core/../../examples/parameter_tuning.rs Cargo.toml

crates/core/../../examples/parameter_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
