/root/repo/target/debug/examples/near_duplicates-39e1a5491bb42d5c.d: crates/core/../../examples/near_duplicates.rs

/root/repo/target/debug/examples/near_duplicates-39e1a5491bb42d5c: crates/core/../../examples/near_duplicates.rs

crates/core/../../examples/near_duplicates.rs:
