/root/repo/target/debug/examples/image_search-a8cdaee36cdd331e.d: crates/core/../../examples/image_search.rs

/root/repo/target/debug/examples/image_search-a8cdaee36cdd331e: crates/core/../../examples/image_search.rs

crates/core/../../examples/image_search.rs:
