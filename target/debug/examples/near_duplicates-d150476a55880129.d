/root/repo/target/debug/examples/near_duplicates-d150476a55880129.d: crates/core/../../examples/near_duplicates.rs Cargo.toml

/root/repo/target/debug/examples/libnear_duplicates-d150476a55880129.rmeta: crates/core/../../examples/near_duplicates.rs Cargo.toml

crates/core/../../examples/near_duplicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
