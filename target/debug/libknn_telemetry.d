/root/repo/target/debug/libknn_telemetry.rlib: /root/repo/crates/telemetry/src/lib.rs
