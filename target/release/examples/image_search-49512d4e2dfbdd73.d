/root/repo/target/release/examples/image_search-49512d4e2dfbdd73.d: crates/core/../../examples/image_search.rs

/root/repo/target/release/examples/image_search-49512d4e2dfbdd73: crates/core/../../examples/image_search.rs

crates/core/../../examples/image_search.rs:
