/root/repo/target/release/examples/parameter_tuning-b114f84cb49f2dd8.d: crates/core/../../examples/parameter_tuning.rs

/root/repo/target/release/examples/parameter_tuning-b114f84cb49f2dd8: crates/core/../../examples/parameter_tuning.rs

crates/core/../../examples/parameter_tuning.rs:
