/root/repo/target/release/examples/parameter_tuning-85689b951d3bdfbb.d: crates/core/../../examples/parameter_tuning.rs

/root/repo/target/release/examples/parameter_tuning-85689b951d3bdfbb: crates/core/../../examples/parameter_tuning.rs

crates/core/../../examples/parameter_tuning.rs:
