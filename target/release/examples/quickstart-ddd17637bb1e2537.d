/root/repo/target/release/examples/quickstart-ddd17637bb1e2537.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ddd17637bb1e2537: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
