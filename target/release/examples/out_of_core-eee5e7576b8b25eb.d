/root/repo/target/release/examples/out_of_core-eee5e7576b8b25eb.d: crates/core/../../examples/out_of_core.rs

/root/repo/target/release/examples/out_of_core-eee5e7576b8b25eb: crates/core/../../examples/out_of_core.rs

crates/core/../../examples/out_of_core.rs:
