/root/repo/target/release/examples/diag_tmp-d018cc9b274f3db3.d: crates/core/examples/diag_tmp.rs

/root/repo/target/release/examples/diag_tmp-d018cc9b274f3db3: crates/core/examples/diag_tmp.rs

crates/core/examples/diag_tmp.rs:
