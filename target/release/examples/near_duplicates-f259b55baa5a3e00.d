/root/repo/target/release/examples/near_duplicates-f259b55baa5a3e00.d: crates/core/../../examples/near_duplicates.rs

/root/repo/target/release/examples/near_duplicates-f259b55baa5a3e00: crates/core/../../examples/near_duplicates.rs

crates/core/../../examples/near_duplicates.rs:
