/root/repo/target/release/examples/diag_tmp-8a7724c6dcc38695.d: crates/core/examples/diag_tmp.rs

/root/repo/target/release/examples/diag_tmp-8a7724c6dcc38695: crates/core/examples/diag_tmp.rs

crates/core/examples/diag_tmp.rs:
