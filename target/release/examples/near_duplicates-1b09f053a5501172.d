/root/repo/target/release/examples/near_duplicates-1b09f053a5501172.d: crates/core/../../examples/near_duplicates.rs

/root/repo/target/release/examples/near_duplicates-1b09f053a5501172: crates/core/../../examples/near_duplicates.rs

crates/core/../../examples/near_duplicates.rs:
