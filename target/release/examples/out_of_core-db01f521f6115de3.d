/root/repo/target/release/examples/out_of_core-db01f521f6115de3.d: crates/core/../../examples/out_of_core.rs

/root/repo/target/release/examples/out_of_core-db01f521f6115de3: crates/core/../../examples/out_of_core.rs

crates/core/../../examples/out_of_core.rs:
