/root/repo/target/release/examples/image_search-234ad6aae683f179.d: crates/core/../../examples/image_search.rs

/root/repo/target/release/examples/image_search-234ad6aae683f179: crates/core/../../examples/image_search.rs

crates/core/../../examples/image_search.rs:
