/root/repo/target/release/examples/quickstart-59b62f4f8af64dfa.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-59b62f4f8af64dfa: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
