/root/repo/target/release/deps/knn_metrics-751204ee01615af5.d: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libknn_metrics-751204ee01615af5.rlib: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libknn_metrics-751204ee01615af5.rmeta: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/curve.rs:
crates/metrics/src/quality.rs:
crates/metrics/src/significance.rs:
crates/metrics/src/stats.rs:
