/root/repo/target/release/deps/validate_bench-d256bcc4b9cefacd.d: crates/bench/src/bin/validate_bench.rs

/root/repo/target/release/deps/validate_bench-d256bcc4b9cefacd: crates/bench/src/bin/validate_bench.rs

crates/bench/src/bin/validate_bench.rs:
