/root/repo/target/release/deps/knn_metrics-9798202807786dda.d: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libknn_metrics-9798202807786dda.rlib: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libknn_metrics-9798202807786dda.rmeta: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/curve.rs:
crates/metrics/src/quality.rs:
crates/metrics/src/significance.rs:
crates/metrics/src/stats.rs:
