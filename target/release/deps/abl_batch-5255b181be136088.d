/root/repo/target/release/deps/abl_batch-5255b181be136088.d: crates/bench/src/bin/abl_batch.rs

/root/repo/target/release/deps/abl_batch-5255b181be136088: crates/bench/src/bin/abl_batch.rs

crates/bench/src/bin/abl_batch.rs:
