/root/repo/target/release/deps/fig11_zm_all_methods-0c9173203fb1e7e3.d: crates/bench/src/bin/fig11_zm_all_methods.rs

/root/repo/target/release/deps/fig11_zm_all_methods-0c9173203fb1e7e3: crates/bench/src/bin/fig11_zm_all_methods.rs

crates/bench/src/bin/fig11_zm_all_methods.rs:
