/root/repo/target/release/deps/shortlist-5d5ac1f095ebf18a.d: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/release/deps/libshortlist-5d5ac1f095ebf18a.rlib: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/release/deps/libshortlist-5d5ac1f095ebf18a.rmeta: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

crates/shortlist/src/lib.rs:
crates/shortlist/src/engine.rs:
crates/shortlist/src/primitives.rs:
