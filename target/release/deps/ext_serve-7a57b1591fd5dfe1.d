/root/repo/target/release/deps/ext_serve-7a57b1591fd5dfe1.d: crates/bench/src/bin/ext_serve.rs

/root/repo/target/release/deps/ext_serve-7a57b1591fd5dfe1: crates/bench/src/bin/ext_serve.rs

crates/bench/src/bin/ext_serve.rs:
