/root/repo/target/release/deps/abl_diameter-30831727b19ed077.d: crates/bench/src/bin/abl_diameter.rs

/root/repo/target/release/deps/abl_diameter-30831727b19ed077: crates/bench/src/bin/abl_diameter.rs

crates/bench/src/bin/abl_diameter.rs:
