/root/repo/target/release/deps/ext_ooc-a62764cc932c3f16.d: crates/bench/src/bin/ext_ooc.rs

/root/repo/target/release/deps/ext_ooc-a62764cc932c3f16: crates/bench/src/bin/ext_ooc.rs

crates/bench/src/bin/ext_ooc.rs:
