/root/repo/target/release/deps/ext_forest-19975e7000ec705d.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/release/deps/ext_forest-19975e7000ec705d: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:
