/root/repo/target/release/deps/serde_derive-32f74ff7c57058d3.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-32f74ff7c57058d3.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
