/root/repo/target/release/deps/fig13c_partitioner-26390d68faf5b9a2.d: crates/bench/src/bin/fig13c_partitioner.rs

/root/repo/target/release/deps/fig13c_partitioner-26390d68faf5b9a2: crates/bench/src/bin/fig13c_partitioner.rs

crates/bench/src/bin/fig13c_partitioner.rs:
