/root/repo/target/release/deps/proptest-d7f19b9611365692.d: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d7f19b9611365692.rlib: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d7f19b9611365692.rmeta: /tmp/vendor/proptest/src/lib.rs

/tmp/vendor/proptest/src/lib.rs:
