/root/repo/target/release/deps/abl_lattice_density-30675f04ee507098.d: crates/bench/src/bin/abl_lattice_density.rs

/root/repo/target/release/deps/abl_lattice_density-30675f04ee507098: crates/bench/src/bin/abl_lattice_density.rs

crates/bench/src/bin/abl_lattice_density.rs:
