/root/repo/target/release/deps/knn_metrics-7c8a0ca1eb521d9d.d: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libknn_metrics-7c8a0ca1eb521d9d.rlib: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libknn_metrics-7c8a0ca1eb521d9d.rmeta: crates/metrics/src/lib.rs crates/metrics/src/curve.rs crates/metrics/src/quality.rs crates/metrics/src/significance.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/curve.rs:
crates/metrics/src/quality.rs:
crates/metrics/src/significance.rs:
crates/metrics/src/stats.rs:
