/root/repo/target/release/deps/shortlist-170532f55aae508f.d: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/release/deps/libshortlist-170532f55aae508f.rlib: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/release/deps/libshortlist-170532f55aae508f.rmeta: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

crates/shortlist/src/lib.rs:
crates/shortlist/src/engine.rs:
crates/shortlist/src/primitives.rs:
