/root/repo/target/release/deps/shortlist-74f17d0b7d39152d.d: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/release/deps/libshortlist-74f17d0b7d39152d.rlib: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

/root/repo/target/release/deps/libshortlist-74f17d0b7d39152d.rmeta: crates/shortlist/src/lib.rs crates/shortlist/src/engine.rs crates/shortlist/src/primitives.rs

crates/shortlist/src/lib.rs:
crates/shortlist/src/engine.rs:
crates/shortlist/src/primitives.rs:
