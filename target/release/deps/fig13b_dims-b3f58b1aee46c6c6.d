/root/repo/target/release/deps/fig13b_dims-b3f58b1aee46c6c6.d: crates/bench/src/bin/fig13b_dims.rs

/root/repo/target/release/deps/fig13b_dims-b3f58b1aee46c6c6: crates/bench/src/bin/fig13b_dims.rs

crates/bench/src/bin/fig13b_dims.rs:
