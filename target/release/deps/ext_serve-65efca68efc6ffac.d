/root/repo/target/release/deps/ext_serve-65efca68efc6ffac.d: crates/bench/src/bin/ext_serve.rs

/root/repo/target/release/deps/ext_serve-65efca68efc6ffac: crates/bench/src/bin/ext_serve.rs

crates/bench/src/bin/ext_serve.rs:
