/root/repo/target/release/deps/ext_forest-2f1534451ac5718f.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/release/deps/ext_forest-2f1534451ac5718f: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:
