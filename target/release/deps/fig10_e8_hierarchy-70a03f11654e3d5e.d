/root/repo/target/release/deps/fig10_e8_hierarchy-70a03f11654e3d5e.d: crates/bench/src/bin/fig10_e8_hierarchy.rs

/root/repo/target/release/deps/fig10_e8_hierarchy-70a03f11654e3d5e: crates/bench/src/bin/fig10_e8_hierarchy.rs

crates/bench/src/bin/fig10_e8_hierarchy.rs:
