/root/repo/target/release/deps/serde-af98bf59f3683fa2.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-af98bf59f3683fa2.rlib: /tmp/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-af98bf59f3683fa2.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
