/root/repo/target/release/deps/ext_net-d1c8d03729970077.d: crates/bench/src/bin/ext_net.rs

/root/repo/target/release/deps/ext_net-d1c8d03729970077: crates/bench/src/bin/ext_net.rs

crates/bench/src/bin/ext_net.rs:
