/root/repo/target/release/deps/validate_bench-1fb9f2f5c4398e69.d: crates/bench/src/bin/validate_bench.rs

/root/repo/target/release/deps/validate_bench-1fb9f2f5c4398e69: crates/bench/src/bin/validate_bench.rs

crates/bench/src/bin/validate_bench.rs:
