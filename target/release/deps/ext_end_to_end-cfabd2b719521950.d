/root/repo/target/release/deps/ext_end_to_end-cfabd2b719521950.d: crates/bench/src/bin/ext_end_to_end.rs

/root/repo/target/release/deps/ext_end_to_end-cfabd2b719521950: crates/bench/src/bin/ext_end_to_end.rs

crates/bench/src/bin/ext_end_to_end.rs:
