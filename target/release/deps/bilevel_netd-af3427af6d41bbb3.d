/root/repo/target/release/deps/bilevel_netd-af3427af6d41bbb3.d: crates/net/src/bin/bilevel-netd.rs

/root/repo/target/release/deps/bilevel_netd-af3427af6d41bbb3: crates/net/src/bin/bilevel-netd.rs

crates/net/src/bin/bilevel-netd.rs:
