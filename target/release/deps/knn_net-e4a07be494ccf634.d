/root/repo/target/release/deps/knn_net-e4a07be494ccf634.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

/root/repo/target/release/deps/libknn_net-e4a07be494ccf634.rlib: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

/root/repo/target/release/deps/libknn_net-e4a07be494ccf634.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/registry.rs:
crates/net/src/remote.rs:
crates/net/src/server.rs:
