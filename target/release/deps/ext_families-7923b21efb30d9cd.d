/root/repo/target/release/deps/ext_families-7923b21efb30d9cd.d: crates/bench/src/bin/ext_families.rs

/root/repo/target/release/deps/ext_families-7923b21efb30d9cd: crates/bench/src/bin/ext_families.rs

crates/bench/src/bin/ext_families.rs:
