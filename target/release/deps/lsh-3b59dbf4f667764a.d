/root/repo/target/release/deps/lsh-3b59dbf4f667764a.d: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/release/deps/liblsh-3b59dbf4f667764a.rlib: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/release/deps/liblsh-3b59dbf4f667764a.rmeta: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

crates/lsh/src/lib.rs:
crates/lsh/src/adaptive.rs:
crates/lsh/src/family.rs:
crates/lsh/src/forest.rs:
crates/lsh/src/multiprobe.rs:
crates/lsh/src/table.rs:
crates/lsh/src/tuning.rs:
