/root/repo/target/release/deps/serde_derive-de6e75ab24ff229d.d: /tmp/vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-de6e75ab24ff229d.so: /tmp/vendor/serde_derive/src/lib.rs

/tmp/vendor/serde_derive/src/lib.rs:
