/root/repo/target/release/deps/fig09_zm_hierarchy-099f0437df4cfedd.d: crates/bench/src/bin/fig09_zm_hierarchy.rs

/root/repo/target/release/deps/fig09_zm_hierarchy-099f0437df4cfedd: crates/bench/src/bin/fig09_zm_hierarchy.rs

crates/bench/src/bin/fig09_zm_hierarchy.rs:
