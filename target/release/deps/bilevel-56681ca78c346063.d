/root/repo/target/release/deps/bilevel-56681ca78c346063.d: crates/core/src/bin/bilevel.rs

/root/repo/target/release/deps/bilevel-56681ca78c346063: crates/core/src/bin/bilevel.rs

crates/core/src/bin/bilevel.rs:
