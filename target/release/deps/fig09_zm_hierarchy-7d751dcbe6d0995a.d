/root/repo/target/release/deps/fig09_zm_hierarchy-7d751dcbe6d0995a.d: crates/bench/src/bin/fig09_zm_hierarchy.rs

/root/repo/target/release/deps/fig09_zm_hierarchy-7d751dcbe6d0995a: crates/bench/src/bin/fig09_zm_hierarchy.rs

crates/bench/src/bin/fig09_zm_hierarchy.rs:
