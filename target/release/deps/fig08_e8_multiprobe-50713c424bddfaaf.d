/root/repo/target/release/deps/fig08_e8_multiprobe-50713c424bddfaaf.d: crates/bench/src/bin/fig08_e8_multiprobe.rs

/root/repo/target/release/deps/fig08_e8_multiprobe-50713c424bddfaaf: crates/bench/src/bin/fig08_e8_multiprobe.rs

crates/bench/src/bin/fig08_e8_multiprobe.rs:
