/root/repo/target/release/deps/validate_bench-0f531d299e6d6d22.d: crates/bench/src/bin/validate_bench.rs

/root/repo/target/release/deps/validate_bench-0f531d299e6d6d22: crates/bench/src/bin/validate_bench.rs

crates/bench/src/bin/validate_bench.rs:
