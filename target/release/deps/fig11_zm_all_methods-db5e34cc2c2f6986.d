/root/repo/target/release/deps/fig11_zm_all_methods-db5e34cc2c2f6986.d: crates/bench/src/bin/fig11_zm_all_methods.rs

/root/repo/target/release/deps/fig11_zm_all_methods-db5e34cc2c2f6986: crates/bench/src/bin/fig11_zm_all_methods.rs

crates/bench/src/bin/fig11_zm_all_methods.rs:
