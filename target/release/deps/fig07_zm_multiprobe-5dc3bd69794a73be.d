/root/repo/target/release/deps/fig07_zm_multiprobe-5dc3bd69794a73be.d: crates/bench/src/bin/fig07_zm_multiprobe.rs

/root/repo/target/release/deps/fig07_zm_multiprobe-5dc3bd69794a73be: crates/bench/src/bin/fig07_zm_multiprobe.rs

crates/bench/src/bin/fig07_zm_multiprobe.rs:
