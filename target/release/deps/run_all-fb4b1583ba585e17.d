/root/repo/target/release/deps/run_all-fb4b1583ba585e17.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-fb4b1583ba585e17: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
