/root/repo/target/release/deps/fig12_e8_all_methods-33f12628f222175e.d: crates/bench/src/bin/fig12_e8_all_methods.rs

/root/repo/target/release/deps/fig12_e8_all_methods-33f12628f222175e: crates/bench/src/bin/fig12_e8_all_methods.rs

crates/bench/src/bin/fig12_e8_all_methods.rs:
