/root/repo/target/release/deps/abl_curse-5848690d91d12e8f.d: crates/bench/src/bin/abl_curse.rs

/root/repo/target/release/deps/abl_curse-5848690d91d12e8f: crates/bench/src/bin/abl_curse.rs

crates/bench/src/bin/abl_curse.rs:
