/root/repo/target/release/deps/cuckoo-4c12a2996f9ef357.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/release/deps/libcuckoo-4c12a2996f9ef357.rlib: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/release/deps/libcuckoo-4c12a2996f9ef357.rmeta: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
