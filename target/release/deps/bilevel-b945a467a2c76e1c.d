/root/repo/target/release/deps/bilevel-b945a467a2c76e1c.d: crates/core/src/bin/bilevel.rs

/root/repo/target/release/deps/bilevel-b945a467a2c76e1c: crates/core/src/bin/bilevel.rs

crates/core/src/bin/bilevel.rs:
