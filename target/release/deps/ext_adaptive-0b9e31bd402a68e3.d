/root/repo/target/release/deps/ext_adaptive-0b9e31bd402a68e3.d: crates/bench/src/bin/ext_adaptive.rs

/root/repo/target/release/deps/ext_adaptive-0b9e31bd402a68e3: crates/bench/src/bin/ext_adaptive.rs

crates/bench/src/bin/ext_adaptive.rs:
