/root/repo/target/release/deps/crossbeam-6313b6bfdcfcda6a.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-6313b6bfdcfcda6a.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-6313b6bfdcfcda6a.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
