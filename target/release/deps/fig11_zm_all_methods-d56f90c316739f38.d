/root/repo/target/release/deps/fig11_zm_all_methods-d56f90c316739f38.d: crates/bench/src/bin/fig11_zm_all_methods.rs

/root/repo/target/release/deps/fig11_zm_all_methods-d56f90c316739f38: crates/bench/src/bin/fig11_zm_all_methods.rs

crates/bench/src/bin/fig11_zm_all_methods.rs:
