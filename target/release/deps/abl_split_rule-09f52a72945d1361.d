/root/repo/target/release/deps/abl_split_rule-09f52a72945d1361.d: crates/bench/src/bin/abl_split_rule.rs

/root/repo/target/release/deps/abl_split_rule-09f52a72945d1361: crates/bench/src/bin/abl_split_rule.rs

crates/bench/src/bin/abl_split_rule.rs:
