/root/repo/target/release/deps/fig04_shortlist-27eece15df77c1b9.d: crates/bench/src/bin/fig04_shortlist.rs

/root/repo/target/release/deps/fig04_shortlist-27eece15df77c1b9: crates/bench/src/bin/fig04_shortlist.rs

crates/bench/src/bin/fig04_shortlist.rs:
