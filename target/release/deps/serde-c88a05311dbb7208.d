/root/repo/target/release/deps/serde-c88a05311dbb7208.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c88a05311dbb7208.rlib: /tmp/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c88a05311dbb7208.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
