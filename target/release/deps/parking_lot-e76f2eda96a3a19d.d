/root/repo/target/release/deps/parking_lot-e76f2eda96a3a19d.d: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e76f2eda96a3a19d.rlib: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e76f2eda96a3a19d.rmeta: /tmp/vendor/parking_lot/src/lib.rs

/tmp/vendor/parking_lot/src/lib.rs:
