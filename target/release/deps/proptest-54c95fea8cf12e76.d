/root/repo/target/release/deps/proptest-54c95fea8cf12e76.d: /tmp/vendor/proptest/src/lib.rs /tmp/vendor/proptest/src/collection.rs

/root/repo/target/release/deps/libproptest-54c95fea8cf12e76.rlib: /tmp/vendor/proptest/src/lib.rs /tmp/vendor/proptest/src/collection.rs

/root/repo/target/release/deps/libproptest-54c95fea8cf12e76.rmeta: /tmp/vendor/proptest/src/lib.rs /tmp/vendor/proptest/src/collection.rs

/tmp/vendor/proptest/src/lib.rs:
/tmp/vendor/proptest/src/collection.rs:
