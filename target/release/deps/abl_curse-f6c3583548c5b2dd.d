/root/repo/target/release/deps/abl_curse-f6c3583548c5b2dd.d: crates/bench/src/bin/abl_curse.rs

/root/repo/target/release/deps/abl_curse-f6c3583548c5b2dd: crates/bench/src/bin/abl_curse.rs

crates/bench/src/bin/abl_curse.rs:
