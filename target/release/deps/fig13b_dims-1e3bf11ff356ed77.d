/root/repo/target/release/deps/fig13b_dims-1e3bf11ff356ed77.d: crates/bench/src/bin/fig13b_dims.rs

/root/repo/target/release/deps/fig13b_dims-1e3bf11ff356ed77: crates/bench/src/bin/fig13b_dims.rs

crates/bench/src/bin/fig13b_dims.rs:
