/root/repo/target/release/deps/fig08_e8_multiprobe-b232923725e45400.d: crates/bench/src/bin/fig08_e8_multiprobe.rs

/root/repo/target/release/deps/fig08_e8_multiprobe-b232923725e45400: crates/bench/src/bin/fig08_e8_multiprobe.rs

crates/bench/src/bin/fig08_e8_multiprobe.rs:
