/root/repo/target/release/deps/fig05_zm_standard_vs_bilevel-adfa4311ffde1f54.d: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

/root/repo/target/release/deps/fig05_zm_standard_vs_bilevel-adfa4311ffde1f54: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs:
