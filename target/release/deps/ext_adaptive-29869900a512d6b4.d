/root/repo/target/release/deps/ext_adaptive-29869900a512d6b4.d: crates/bench/src/bin/ext_adaptive.rs

/root/repo/target/release/deps/ext_adaptive-29869900a512d6b4: crates/bench/src/bin/ext_adaptive.rs

crates/bench/src/bin/ext_adaptive.rs:
