/root/repo/target/release/deps/fig12_e8_all_methods-226f924f0dbc9097.d: crates/bench/src/bin/fig12_e8_all_methods.rs

/root/repo/target/release/deps/fig12_e8_all_methods-226f924f0dbc9097: crates/bench/src/bin/fig12_e8_all_methods.rs

crates/bench/src/bin/fig12_e8_all_methods.rs:
