/root/repo/target/release/deps/run_all-21509aef1b825975.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-21509aef1b825975: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
