/root/repo/target/release/deps/rand-1120a44defb6dc2d.d: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/rngs.rs

/root/repo/target/release/deps/librand-1120a44defb6dc2d.rlib: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/rngs.rs

/root/repo/target/release/deps/librand-1120a44defb6dc2d.rmeta: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/rngs.rs

/tmp/vendor/rand/src/lib.rs:
/tmp/vendor/rand/src/distributions.rs:
/tmp/vendor/rand/src/rngs.rs:
