/root/repo/target/release/deps/rptree-76bf7622bcf0532b.d: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/release/deps/librptree-76bf7622bcf0532b.rlib: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/release/deps/librptree-76bf7622bcf0532b.rmeta: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

crates/rptree/src/lib.rs:
crates/rptree/src/diameter.rs:
crates/rptree/src/kdknn.rs:
crates/rptree/src/kdpart.rs:
crates/rptree/src/kmeans.rs:
crates/rptree/src/partition.rs:
crates/rptree/src/tree.rs:
