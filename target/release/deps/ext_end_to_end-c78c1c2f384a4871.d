/root/repo/target/release/deps/ext_end_to_end-c78c1c2f384a4871.d: crates/bench/src/bin/ext_end_to_end.rs

/root/repo/target/release/deps/ext_end_to_end-c78c1c2f384a4871: crates/bench/src/bin/ext_end_to_end.rs

crates/bench/src/bin/ext_end_to_end.rs:
