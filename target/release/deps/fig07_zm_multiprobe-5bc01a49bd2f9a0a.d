/root/repo/target/release/deps/fig07_zm_multiprobe-5bc01a49bd2f9a0a.d: crates/bench/src/bin/fig07_zm_multiprobe.rs

/root/repo/target/release/deps/fig07_zm_multiprobe-5bc01a49bd2f9a0a: crates/bench/src/bin/fig07_zm_multiprobe.rs

crates/bench/src/bin/fig07_zm_multiprobe.rs:
