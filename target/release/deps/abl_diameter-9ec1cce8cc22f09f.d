/root/repo/target/release/deps/abl_diameter-9ec1cce8cc22f09f.d: crates/bench/src/bin/abl_diameter.rs

/root/repo/target/release/deps/abl_diameter-9ec1cce8cc22f09f: crates/bench/src/bin/abl_diameter.rs

crates/bench/src/bin/abl_diameter.rs:
