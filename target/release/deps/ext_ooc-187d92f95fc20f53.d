/root/repo/target/release/deps/ext_ooc-187d92f95fc20f53.d: crates/bench/src/bin/ext_ooc.rs

/root/repo/target/release/deps/ext_ooc-187d92f95fc20f53: crates/bench/src/bin/ext_ooc.rs

crates/bench/src/bin/ext_ooc.rs:
