/root/repo/target/release/deps/fig13a_groups-b780d6c4c893ebe3.d: crates/bench/src/bin/fig13a_groups.rs

/root/repo/target/release/deps/fig13a_groups-b780d6c4c893ebe3: crates/bench/src/bin/fig13a_groups.rs

crates/bench/src/bin/fig13a_groups.rs:
