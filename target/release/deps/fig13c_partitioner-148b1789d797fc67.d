/root/repo/target/release/deps/fig13c_partitioner-148b1789d797fc67.d: crates/bench/src/bin/fig13c_partitioner.rs

/root/repo/target/release/deps/fig13c_partitioner-148b1789d797fc67: crates/bench/src/bin/fig13c_partitioner.rs

crates/bench/src/bin/fig13c_partitioner.rs:
