/root/repo/target/release/deps/abl_width_mode-b52cb200644c52fe.d: crates/bench/src/bin/abl_width_mode.rs

/root/repo/target/release/deps/abl_width_mode-b52cb200644c52fe: crates/bench/src/bin/abl_width_mode.rs

crates/bench/src/bin/abl_width_mode.rs:
