/root/repo/target/release/deps/fig04_shortlist-9234b0daaf22734c.d: crates/bench/src/bin/fig04_shortlist.rs

/root/repo/target/release/deps/fig04_shortlist-9234b0daaf22734c: crates/bench/src/bin/fig04_shortlist.rs

crates/bench/src/bin/fig04_shortlist.rs:
