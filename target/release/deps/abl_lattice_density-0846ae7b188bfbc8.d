/root/repo/target/release/deps/abl_lattice_density-0846ae7b188bfbc8.d: crates/bench/src/bin/abl_lattice_density.rs

/root/repo/target/release/deps/abl_lattice_density-0846ae7b188bfbc8: crates/bench/src/bin/abl_lattice_density.rs

crates/bench/src/bin/abl_lattice_density.rs:
