/root/repo/target/release/deps/fig09_zm_hierarchy-98ffc979d5b0f99c.d: crates/bench/src/bin/fig09_zm_hierarchy.rs

/root/repo/target/release/deps/fig09_zm_hierarchy-98ffc979d5b0f99c: crates/bench/src/bin/fig09_zm_hierarchy.rs

crates/bench/src/bin/fig09_zm_hierarchy.rs:
