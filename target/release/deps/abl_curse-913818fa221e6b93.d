/root/repo/target/release/deps/abl_curse-913818fa221e6b93.d: crates/bench/src/bin/abl_curse.rs

/root/repo/target/release/deps/abl_curse-913818fa221e6b93: crates/bench/src/bin/abl_curse.rs

crates/bench/src/bin/abl_curse.rs:
