/root/repo/target/release/deps/abl_split_rule-f02d607767fc66c4.d: crates/bench/src/bin/abl_split_rule.rs

/root/repo/target/release/deps/abl_split_rule-f02d607767fc66c4: crates/bench/src/bin/abl_split_rule.rs

crates/bench/src/bin/abl_split_rule.rs:
