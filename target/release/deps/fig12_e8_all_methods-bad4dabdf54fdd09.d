/root/repo/target/release/deps/fig12_e8_all_methods-bad4dabdf54fdd09.d: crates/bench/src/bin/fig12_e8_all_methods.rs

/root/repo/target/release/deps/fig12_e8_all_methods-bad4dabdf54fdd09: crates/bench/src/bin/fig12_e8_all_methods.rs

crates/bench/src/bin/fig12_e8_all_methods.rs:
