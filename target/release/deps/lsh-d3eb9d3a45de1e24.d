/root/repo/target/release/deps/lsh-d3eb9d3a45de1e24.d: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/release/deps/liblsh-d3eb9d3a45de1e24.rlib: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/release/deps/liblsh-d3eb9d3a45de1e24.rmeta: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

crates/lsh/src/lib.rs:
crates/lsh/src/adaptive.rs:
crates/lsh/src/family.rs:
crates/lsh/src/forest.rs:
crates/lsh/src/multiprobe.rs:
crates/lsh/src/table.rs:
crates/lsh/src/tuning.rs:
