/root/repo/target/release/deps/fig13a_groups-a5b273978d927ada.d: crates/bench/src/bin/fig13a_groups.rs

/root/repo/target/release/deps/fig13a_groups-a5b273978d927ada: crates/bench/src/bin/fig13a_groups.rs

crates/bench/src/bin/fig13a_groups.rs:
