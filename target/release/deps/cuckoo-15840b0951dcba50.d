/root/repo/target/release/deps/cuckoo-15840b0951dcba50.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/release/deps/libcuckoo-15840b0951dcba50.rlib: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/release/deps/libcuckoo-15840b0951dcba50.rmeta: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
