/root/repo/target/release/deps/abl_width_mode-c1397d868a0a896f.d: crates/bench/src/bin/abl_width_mode.rs

/root/repo/target/release/deps/abl_width_mode-c1397d868a0a896f: crates/bench/src/bin/abl_width_mode.rs

crates/bench/src/bin/abl_width_mode.rs:
