/root/repo/target/release/deps/abl_lattice_density-167c665800a895e1.d: crates/bench/src/bin/abl_lattice_density.rs

/root/repo/target/release/deps/abl_lattice_density-167c665800a895e1: crates/bench/src/bin/abl_lattice_density.rs

crates/bench/src/bin/abl_lattice_density.rs:
