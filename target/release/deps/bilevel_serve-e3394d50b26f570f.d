/root/repo/target/release/deps/bilevel_serve-e3394d50b26f570f.d: crates/serve/src/bin/bilevel-serve.rs

/root/repo/target/release/deps/bilevel_serve-e3394d50b26f570f: crates/serve/src/bin/bilevel-serve.rs

crates/serve/src/bin/bilevel-serve.rs:
