/root/repo/target/release/deps/knn_telemetry-180c797e4ff0eb76.d: crates/telemetry/src/lib.rs

/root/repo/target/release/deps/libknn_telemetry-180c797e4ff0eb76.rlib: crates/telemetry/src/lib.rs

/root/repo/target/release/deps/libknn_telemetry-180c797e4ff0eb76.rmeta: crates/telemetry/src/lib.rs

crates/telemetry/src/lib.rs:
