/root/repo/target/release/deps/ext_adaptive-93e4b758016bf7fd.d: crates/bench/src/bin/ext_adaptive.rs

/root/repo/target/release/deps/ext_adaptive-93e4b758016bf7fd: crates/bench/src/bin/ext_adaptive.rs

crates/bench/src/bin/ext_adaptive.rs:
