/root/repo/target/release/deps/bilevel_netd-2ce08421eeb4bf26.d: crates/net/src/bin/bilevel-netd.rs

/root/repo/target/release/deps/bilevel_netd-2ce08421eeb4bf26: crates/net/src/bin/bilevel-netd.rs

crates/net/src/bin/bilevel-netd.rs:
