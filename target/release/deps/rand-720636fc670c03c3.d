/root/repo/target/release/deps/rand-720636fc670c03c3.d: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/rngs.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-720636fc670c03c3.rlib: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/rngs.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-720636fc670c03c3.rmeta: /tmp/vendor/rand/src/lib.rs /tmp/vendor/rand/src/rngs.rs /tmp/vendor/rand/src/distributions.rs /tmp/vendor/rand/src/seq.rs

/tmp/vendor/rand/src/lib.rs:
/tmp/vendor/rand/src/rngs.rs:
/tmp/vendor/rand/src/distributions.rs:
/tmp/vendor/rand/src/seq.rs:
