/root/repo/target/release/deps/proptest-4cce2db452ea7826.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/release/deps/libproptest-4cce2db452ea7826.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/release/deps/libproptest-4cce2db452ea7826.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
