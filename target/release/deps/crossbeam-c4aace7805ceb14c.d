/root/repo/target/release/deps/crossbeam-c4aace7805ceb14c.d: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-c4aace7805ceb14c.rlib: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-c4aace7805ceb14c.rmeta: /tmp/vendor/crossbeam/src/lib.rs

/tmp/vendor/crossbeam/src/lib.rs:
