/root/repo/target/release/deps/abl_batch-e54a646fe800a11b.d: crates/bench/src/bin/abl_batch.rs

/root/repo/target/release/deps/abl_batch-e54a646fe800a11b: crates/bench/src/bin/abl_batch.rs

crates/bench/src/bin/abl_batch.rs:
