/root/repo/target/release/deps/ext_forest-dbefe03e87eaf5cf.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/release/deps/ext_forest-dbefe03e87eaf5cf: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:
