/root/repo/target/release/deps/rptree-21869bebd0bd57eb.d: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/release/deps/librptree-21869bebd0bd57eb.rlib: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/release/deps/librptree-21869bebd0bd57eb.rmeta: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

crates/rptree/src/lib.rs:
crates/rptree/src/diameter.rs:
crates/rptree/src/kdknn.rs:
crates/rptree/src/kdpart.rs:
crates/rptree/src/kmeans.rs:
crates/rptree/src/partition.rs:
crates/rptree/src/tree.rs:
