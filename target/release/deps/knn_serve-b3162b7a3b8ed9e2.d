/root/repo/target/release/deps/knn_serve-b3162b7a3b8ed9e2.d: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

/root/repo/target/release/deps/libknn_serve-b3162b7a3b8ed9e2.rlib: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

/root/repo/target/release/deps/libknn_serve-b3162b7a3b8ed9e2.rmeta: crates/serve/src/lib.rs crates/serve/src/backend.rs crates/serve/src/fanout.rs crates/serve/src/mutable.rs crates/serve/src/protocol.rs crates/serve/src/service.rs crates/serve/src/stats.rs

crates/serve/src/lib.rs:
crates/serve/src/backend.rs:
crates/serve/src/fanout.rs:
crates/serve/src/mutable.rs:
crates/serve/src/protocol.rs:
crates/serve/src/service.rs:
crates/serve/src/stats.rs:
