/root/repo/target/release/deps/run_all-9eebcde37f51b2c5.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-9eebcde37f51b2c5: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
