/root/repo/target/release/deps/cuckoo-f6984ce786172b03.d: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/release/deps/libcuckoo-f6984ce786172b03.rlib: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

/root/repo/target/release/deps/libcuckoo-f6984ce786172b03.rmeta: crates/cuckoo/src/lib.rs crates/cuckoo/src/table.rs

crates/cuckoo/src/lib.rs:
crates/cuckoo/src/table.rs:
