/root/repo/target/release/deps/parking_lot-2926dcfc112d832c.d: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-2926dcfc112d832c.rlib: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-2926dcfc112d832c.rmeta: /tmp/vendor/parking_lot/src/lib.rs

/tmp/vendor/parking_lot/src/lib.rs:
