/root/repo/target/release/deps/bench-137807d326194a4c.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libbench-137807d326194a4c.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libbench-137807d326194a4c.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/data.rs:
crates/bench/src/figures.rs:
crates/bench/src/methods.rs:
crates/bench/src/record.rs:
crates/bench/src/report.rs:
crates/bench/src/sweep.rs:
