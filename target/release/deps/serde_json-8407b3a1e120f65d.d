/root/repo/target/release/deps/serde_json-8407b3a1e120f65d.d: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-8407b3a1e120f65d.rlib: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-8407b3a1e120f65d.rmeta: /tmp/vendor/serde_json/src/lib.rs

/tmp/vendor/serde_json/src/lib.rs:
