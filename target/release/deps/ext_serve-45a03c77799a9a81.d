/root/repo/target/release/deps/ext_serve-45a03c77799a9a81.d: crates/bench/src/bin/ext_serve.rs

/root/repo/target/release/deps/ext_serve-45a03c77799a9a81: crates/bench/src/bin/ext_serve.rs

crates/bench/src/bin/ext_serve.rs:
