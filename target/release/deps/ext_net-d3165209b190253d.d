/root/repo/target/release/deps/ext_net-d3165209b190253d.d: crates/bench/src/bin/ext_net.rs

/root/repo/target/release/deps/ext_net-d3165209b190253d: crates/bench/src/bin/ext_net.rs

crates/bench/src/bin/ext_net.rs:
