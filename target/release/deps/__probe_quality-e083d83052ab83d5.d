/root/repo/target/release/deps/__probe_quality-e083d83052ab83d5.d: crates/bench/src/bin/__probe_quality.rs

/root/repo/target/release/deps/__probe_quality-e083d83052ab83d5: crates/bench/src/bin/__probe_quality.rs

crates/bench/src/bin/__probe_quality.rs:
