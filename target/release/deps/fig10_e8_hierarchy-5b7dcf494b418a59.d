/root/repo/target/release/deps/fig10_e8_hierarchy-5b7dcf494b418a59.d: crates/bench/src/bin/fig10_e8_hierarchy.rs

/root/repo/target/release/deps/fig10_e8_hierarchy-5b7dcf494b418a59: crates/bench/src/bin/fig10_e8_hierarchy.rs

crates/bench/src/bin/fig10_e8_hierarchy.rs:
