/root/repo/target/release/deps/parking_lot-37fad992b6589bd1.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-37fad992b6589bd1.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-37fad992b6589bd1.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
