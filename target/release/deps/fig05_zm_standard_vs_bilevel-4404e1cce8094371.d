/root/repo/target/release/deps/fig05_zm_standard_vs_bilevel-4404e1cce8094371.d: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

/root/repo/target/release/deps/fig05_zm_standard_vs_bilevel-4404e1cce8094371: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs:
