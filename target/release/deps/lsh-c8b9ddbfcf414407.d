/root/repo/target/release/deps/lsh-c8b9ddbfcf414407.d: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/level2.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/release/deps/liblsh-c8b9ddbfcf414407.rlib: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/level2.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

/root/repo/target/release/deps/liblsh-c8b9ddbfcf414407.rmeta: crates/lsh/src/lib.rs crates/lsh/src/adaptive.rs crates/lsh/src/family.rs crates/lsh/src/forest.rs crates/lsh/src/level2.rs crates/lsh/src/multiprobe.rs crates/lsh/src/table.rs crates/lsh/src/tuning.rs

crates/lsh/src/lib.rs:
crates/lsh/src/adaptive.rs:
crates/lsh/src/family.rs:
crates/lsh/src/forest.rs:
crates/lsh/src/level2.rs:
crates/lsh/src/multiprobe.rs:
crates/lsh/src/table.rs:
crates/lsh/src/tuning.rs:
