/root/repo/target/release/deps/abl_width_mode-d1d951b6bd2a46e0.d: crates/bench/src/bin/abl_width_mode.rs

/root/repo/target/release/deps/abl_width_mode-d1d951b6bd2a46e0: crates/bench/src/bin/abl_width_mode.rs

crates/bench/src/bin/abl_width_mode.rs:
