/root/repo/target/release/deps/fig06_e8_standard_vs_bilevel-da763dcaccec0f0d.d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

/root/repo/target/release/deps/fig06_e8_standard_vs_bilevel-da763dcaccec0f0d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs:
