/root/repo/target/release/deps/fig07_zm_multiprobe-aa4fffbdb0cdbfe0.d: crates/bench/src/bin/fig07_zm_multiprobe.rs

/root/repo/target/release/deps/fig07_zm_multiprobe-aa4fffbdb0cdbfe0: crates/bench/src/bin/fig07_zm_multiprobe.rs

crates/bench/src/bin/fig07_zm_multiprobe.rs:
