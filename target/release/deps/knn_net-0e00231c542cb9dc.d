/root/repo/target/release/deps/knn_net-0e00231c542cb9dc.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

/root/repo/target/release/deps/libknn_net-0e00231c542cb9dc.rlib: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

/root/repo/target/release/deps/libknn_net-0e00231c542cb9dc.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/registry.rs crates/net/src/remote.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/registry.rs:
crates/net/src/remote.rs:
crates/net/src/server.rs:
