/root/repo/target/release/deps/fig06_e8_standard_vs_bilevel-c4d3e5ec8815e48d.d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

/root/repo/target/release/deps/fig06_e8_standard_vs_bilevel-c4d3e5ec8815e48d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs:
