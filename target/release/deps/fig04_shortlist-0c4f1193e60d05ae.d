/root/repo/target/release/deps/fig04_shortlist-0c4f1193e60d05ae.d: crates/bench/src/bin/fig04_shortlist.rs

/root/repo/target/release/deps/fig04_shortlist-0c4f1193e60d05ae: crates/bench/src/bin/fig04_shortlist.rs

crates/bench/src/bin/fig04_shortlist.rs:
