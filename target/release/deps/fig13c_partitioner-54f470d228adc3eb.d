/root/repo/target/release/deps/fig13c_partitioner-54f470d228adc3eb.d: crates/bench/src/bin/fig13c_partitioner.rs

/root/repo/target/release/deps/fig13c_partitioner-54f470d228adc3eb: crates/bench/src/bin/fig13c_partitioner.rs

crates/bench/src/bin/fig13c_partitioner.rs:
