/root/repo/target/release/deps/ext_ooc-e0879edda09d5e41.d: crates/bench/src/bin/ext_ooc.rs

/root/repo/target/release/deps/ext_ooc-e0879edda09d5e41: crates/bench/src/bin/ext_ooc.rs

crates/bench/src/bin/ext_ooc.rs:
