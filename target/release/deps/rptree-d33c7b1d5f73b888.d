/root/repo/target/release/deps/rptree-d33c7b1d5f73b888.d: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/release/deps/librptree-d33c7b1d5f73b888.rlib: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

/root/repo/target/release/deps/librptree-d33c7b1d5f73b888.rmeta: crates/rptree/src/lib.rs crates/rptree/src/diameter.rs crates/rptree/src/kdknn.rs crates/rptree/src/kdpart.rs crates/rptree/src/kmeans.rs crates/rptree/src/partition.rs crates/rptree/src/tree.rs

crates/rptree/src/lib.rs:
crates/rptree/src/diameter.rs:
crates/rptree/src/kdknn.rs:
crates/rptree/src/kdpart.rs:
crates/rptree/src/kmeans.rs:
crates/rptree/src/partition.rs:
crates/rptree/src/tree.rs:
