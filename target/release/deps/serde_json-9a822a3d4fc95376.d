/root/repo/target/release/deps/serde_json-9a822a3d4fc95376.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-9a822a3d4fc95376.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-9a822a3d4fc95376.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
