/root/repo/target/release/deps/abl_split_rule-7444af1e8b98b485.d: crates/bench/src/bin/abl_split_rule.rs

/root/repo/target/release/deps/abl_split_rule-7444af1e8b98b485: crates/bench/src/bin/abl_split_rule.rs

crates/bench/src/bin/abl_split_rule.rs:
