/root/repo/target/release/deps/abl_diameter-80e0db34dddc57be.d: crates/bench/src/bin/abl_diameter.rs

/root/repo/target/release/deps/abl_diameter-80e0db34dddc57be: crates/bench/src/bin/abl_diameter.rs

crates/bench/src/bin/abl_diameter.rs:
