/root/repo/target/release/deps/fig13a_groups-e6f29e182f2acd6d.d: crates/bench/src/bin/fig13a_groups.rs

/root/repo/target/release/deps/fig13a_groups-e6f29e182f2acd6d: crates/bench/src/bin/fig13a_groups.rs

crates/bench/src/bin/fig13a_groups.rs:
