/root/repo/target/release/deps/fig05_zm_standard_vs_bilevel-33dfabf768b128f4.d: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

/root/repo/target/release/deps/fig05_zm_standard_vs_bilevel-33dfabf768b128f4: crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs

crates/bench/src/bin/fig05_zm_standard_vs_bilevel.rs:
