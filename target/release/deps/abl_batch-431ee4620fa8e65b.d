/root/repo/target/release/deps/abl_batch-431ee4620fa8e65b.d: crates/bench/src/bin/abl_batch.rs

/root/repo/target/release/deps/abl_batch-431ee4620fa8e65b: crates/bench/src/bin/abl_batch.rs

crates/bench/src/bin/abl_batch.rs:
