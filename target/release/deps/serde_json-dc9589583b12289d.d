/root/repo/target/release/deps/serde_json-dc9589583b12289d.d: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-dc9589583b12289d.rlib: /tmp/vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-dc9589583b12289d.rmeta: /tmp/vendor/serde_json/src/lib.rs

/tmp/vendor/serde_json/src/lib.rs:
