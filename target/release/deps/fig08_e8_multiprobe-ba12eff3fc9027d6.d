/root/repo/target/release/deps/fig08_e8_multiprobe-ba12eff3fc9027d6.d: crates/bench/src/bin/fig08_e8_multiprobe.rs

/root/repo/target/release/deps/fig08_e8_multiprobe-ba12eff3fc9027d6: crates/bench/src/bin/fig08_e8_multiprobe.rs

crates/bench/src/bin/fig08_e8_multiprobe.rs:
