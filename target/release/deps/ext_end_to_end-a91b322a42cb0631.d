/root/repo/target/release/deps/ext_end_to_end-a91b322a42cb0631.d: crates/bench/src/bin/ext_end_to_end.rs

/root/repo/target/release/deps/ext_end_to_end-a91b322a42cb0631: crates/bench/src/bin/ext_end_to_end.rs

crates/bench/src/bin/ext_end_to_end.rs:
