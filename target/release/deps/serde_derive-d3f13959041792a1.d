/root/repo/target/release/deps/serde_derive-d3f13959041792a1.d: /tmp/vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-d3f13959041792a1.so: /tmp/vendor/serde_derive/src/lib.rs

/tmp/vendor/serde_derive/src/lib.rs:
