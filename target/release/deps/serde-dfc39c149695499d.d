/root/repo/target/release/deps/serde-dfc39c149695499d.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-dfc39c149695499d.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-dfc39c149695499d.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
