/root/repo/target/release/deps/fig10_e8_hierarchy-e991244030a8ec72.d: crates/bench/src/bin/fig10_e8_hierarchy.rs

/root/repo/target/release/deps/fig10_e8_hierarchy-e991244030a8ec72: crates/bench/src/bin/fig10_e8_hierarchy.rs

crates/bench/src/bin/fig10_e8_hierarchy.rs:
