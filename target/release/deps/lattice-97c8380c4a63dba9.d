/root/repo/target/release/deps/lattice-97c8380c4a63dba9.d: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/release/deps/liblattice-97c8380c4a63dba9.rlib: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

/root/repo/target/release/deps/liblattice-97c8380c4a63dba9.rmeta: crates/lattice/src/lib.rs crates/lattice/src/density.rs crates/lattice/src/e8.rs crates/lattice/src/e8_hierarchy.rs crates/lattice/src/morton.rs crates/lattice/src/zm_hierarchy.rs

crates/lattice/src/lib.rs:
crates/lattice/src/density.rs:
crates/lattice/src/e8.rs:
crates/lattice/src/e8_hierarchy.rs:
crates/lattice/src/morton.rs:
crates/lattice/src/zm_hierarchy.rs:
