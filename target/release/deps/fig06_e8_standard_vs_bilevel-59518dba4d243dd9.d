/root/repo/target/release/deps/fig06_e8_standard_vs_bilevel-59518dba4d243dd9.d: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

/root/repo/target/release/deps/fig06_e8_standard_vs_bilevel-59518dba4d243dd9: crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs

crates/bench/src/bin/fig06_e8_standard_vs_bilevel.rs:
