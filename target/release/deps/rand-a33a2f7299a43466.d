/root/repo/target/release/deps/rand-a33a2f7299a43466.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/release/deps/librand-a33a2f7299a43466.rlib: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/release/deps/librand-a33a2f7299a43466.rmeta: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
