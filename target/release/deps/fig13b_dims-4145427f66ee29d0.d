/root/repo/target/release/deps/fig13b_dims-4145427f66ee29d0.d: crates/bench/src/bin/fig13b_dims.rs

/root/repo/target/release/deps/fig13b_dims-4145427f66ee29d0: crates/bench/src/bin/fig13b_dims.rs

crates/bench/src/bin/fig13b_dims.rs:
