/root/repo/target/release/deps/bench-bce78eb1d03910ff.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libbench-bce78eb1d03910ff.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libbench-bce78eb1d03910ff.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/data.rs crates/bench/src/figures.rs crates/bench/src/methods.rs crates/bench/src/record.rs crates/bench/src/report.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/data.rs:
crates/bench/src/figures.rs:
crates/bench/src/methods.rs:
crates/bench/src/record.rs:
crates/bench/src/report.rs:
crates/bench/src/sweep.rs:
