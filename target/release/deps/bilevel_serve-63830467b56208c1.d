/root/repo/target/release/deps/bilevel_serve-63830467b56208c1.d: crates/serve/src/bin/bilevel-serve.rs

/root/repo/target/release/deps/bilevel_serve-63830467b56208c1: crates/serve/src/bin/bilevel-serve.rs

crates/serve/src/bin/bilevel-serve.rs:
