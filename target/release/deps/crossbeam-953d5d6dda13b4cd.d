/root/repo/target/release/deps/crossbeam-953d5d6dda13b4cd.d: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-953d5d6dda13b4cd.rlib: /tmp/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-953d5d6dda13b4cd.rmeta: /tmp/vendor/crossbeam/src/lib.rs

/tmp/vendor/crossbeam/src/lib.rs:
