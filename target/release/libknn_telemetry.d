/root/repo/target/release/libknn_telemetry.rlib: /root/repo/crates/telemetry/src/lib.rs
