//! Near-duplicate detection over a streaming corpus — the classic LSH
//! application (de-duplicating crawled images/documents).
//!
//! A corpus is seeded with known near-duplicate pairs (small perturbations
//! of existing items). The example builds a Bi-level index once and then,
//! for every item, asks for its nearest neighbor other than itself; a
//! distance below a calibrated threshold flags a duplicate. Precision and
//! recall of the flagging are reported against the planted truth.
//!
//! ```sh
//! cargo run --release -p bilevel-lsh --example near_duplicates
//! ```

use bilevel_lsh::{BiLevelConfig, BiLevelIndex, Probe, QueryOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vecstore::synth::{self, ClusteredSpec, StdNormal};

fn main() {
    // Base corpus: distinct items.
    let base = synth::clustered(&ClusteredSpec::benchmark(64, 4_000), 3);
    let mut rng = StdRng::seed_from_u64(17);

    // Plant duplicates: 400 items get a perturbed copy appended.
    let mut corpus = base.clone();
    let mut dup_of = vec![usize::MAX; base.len()]; // original index per planted dup
    let mut planted = Vec::new();
    for _ in 0..400 {
        let src = rng.gen_range(0..base.len());
        let mut copy = base.row(src).to_vec();
        for v in &mut copy {
            *v += rng.sample(StdNormal) * 0.02; // re-encode noise
        }
        dup_of.push(src);
        planted.push((corpus.len(), src));
        corpus.push(&copy);
    }
    println!("corpus: {} items ({} planted near-duplicates)", corpus.len(), planted.len());

    // Build one index over everything; multiprobe keeps recall high at a
    // narrow width (duplicates are *very* close, so W can be small and
    // selectivity tiny).
    let cfg = BiLevelConfig::paper_default(4.0).probe(Probe::Multi(32));
    let index = BiLevelIndex::build(&corpus, &cfg);

    // Calibrate the duplicate threshold from the planted pairs' distances.
    let sample_dist: f32 = planted
        .iter()
        .take(50)
        .map(|&(dup, src)| vecstore::metric::squared_l2(corpus.row(dup), corpus.row(src)).sqrt())
        .sum::<f32>()
        / 50.0;
    let threshold = sample_dist * 3.0;
    println!("duplicate distance threshold: {threshold:.3}");

    // Scan: each item queries for its 2-NN (self + possible duplicate).
    let result = index.query_batch_opts(&corpus, &QueryOptions::new(2));
    let mut flagged: Vec<(usize, usize)> = Vec::new();
    for (i, hits) in result.neighbors.iter().enumerate() {
        for n in hits {
            if n.id != i && n.dist < threshold && i < n.id {
                flagged.push((i, n.id));
            }
        }
    }

    // Score against the planted truth.
    let truth: std::collections::HashSet<(usize, usize)> =
        planted.iter().map(|&(dup, src)| if src < dup { (src, dup) } else { (dup, src) }).collect();
    let tp = flagged.iter().filter(|p| truth.contains(p)).count();
    let precision = tp as f64 / flagged.len().max(1) as f64;
    let recall = tp as f64 / truth.len() as f64;
    let mean_cands: f64 =
        result.candidates.iter().map(|&c| c as f64).sum::<f64>() / result.candidates.len() as f64;
    println!(
        "flagged {} pairs: precision {:.3}, recall {:.3} \
         (inspected {:.1} candidates per item out of {})",
        flagged.len(),
        precision,
        recall,
        mean_cands,
        corpus.len(),
    );
    assert!(recall > 0.8, "duplicate scan missed too many planted pairs");
    assert!(precision > 0.5, "duplicate scan flagged too many false pairs");
    println!("near-duplicate sweep OK");
}
