//! Out-of-core indexing: vectors stay on disk, only the index structure is
//! memory-resident (the paper's Section VII future-work item).
//!
//! Writes a corpus to an `.fvecs` file, builds an [`OocFlatIndex`] by
//! sampling 5% of the rows for fitting and streaming the rest, then answers
//! queries whose short-list search reads candidate rows straight from disk.
//!
//! ```sh
//! cargo run --release -p bilevel-lsh --example out_of_core
//! ```

use bilevel_lsh::{ground_truth, BiLevelConfig, OocFlatIndex, Probe};
use knn_metrics::recall;
use vecstore::io::write_fvecs;
use vecstore::ooc::OocDataset;
use vecstore::synth::{self, ClusteredSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Simulate a corpus too big for RAM by putting it on disk. (8k rows here;
    // nothing below changes at 80M rows except the file size.)
    let corpus = synth::clustered(&ClusteredSpec::benchmark(64, 8_500), 29);
    let (data, queries) = corpus.split_at(8_000);
    let dir = std::env::temp_dir().join("bilevel_ooc_example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("corpus.fvecs");
    write_fvecs(&path, &data)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {} vectors ({:.1} MiB) to {}",
        data.len(),
        bytes as f64 / (1 << 20) as f64,
        path.display()
    );

    // Open out-of-core and build: fit on a 5% sample, stream-encode the rest.
    let source = OocDataset::open(&path)?;
    let cfg = BiLevelConfig::paper_default(60.0).probe(Probe::Multi(32));
    let sample = source.len() / 20;
    let t = std::time::Instant::now();
    let index = OocFlatIndex::build(&source, &cfg, sample)?;
    println!(
        "built out-of-core index in {:.1}s ({} groups fitted on a {}-row sample)",
        t.elapsed().as_secs_f64(),
        index.num_groups(),
        sample,
    );

    // Query: candidates from the in-memory bucket layout, distances from
    // positioned disk reads.
    let k = 10;
    let t = std::time::Instant::now();
    let results = index.query_batch_per_row(&queries, k)?;
    let query_ms = t.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;

    // Quality check against in-memory exact search.
    let truth = ground_truth(&data, &queries, k, 1);
    let mean_recall: f64 =
        truth.iter().zip(&results).map(|(t, a)| recall(t, a)).sum::<f64>() / truth.len() as f64;
    println!(
        "{} queries: recall {:.3}, {:.2} ms/query (disk-resident vectors)",
        queries.len(),
        mean_recall,
        query_ms,
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
