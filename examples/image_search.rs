//! Content-based image retrieval, the paper's motivating workload.
//!
//! Simulates a photo-library "find similar images" feature: every image is a
//! GIST-like global descriptor; near-identical photos (re-encodes, small
//! edits) form tight clumps inside broader scene-category clusters. The
//! example compares the six method variants of the paper's Figures 11–12 on
//! the same retrieval task and prints a quality/cost table.
//!
//! ```sh
//! cargo run --release -p bilevel-lsh --example image_search
//! ```

use bilevel_lsh::{
    evaluate_index, ground_truth, BiLevelConfig, BiLevelIndex, Partition, Probe, WidthMode,
};
use rptree::SplitRule;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::Dataset;

/// "Photo library": scene clusters plus per-photo jitter.
fn photo_library(n: usize, seed: u64) -> Dataset {
    let spec = ClusteredSpec {
        dim: 128,          // GIST-like global descriptor
        intrinsic_dim: 10, // scenes vary along few latent axes
        clusters: 20,      // scene categories
        n,
        center_spread: 28.0,
        within_std: 1.0,
        aspect: 3.0,
        noise_std: 0.05,
        size_skew: 1.5,  // popular categories have more photos
        scale_skew: 3.0, // some categories are visually tighter than others
    };
    synth::clustered(&spec, seed)
}

fn main() {
    let corpus = photo_library(6_000, 7);
    let (library, queries) = corpus.split_at(5_500);
    let k = 20;
    println!("library: {} images, descriptor dim {}", library.len(), library.dim());
    println!("computing exact ground truth for {} queries…", queries.len());
    let truth = ground_truth(&library, &queries, k, 1);

    let base = BiLevelConfig::paper_default(1.0);
    let w = 70.0;
    let bilevel_part = Partition::RpTree { groups: 16, rule: SplitRule::Max };
    let variants: Vec<(&str, BiLevelConfig)> = vec![
        ("standard LSH", BiLevelConfig { partition: Partition::None, ..base.clone() }),
        (
            "multiprobe standard",
            BiLevelConfig { partition: Partition::None, probe: Probe::Multi(64), ..base.clone() },
        ),
        (
            "hierarchical standard",
            BiLevelConfig {
                partition: Partition::None,
                probe: Probe::Hierarchical { min_candidates: k },
                ..base.clone()
            },
        ),
        (
            "Bi-level LSH",
            BiLevelConfig {
                partition: bilevel_part,
                width: WidthMode::Scaled { base: w, k },
                ..base.clone()
            },
        ),
        (
            "multiprobe Bi-level",
            BiLevelConfig {
                partition: bilevel_part,
                width: WidthMode::Scaled { base: w, k },
                probe: Probe::Multi(64),
                ..base.clone()
            },
        ),
        (
            "hierarchical Bi-level",
            BiLevelConfig {
                partition: bilevel_part,
                width: WidthMode::Scaled { base: w, k },
                probe: Probe::Hierarchical { min_candidates: k },
                ..base.clone()
            },
        ),
    ];

    println!("\n| method | recall | error ratio | selectivity |");
    println!("|---|---|---|---|");
    for (name, mut cfg) in variants {
        if let WidthMode::Fixed(ref mut fw) = cfg.width {
            *fw = w;
        }
        let index = BiLevelIndex::build(&library, &cfg);
        let evals = evaluate_index(&index, &queries, &truth, k);
        let n = evals.len() as f64;
        println!(
            "| {name} | {:.3} | {:.3} | {:.4} |",
            evals.iter().map(|e| e.recall).sum::<f64>() / n,
            evals.iter().map(|e| e.error_ratio).sum::<f64>() / n,
            evals.iter().map(|e| e.selectivity).sum::<f64>() / n,
        );
    }

    // Show one concrete retrieval.
    let index = BiLevelIndex::build(
        &library,
        &BiLevelConfig { partition: bilevel_part, width: WidthMode::Scaled { base: w, k }, ..base },
    );
    let hits = index.query(queries.row(0), 5);
    println!("\n\"find similar\" for query image 0 → library images:");
    for n in hits {
        println!("  image #{:<6} distance {:.3}", n.id, n.dist);
    }
}
