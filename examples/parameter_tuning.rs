//! Automatic parameter tuning (Dong et al., Section IV-B of the paper).
//!
//! Shows the three width modes side by side on a corpus whose clusters have
//! very different densities — the situation of the paper's Figure 2, where
//! no single bucket width suits every cluster:
//!
//! * `Fixed`: one global `W` (what standard LSH is stuck with),
//! * `Scaled`: per-RP-tree-leaf widths proportional to local k-NN distance,
//! * `Tuned`: fully automatic per-leaf widths from the p-stable collision
//!   model, targeting a requested recall.
//!
//! ```sh
//! cargo run --release -p bilevel-lsh --example parameter_tuning
//! ```

use bilevel_lsh::{evaluate_index, ground_truth, BiLevelConfig, BiLevelIndex, WidthMode};
use lsh::{collision_probability, recall_model, DistanceProfile, TuningGoal};
use vecstore::synth::{self, ClusteredSpec};

fn main() {
    // Strongly heterogeneous densities: scale_skew 6 means the most diffuse
    // cluster is ~36x the scale of the tightest.
    let spec = ClusteredSpec { scale_skew: 6.0, ..ClusteredSpec::benchmark(64, 4_400) };
    let corpus = synth::clustered(&spec, 13);
    let (data, queries) = corpus.split_at(4_000);
    let k = 20;

    // --- The model itself -------------------------------------------------
    let profile = DistanceProfile::fit(&data, k, 300);
    println!("distance profile: d_knn = {:.2}, d_any = {:.2}", profile.d_knn, profile.d_any);
    println!("\np-stable collision model at the k-NN distance:");
    println!("| W / d_knn | per-hash p | modeled recall (M=8, L=10) |");
    println!("|---|---|---|");
    for mult in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let w = profile.d_knn * mult;
        println!(
            "| {mult:.0} | {:.3} | {:.3} |",
            collision_probability(profile.d_knn, w),
            recall_model(profile.d_knn, w, 8, 10),
        );
    }
    let w90 = lsh::tune_w(&profile, 8, 10, TuningGoal::Recall(0.9));
    println!("\nW for a 90% modeled recall target: {w90:.1}");

    // --- The three width modes on the real index --------------------------
    println!("\ncomputing ground truth…");
    let truth = ground_truth(&data, &queries, k, 1);
    let base = w90 as f32;
    let modes: [(&str, WidthMode); 3] = [
        ("Fixed (one global W)", WidthMode::Fixed(base)),
        ("Scaled (per-leaf ∝ local d_knn)", WidthMode::Scaled { base, k }),
        ("Tuned (per-leaf, model-driven)", WidthMode::Tuned { target_recall: 0.9, k }),
    ];
    println!("\n| width mode | recall | selectivity | recall per 1% selectivity |");
    println!("|---|---|---|---|");
    for (name, width) in modes {
        let cfg = BiLevelConfig { width, ..BiLevelConfig::paper_default(base) };
        let index = BiLevelIndex::build(&data, &cfg);
        let evals = evaluate_index(&index, &queries, &truth, k);
        let n = evals.len() as f64;
        let recall = evals.iter().map(|e| e.recall).sum::<f64>() / n;
        let tau = evals.iter().map(|e| e.selectivity).sum::<f64>() / n;
        println!("| {name} | {recall:.3} | {tau:.4} | {:.2} |", recall / (100.0 * tau).max(1e-9));
    }

    // Peek at the adapted widths.
    let cfg = BiLevelConfig {
        width: WidthMode::Tuned { target_recall: 0.9, k },
        ..BiLevelConfig::paper_default(base)
    };
    let index = BiLevelIndex::build(&data, &cfg);
    let widths = index.group_widths();
    let min = widths.iter().copied().fold(f32::INFINITY, f32::min);
    let max = widths.iter().copied().fold(0.0f32, f32::max);
    println!(
        "\ntuned per-leaf widths span {min:.1} … {max:.1} ({}x) across {} leaves — \
         the heterogeneity a single global W cannot serve",
        (max / min).round(),
        widths.len(),
    );
}
