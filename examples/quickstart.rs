//! Quickstart: build a Bi-level LSH index over a synthetic feature corpus
//! and run a k-nearest-neighbor query.
//!
//! ```sh
//! cargo run --release -p bilevel-lsh --example quickstart
//! ```

use bilevel_lsh::{ground_truth, BiLevelConfig, BiLevelIndex, Engine, QueryOptions};
use knn_metrics::recall;
use std::time::Instant;
use vecstore::synth::{self, ClusteredSpec};

fn main() {
    // 1. Get some data. In a real application these would be image/audio
    //    descriptors; here we generate a GIST-like synthetic corpus:
    //    5 000 vectors in 64 dimensions with low intrinsic dimension.
    let corpus = synth::clustered(&ClusteredSpec::benchmark(64, 5_200), 42);
    let (data, queries) = corpus.split_at(5_000);
    println!("corpus: {} vectors, dim {}", data.len(), data.dim());

    // 2. Build the index with the paper's defaults: a 16-leaf RP-tree on
    //    level 1 and L = 10 hash tables with M = 8 p-stable hashes on
    //    level 2. The bucket width W controls the quality/cost trade-off.
    let config = BiLevelConfig::paper_default(60.0);
    let index = BiLevelIndex::build(&data, &config);
    println!(
        "index: {} groups, L = {}, per-group widths {:?}…",
        index.num_groups(),
        config.l,
        &index.group_widths()[..4.min(index.group_widths().len())],
    );

    // 3. Query: the 10 approximate nearest neighbors of the first held-out
    //    vector, sorted by true Euclidean distance.
    let hits = index.query(queries.row(0), 10);
    println!("\n10-NN of query 0:");
    for n in &hits {
        println!("  id {:>5}  distance {:.4}", n.id, n.dist);
    }

    // 4. Measure quality against exact brute force on the whole query set.
    let truth = ground_truth(&data, &queries, 10, 1);
    let result = index.query_batch_opts(&queries, &QueryOptions::new(10));
    let mean_recall: f64 =
        truth.iter().zip(&result.neighbors).map(|(t, a)| recall(t, a)).sum::<f64>()
            / truth.len() as f64;
    let mean_selectivity: f64 = result.candidates.iter().map(|&c| c as f64).sum::<f64>()
        / (result.candidates.len() as f64 * data.len() as f64);
    println!(
        "\nbatch of {} queries: recall {:.3} at selectivity {:.4} \
         (scanned {:.1}% of the data per query instead of 100%)",
        queries.len(),
        mean_recall,
        mean_selectivity,
        mean_selectivity * 100.0,
    );

    // 5. Engine selection. One `Engine` choice drives the whole pipeline —
    //    candidate generation *and* short-list ranking run on its worker
    //    count — and every engine returns identical results; only the wall
    //    clock differs.
    let engines = [
        ("serial", Engine::Serial),
        ("per-query ×4", Engine::PerQuery { threads: 4 }),
        ("work-queue ×4", Engine::WorkQueue { threads: 4, capacity: 1 << 16 }),
    ];
    println!("\nengine comparison over the same batch:");
    for (label, engine) in engines {
        let t = Instant::now();
        let res = index.query_batch_opts(&queries, &QueryOptions::new(10).engine(engine));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(res.neighbors, result.neighbors, "engines must agree");
        println!("  {label:<14} {ms:>7.1} ms");
    }
}
