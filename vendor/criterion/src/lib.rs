//! Offline stand-in for `criterion`: the benchmark harness API surface
//! this workspace uses, executing each benchmark body a handful of times
//! and printing a rough wall-clock figure. Good enough for `cargo bench`
//! to compile and smoke-run; real measurements come from the `bench`
//! crate's own `ext_*` harnesses.

use std::fmt::Display;
use std::time::Instant;

/// Number of timed executions per benchmark body.
const RUNS: u32 = 3;

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into() }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted and ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted and ignored by the stub).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Declares the throughput basis (accepted and ignored by the stub).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher { total_runs: 0 };
    let start = Instant::now();
    for _ in 0..RUNS {
        f(&mut b);
    }
    let elapsed = start.elapsed();
    let per = if b.total_runs > 0 { elapsed / b.total_runs } else { elapsed };
    println!("bench {label}: ~{per:?}/iter over {} iters (stub harness)", b.total_runs.max(1));
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    total_runs: u32,
}

impl Bencher {
    /// Times `routine`, keeping its output live via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.total_runs += 1;
        black_box(routine());
    }
}

/// A two-part benchmark identifier, `function_name/parameter`.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { function_name: function_name.into(), parameter: parameter.to_string() }
    }

    /// Builds an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { function_name: String::new(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Throughput basis for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_round_trips() {
        let mut c = Criterion::default();
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).throughput(Throughput::Elements(5));
            g.bench_function("one", |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::new("two", 8), &8, |b, &x| b.iter(|| calls += x));
            g.finish();
        }
        assert!(calls > 0);
    }
}
