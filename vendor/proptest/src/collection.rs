//! Collection strategies.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Size specification for collection strategies: an exact length or a
/// range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut StdRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty collection size range");
        Self { lo, hi: hi + 1 }
    }
}

/// A strategy for `Vec`s of `element` values with length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// A strategy for `HashMap`s with `size.into()` entries (duplicate keys
/// are redrawn a bounded number of times, then collapsed).
pub fn hash_map<K: Strategy, V: Strategy>(
    keys: K,
    values: V,
    size: impl Into<SizeRange>,
) -> HashMapStrategy<K, V> {
    HashMapStrategy { keys, values, size: size.into() }
}

/// Strategy returned by [`hash_map`].
pub struct HashMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for HashMapStrategy<K, V>
where
    K: Strategy,
    K::Value: std::hash::Hash + Eq,
    V: Strategy,
{
    type Value = std::collections::HashMap<K::Value, V::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.draw(rng);
        let mut map = std::collections::HashMap::with_capacity(n);
        let mut attempts = 0usize;
        while map.len() < n && attempts < n * 4 + 16 {
            map.insert(self.keys.gen_value(rng), self.values.gen_value(rng));
            attempts += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        let mut rng = crate::test_rng("vec_sizes");
        let exact = vec(0.0f32..1.0, 6);
        let ranged = vec(0i32..5, 2..9);
        for _ in 0..100 {
            assert_eq!(exact.gen_value(&mut rng).len(), 6);
            let v = ranged.gen_value(&mut rng);
            assert!((2..9).contains(&v.len()), "{}", v.len());
        }
    }

    #[test]
    fn hash_map_hits_requested_sizes() {
        let mut rng = crate::test_rng("map_sizes");
        let s = hash_map(0u64..u64::MAX - 1, crate::any::<u64>(), 0..40);
        for _ in 0..50 {
            assert!(s.gen_value(&mut rng).len() < 40);
        }
    }
}
