//! Offline stand-in for `proptest`: runs each property over N random cases
//! drawn from the declared strategies. No shrinking — a failing case
//! reports the panic message of the underlying assertion (the `proptest!`
//! harness prints the case index so failures stay reproducible: the RNG is
//! seeded from the test name, deterministically).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Everything tests import: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    /// Module alias so `prop::collection::vec(...)` resolves.
    pub use crate as prop;
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of an associated type.
///
/// The stub has no value trees or shrinking: a strategy simply draws a
/// fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// A strategy generating a value, building a second strategy from it
    /// with `f`, and drawing from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.gen_value(rng)).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut StdRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::uniform::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::uniform::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical whole-domain strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-symmetric, spanning small and large magnitudes.
        let mag = rng.gen_range(-30.0f32..30.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * mag.exp2() * rng.gen_range(0.0f32..1.0)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mag = rng.gen_range(-60.0f64..60.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * mag.exp2() * rng.gen_range(0.0f64..1.0)
    }
}

/// The whole-domain strategy for `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Deterministic per-test RNG: seeded from the test's name so each
/// property gets its own reproducible stream.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over N strategy-drawn cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::test_rng("bounds");
        let s = (1usize..4, -2.0f32..2.0, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = s.gen_value(&mut rng);
            assert!((1..4).contains(&a));
            assert!((-2.0..2.0).contains(&b));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::test_rng("compose");
        let s = (2usize..5).prop_flat_map(|n| {
            crate::collection::vec(0.0f32..1.0, n).prop_map(move |v| (n, v))
        });
        for _ in 0..50 {
            let (n, v) = s.gen_value(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_every_pattern(x in 0usize..10, (lo, hi) in (0.0f32..1.0, 2.0f32..3.0)) {
            prop_assert!(x < 10);
            prop_assert!(lo < hi);
            prop_assert_eq!(x, x);
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::Strategy;
    use rand::rngs::StdRng;

    /// A strategy for `[T; N]` drawing every element from `element`.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            std::array::from_fn(|_| self.0.gen_value(rng))
        }
    }

    /// An 8-element array strategy.
    pub fn uniform8<S: Strategy>(element: S) -> UniformArray<S, 8> {
        UniformArray(element)
    }

    /// A 4-element array strategy.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray(element)
    }

    /// A 16-element array strategy.
    pub fn uniform16<S: Strategy>(element: S) -> UniformArray<S, 16> {
        UniformArray(element)
    }

    /// A 32-element array strategy.
    pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
        UniformArray(element)
    }
}
