//! Distributions and uniform range sampling.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value using `rng` as the entropy source.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution per type: uniform `[0, 1)` for floats, the
/// full value range for integers, a fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 explicit mantissa bits: every value representable, none >= 1.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform range sampling.
pub mod uniform {
    use crate::Rng;

    /// Types that can be drawn uniformly from a range.
    pub trait SampleUniform: Copy + PartialOrd {
        /// A value uniform over `[lo, hi)`, or `[lo, hi]` when `inclusive`.
        fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
            -> Self;
    }

    /// Range arguments accepted by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_between(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "cannot sample empty range");
            T::sample_between(rng, lo, hi, true)
        }
    }

    impl SampleUniform for f32 {
        fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: f32, hi: f32, _incl: bool) -> f32 {
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            let v = lo + (hi - lo) * unit;
            // Rounding can land exactly on `hi` for huge spans; clamp the
            // half-open contract back.
            if v >= hi && lo < hi {
                lo.max(hi - (hi - lo) * f32::EPSILON)
            } else {
                v
            }
        }
    }

    impl SampleUniform for f64 {
        fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64, _incl: bool) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = lo + (hi - lo) * unit;
            if v >= hi && lo < hi {
                lo.max(hi - (hi - lo) * f64::EPSILON)
            } else {
                v
            }
        }
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: Rng + ?Sized>(
                    rng: &mut R,
                    lo: $t,
                    hi: $t,
                    inclusive: bool,
                ) -> $t {
                    // i128 arithmetic sidesteps span overflow for every
                    // 64-bit-or-smaller integer type.
                    let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                    debug_assert!(span > 0);
                    // Modulo bias is ~span/2^64 — irrelevant for test and
                    // synthetic-data sampling.
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&a));
            let b = rng.gen_range(1usize..=12);
            assert!((1..=12).contains(&b));
            let c = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&c));
            let d = rng.gen_range(0u64..u64::MAX - 1);
            assert!(d < u64::MAX - 1);
        }
    }

    #[test]
    fn gen_range_covers_the_span() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
