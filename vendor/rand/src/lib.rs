//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds without registry access; this stub provides the
//! pieces it actually uses — `StdRng` (deterministic, seeded via
//! `seed_from_u64`), the `Rng`/`RngCore`/`SeedableRng` traits, the
//! `Distribution`/`Standard` machinery, and `gen_range` over integer and
//! float ranges. The generator is xoshiro256** seeded through SplitMix64:
//! not the upstream ChaCha stream, but deterministic, well-distributed, and
//! entirely sufficient for hashing/synthetic-data use. Nothing in the repo
//! bakes in upstream `StdRng` output; determinism tests only require that
//! equal seeds give equal streams.

pub mod distributions;
pub mod rngs;

pub use distributions::uniform;

/// Core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value sampled from the [`distributions::Standard`] distribution
    /// (uniform `[0, 1)` for floats, full range for integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// A value uniform over `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A value sampled from `distr`.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}
