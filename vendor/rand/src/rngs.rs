//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's deterministic generator: xoshiro256** with SplitMix64
/// seed expansion. Equal seeds give equal streams on every platform.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step — the recommended seeder for xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y), "{y}");
        }
    }
}
