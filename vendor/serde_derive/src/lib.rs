//! No-op derive macros matching the stub `serde` crate, whose traits are
//! blanket-implemented — deriving them therefore needs to emit nothing.
//! `#[serde(...)]` attributes are accepted and ignored.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing (the stub trait has a
/// blanket impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing (the stub trait has
/// a blanket impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
