//! Offline stand-in for `serde_json`: every entry point compiles against
//! any type and fails at runtime with [`Error`].
//!
//! The workspace's product formats are hand-rolled (`core::binio` for the
//! v2 snapshot, `core::jsonio` + `bench::record` for benchmark JSON); only
//! the legacy v1 JSON snapshot path calls into serde_json, and its tests
//! probe `to_vec(&1u32).is_ok()` to detect this stub and skip.

use std::fmt;

/// The single error this stub produces.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json backend unavailable in offline builds (stub crate)")
    }
}

impl std::error::Error for Error {}

/// Stub result alias matching the upstream signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

/// Always fails: the stub has no serializer.
pub fn to_vec<T: ?Sized>(_value: &T) -> Result<Vec<u8>> {
    Err(Error)
}

/// Always fails: the stub has no serializer.
pub fn to_string<T: ?Sized>(_value: &T) -> Result<String> {
    Err(Error)
}

/// Always fails: the stub has no serializer.
pub fn to_writer<W, T: ?Sized>(_writer: W, _value: &T) -> Result<()> {
    Err(Error)
}

/// Always fails: the stub has no deserializer.
pub fn from_reader<R, T>(_reader: R) -> Result<T> {
    Err(Error)
}

/// Always fails: the stub has no deserializer.
pub fn from_str<T>(_s: &str) -> Result<T> {
    Err(Error)
}

/// Always fails: the stub has no deserializer.
pub fn from_slice<T>(_v: &[u8]) -> Result<T> {
    Err(Error)
}

#[cfg(test)]
mod tests {
    #[test]
    fn backend_reports_unavailable() {
        assert!(super::to_vec(&1u32).is_err());
        assert!(super::from_str::<u32>("1").is_err());
        assert!(super::to_vec(&1u32).unwrap_err().to_string().contains("offline"));
    }
}
