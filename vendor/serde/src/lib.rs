//! Offline stand-in for `serde`.
//!
//! `Serialize`/`Deserialize` are marker traits blanket-implemented for all
//! types, so derives and trait bounds compile everywhere; the companion
//! `serde_json` stub then fails *at runtime* with a clear error. Binary
//! persistence in this workspace is hand-rolled and never touches serde —
//! only the legacy JSON snapshot paths do, and their tests detect the stub
//! and skip.

/// Marker for serializable types. Blanket-implemented: every type
/// qualifies, no structural information is recorded.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Deserialization helpers.
pub mod de {
    /// Marker for types deserializable without borrowing.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
