//! Offline stand-in for `parking_lot`: the no-poison `Mutex`/`RwLock` API
//! over `std::sync` primitives. A lock held by a panicked thread is simply
//! re-acquired (parking_lot semantics) rather than surfacing a poison
//! error.

use std::ops::{Deref, DerefMut};

/// Mutual exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (the borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
