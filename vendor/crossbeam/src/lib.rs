//! Offline stand-in for the `crossbeam` crate: the `thread::scope` subset
//! this workspace uses, implemented over `std::thread::scope` (stabilized
//! long after crossbeam popularized the pattern).

/// Scoped threads.
pub mod thread {
    /// Result of joining a scoped thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to the closure of [`scope`]; spawn borrows
    /// from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to the enclosing [`scope`] call. The
        /// closure's argument is the nested-spawn handle slot of the
        /// crossbeam API; every call site here ignores it.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&())) }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all of them are joined before this returns.
    ///
    /// Unlike upstream crossbeam, a panicking child propagates the panic
    /// out of `scope` (std semantics) instead of surfacing as `Err` — call
    /// sites here treat both identically (they `expect` the result).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1, 2, 3, 4];
        let total: i32 = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<i32>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn unjoined_spawns_still_complete_before_scope_returns() {
        let mut out = vec![0u32; 8];
        crate::thread::scope(|s| {
            for slot in out.iter_mut() {
                s.spawn(move |_| *slot = 7);
            }
        })
        .unwrap();
        assert!(out.iter().all(|&x| x == 7));
    }
}
