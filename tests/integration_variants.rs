//! Every method variant the paper evaluates — six probing/partitioning
//! combinations × two lattices — must build, query, and produce sane
//! metrics on one shared scenario.

use bilevel_lsh::{
    ground_truth, BiLevelConfig, BiLevelIndex, Partition, Probe, Quantizer, QueryOptions, WidthMode,
};
use knn_metrics::recall;
use rptree::SplitRule;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::Dataset;

fn corpus() -> (Dataset, Dataset) {
    let all = synth::clustered(&ClusteredSpec::benchmark(32, 1_100), 5);
    all.split_at(1_000)
}

fn variant(partition: bool, probe: Probe, quantizer: Quantizer, w: f32) -> BiLevelConfig {
    BiLevelConfig {
        l: 8,
        m: 8,
        width: WidthMode::Fixed(w),
        partition: if partition {
            Partition::RpTree { groups: 8, rule: SplitRule::Max }
        } else {
            Partition::None
        },
        quantizer,
        probe,
        table_pool: None,
        projection: bilevel_lsh::Projection::Dense,
        metric: bilevel_lsh::MetricKind::L2,
        family: bilevel_lsh::FamilyKind::PStable,
        seed: 0x7e57,
    }
}

#[test]
fn all_twelve_variants_build_and_answer() {
    let (data, queries) = corpus();
    let truth = ground_truth(&data, &queries, 10, 1);
    for quantizer in [Quantizer::Zm, Quantizer::E8] {
        for partition in [false, true] {
            for probe in [Probe::Home, Probe::Multi(32), Probe::Hierarchical { min_candidates: 8 }]
            {
                let cfg = variant(partition, probe, quantizer, 40.0);
                let index = BiLevelIndex::build(&data, &cfg);
                let result = index.query_batch_opts(&queries, &QueryOptions::new(10));
                assert_eq!(result.neighbors.len(), queries.len());
                let mean: f64 =
                    truth.iter().zip(&result.neighbors).map(|(t, a)| recall(t, a)).sum::<f64>()
                        / truth.len() as f64;
                assert!(
                    mean > 0.05,
                    "variant ({quantizer:?}, partition={partition}, {probe:?}) recall {mean}"
                );
            }
        }
    }
}

#[test]
fn multiprobe_never_probes_fewer_candidates_than_home() {
    let (data, queries) = corpus();
    for quantizer in [Quantizer::Zm, Quantizer::E8] {
        let home = BiLevelIndex::build(&data, &variant(false, Probe::Home, quantizer, 30.0));
        let multi = BiLevelIndex::build(&data, &variant(false, Probe::Multi(64), quantizer, 30.0));
        let ch = home.candidates_batch(&queries);
        let cm = multi.candidates_batch(&queries);
        for (q, (h, m)) in ch.iter().zip(&cm).enumerate() {
            assert!(m.len() >= h.len(), "query {q}: multiprobe shrank the candidate set");
            // Home candidates are a subset of multiprobe candidates.
            for id in h {
                assert!(m.binary_search(id).is_ok(), "query {q} lost home candidate {id}");
            }
        }
    }
}

#[test]
fn hierarchical_probe_reduces_candidate_count_variance() {
    let (data, queries) = corpus();
    // Narrow W: many queries starve without escalation.
    let home = BiLevelIndex::build(&data, &variant(true, Probe::Home, Quantizer::Zm, 10.0));
    let hier = BiLevelIndex::build(
        &data,
        &variant(true, Probe::Hierarchical { min_candidates: 4 }, Quantizer::Zm, 10.0),
    );
    let starved = |cands: &[Vec<u32>]| cands.iter().filter(|c| c.len() < 4).count();
    let sh = starved(&home.candidates_batch(&queries));
    let se = starved(&hier.candidates_batch(&queries));
    assert!(se <= sh, "escalation should not increase starved queries (home {sh}, hier {se})");
}

#[test]
fn e8_and_zm_quantizers_give_different_but_working_indexes() {
    let (data, queries) = corpus();
    let truth = ground_truth(&data, &queries, 10, 1);
    let zm = BiLevelIndex::build(&data, &variant(false, Probe::Home, Quantizer::Zm, 40.0));
    let e8 = BiLevelIndex::build(&data, &variant(false, Probe::Home, Quantizer::E8, 40.0));
    let rz = zm.query_batch_opts(&queries, &QueryOptions::new(10));
    let re = e8.query_batch_opts(&queries, &QueryOptions::new(10));
    let mean = |r: &bilevel_lsh::BatchResult| {
        truth.iter().zip(&r.neighbors).map(|(t, a)| recall(t, a)).sum::<f64>() / truth.len() as f64
    };
    assert!(mean(&rz) > 0.1);
    assert!(mean(&re) > 0.1);
    // Different quantizers should not produce byte-identical candidates.
    assert_ne!(rz.candidates, re.candidates);
}

#[test]
fn kmeans_and_kd_level1_work_in_full_variants() {
    let (data, queries) = corpus();
    for partition in [Partition::KMeans { groups: 8 }, Partition::Kd { groups: 8 }] {
        let mut cfg = variant(false, Probe::Home, Quantizer::Zm, 40.0);
        cfg.partition = partition;
        let index = BiLevelIndex::build(&data, &cfg);
        assert!(index.num_groups() > 1);
        let result = index.query_batch_opts(&queries, &QueryOptions::new(5));
        assert_eq!(result.neighbors.len(), queries.len());
    }
}
