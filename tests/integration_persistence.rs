//! Persistence and out-of-core integration: snapshot round-trips across
//! method variants, and the disk-resident index agreeing with the in-memory
//! one over the same corpus file.

use bilevel_lsh::{
    BiLevelConfig, BiLevelIndex, Engine, FlatIndex, OocFlatIndex, Probe, Quantizer, QueryOptions,
};
use vecstore::io::write_fvecs;
use vecstore::ooc::OocDataset;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::Dataset;

fn corpus() -> (Dataset, Dataset) {
    synth::clustered(&ClusteredSpec::benchmark(32, 1_100), 71).split_at(1_000)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("bilevel_integration_persist");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn snapshot_roundtrip_preserves_answers_across_variants() {
    let (data, queries) = corpus();
    let variants = [
        BiLevelConfig::standard(40.0),
        BiLevelConfig::paper_default(40.0),
        BiLevelConfig::paper_default(40.0).quantizer(Quantizer::E8),
        BiLevelConfig::paper_default(40.0).probe(Probe::Multi(16)),
        BiLevelConfig::paper_default(40.0).probe(Probe::Hierarchical { min_candidates: 8 }),
    ];
    for (i, cfg) in variants.iter().enumerate() {
        let index = BiLevelIndex::build(&data, cfg);
        let mut buf = Vec::new();
        index.save_to(&mut buf).unwrap();
        let loaded = BiLevelIndex::load_from(&data, buf.as_slice()).unwrap();
        let a = index.query_batch_opts(&queries, &QueryOptions::new(10));
        let b = loaded.query_batch_opts(&queries, &QueryOptions::new(10));
        assert_eq!(a.neighbors, b.neighbors, "variant {i}");
        assert_eq!(a.candidates, b.candidates, "variant {i}");
    }
}

#[test]
fn snapshot_survives_disk_roundtrip_and_reload_can_insert() {
    let (data, queries) = corpus();
    let cfg = BiLevelConfig::standard(40.0);
    let index = BiLevelIndex::build(&data, &cfg);
    let path = temp_path("idx.json");
    index.save(&path).unwrap();
    let mut loaded = BiLevelIndex::load(&data, &path).unwrap();
    std::fs::remove_file(&path).ok();
    // The reloaded index accepts inserts (cloning the borrowed data).
    let novel = vec![55.5f32; 32];
    let id = loaded.insert(&novel);
    assert_eq!(id, data.len());
    let hit = loaded.query(&novel, 1);
    assert_eq!(hit[0].id, id);
    // Old queries still answer.
    assert_eq!(
        loaded.query_batch_opts(&queries, &QueryOptions::new(3)).neighbors.len(),
        queries.len()
    );
}

#[test]
fn ooc_index_agrees_with_memory_index_over_same_file() {
    let (data, queries) = corpus();
    let path = temp_path("corpus.fvecs");
    write_fvecs(&path, &data).unwrap();
    let source = OocDataset::open(&path).unwrap();
    for quantizer in [Quantizer::Zm, Quantizer::E8] {
        let cfg = BiLevelConfig::paper_default(40.0).quantizer(quantizer);
        let ooc = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();
        let mem = FlatIndex::build(&data, &cfg);
        for q in queries.iter().take(50) {
            assert_eq!(ooc.candidates(q), mem.candidates(q), "quantizer {quantizer:?}");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn ooc_snapshot_roundtrip_preserves_batch_answers() {
    let (data, queries) = corpus();
    let path = temp_path("corpus_snap.fvecs");
    write_fvecs(&path, &data).unwrap();
    let source = OocDataset::open(&path).unwrap();
    let cfg = BiLevelConfig::paper_default(40.0).probe(Probe::Multi(8));
    let built = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();

    let snap_path = temp_path("ooc.snap");
    built.save(&snap_path).unwrap();
    let loaded = OocFlatIndex::load(&source, &snap_path).unwrap();
    std::fs::remove_file(&snap_path).ok();

    // Coalesced threaded batch on the reloaded index matches the serial
    // per-row baseline on the freshly built one — exercising persistence
    // and the batch fetch path end to end.
    let baseline = built.query_batch_per_row(&queries, 10).unwrap();
    let batched = loaded
        .query_batch_opts(&queries, &QueryOptions::new(10).engine(Engine::PerQuery { threads: 4 }))
        .unwrap();
    assert_eq!(baseline.len(), batched.len());
    for (a, b) in baseline.iter().zip(&batched) {
        assert_eq!(
            a.iter().map(|n| (n.id, n.dist)).collect::<Vec<_>>(),
            b.iter().map(|n| (n.id, n.dist)).collect::<Vec<_>>()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn ooc_query_results_match_in_memory_distances() {
    let (data, queries) = corpus();
    let path = temp_path("corpus2.fvecs");
    write_fvecs(&path, &data).unwrap();
    let source = OocDataset::open(&path).unwrap();
    let cfg = BiLevelConfig::standard(40.0);
    let ooc = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();
    let mem = BiLevelIndex::build(&data, &cfg);
    for q in queries.iter().take(25) {
        let a = ooc.query(q, 5).unwrap();
        let b = mem.query(q, 5);
        assert_eq!(
            a.iter().map(|n| n.id).collect::<Vec<_>>(),
            b.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        for (x, y) in a.iter().zip(&b) {
            assert!((x.dist - y.dist).abs() < 1e-4);
        }
    }
    std::fs::remove_file(&path).ok();
}
