//! Storage-layer integration: fvecs interchange, config serialization, and
//! the cuckoo-backed flat layout under stress.

use bilevel_lsh::{BiLevelConfig, BiLevelIndex, FlatIndex, Probe, Quantizer, QueryOptions};
use vecstore::io::{read_fvecs_from, write_fvecs_to};
use vecstore::synth::{self, ClusteredSpec};
use vecstore::Dataset;

fn corpus() -> (Dataset, Dataset) {
    let all = synth::clustered(&ClusteredSpec::benchmark(32, 1_100), 31);
    all.split_at(1_000)
}

#[test]
fn index_built_from_fvecs_roundtrip_matches_original() {
    let (data, queries) = corpus();
    // Serialize the corpus to the fvecs interchange format and back; the
    // rebuilt index must answer identically (f32 values are preserved
    // exactly by the format).
    let mut buf = Vec::new();
    write_fvecs_to(&mut buf, &data).unwrap();
    let reloaded = read_fvecs_from(&mut buf.as_slice()).unwrap();
    assert_eq!(reloaded, data);
    let cfg = BiLevelConfig::paper_default(40.0);
    let a = BiLevelIndex::build(&data, &cfg).query_batch_opts(&queries, &QueryOptions::new(10));
    let b = BiLevelIndex::build(&reloaded, &cfg).query_batch_opts(&queries, &QueryOptions::new(10));
    assert_eq!(a.neighbors, b.neighbors);
}

#[test]
fn config_serializes_and_deserializes() {
    let cfg = BiLevelConfig::paper_default(2.5)
        .tables(30)
        .probe(Probe::Multi(240))
        .quantizer(Quantizer::E8);
    let json = cfg.to_json();
    let back = BiLevelConfig::from_json(&json).unwrap();
    assert_eq!(back.l, cfg.l);
    assert_eq!(back.m, cfg.m);
    assert_eq!(back.probe, cfg.probe);
    assert_eq!(back.quantizer, cfg.quantizer);
    assert_eq!(back.partition, cfg.partition);
    // When a real serde_json backend is present, the hand-rolled document
    // must agree with the derive in both directions. (The repo also builds
    // against a stubbed serde_json that errors on every call; the document
    // shape itself is what's under test there, via `from_json` above.)
    if let Ok(derived) = serde_json::to_string(&cfg) {
        assert_eq!(derived, json, "hand-rolled JSON diverged from serde derive");
        let via_serde: BiLevelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(via_serde.probe, cfg.probe);
    }
    // The deserialized config must drive an identical index.
    let (data, queries) = corpus();
    let a = BiLevelIndex::build(&data, &cfg).query_batch_opts(&queries, &QueryOptions::new(5));
    let b = BiLevelIndex::build(&data, &back).query_batch_opts(&queries, &QueryOptions::new(5));
    assert_eq!(a.neighbors, b.neighbors);
}

#[test]
fn flat_index_bucket_accounting() {
    let (data, _) = corpus();
    let cfg = BiLevelConfig::paper_default(40.0);
    let flat = FlatIndex::build(&data, &cfg);
    // Every (item, table) pair appears exactly once in the linear array.
    assert_eq!(flat.linear_len(), data.len() * cfg.l);
    // There is at least one bucket per table and at most one per pair.
    assert!(flat.num_buckets() >= cfg.l);
    assert!(flat.num_buckets() <= flat.linear_len());
}

#[test]
fn flat_index_handles_narrow_and_wide_widths() {
    let (data, queries) = corpus();
    // Narrow: almost every pair is its own bucket (stress for the cuckoo
    // table: ~n·L distinct keys).
    let narrow = FlatIndex::build(&data, &BiLevelConfig::standard(0.5));
    // Wide: one giant bucket per table.
    let wide = FlatIndex::build(&data, &BiLevelConfig::standard(1e7));
    let cn = narrow.candidates_batch(&queries);
    let cw = wide.candidates_batch(&queries);
    for (n, w) in cn.iter().zip(&cw) {
        assert!(n.len() <= w.len());
        assert_eq!(w.len(), data.len(), "wide buckets must cover the whole dataset");
    }
}

#[test]
fn dataset_gather_preserves_index_semantics() {
    // Building over a gathered (copied) subset answers the same as building
    // over an equal dataset constructed row by row.
    let (data, queries) = corpus();
    let ids: Vec<usize> = (0..500).collect();
    let subset_a = data.gather(&ids);
    let mut subset_b = Dataset::new(data.dim());
    for &i in &ids {
        subset_b.push(data.row(i));
    }
    assert_eq!(subset_a, subset_b);
    let cfg = BiLevelConfig::standard(40.0);
    let a = BiLevelIndex::build(&subset_a, &cfg).query_batch_opts(&queries, &QueryOptions::new(5));
    let b = BiLevelIndex::build(&subset_b, &cfg).query_batch_opts(&queries, &QueryOptions::new(5));
    assert_eq!(a.neighbors, b.neighbors);
}
