//! End-to-end pipeline integration: synthetic corpus → level-1 partition →
//! level-2 tables → probing → short-list engines → metrics, spanning every
//! crate in the workspace.

use bilevel_lsh::{
    ground_truth, BiLevelConfig, BiLevelIndex, Engine, FlatIndex, Probe, Quantizer, QueryOptions,
};
use knn_metrics::{error_ratio, recall};
use shortlist::{shortlist_per_query, shortlist_serial, shortlist_workqueue};
use vecstore::synth::{self, ClusteredSpec};
use vecstore::{Dataset, SquaredL2};

fn corpus() -> (Dataset, Dataset) {
    let all = synth::clustered(&ClusteredSpec::benchmark(32, 1_200), 99);
    all.split_at(1_000)
}

#[test]
fn full_pipeline_beats_random_guessing() {
    let (data, queries) = corpus();
    let truth = ground_truth(&data, &queries, 10, 1);
    let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(40.0));
    let result = index.query_batch_opts(&queries, &QueryOptions::new(10));
    let mean_recall: f64 =
        truth.iter().zip(&result.neighbors).map(|(t, a)| recall(t, a)).sum::<f64>()
            / truth.len() as f64;
    // A working LSH index at moderate W must vastly outperform chance
    // (chance recall here would be ~ candidates/n ≈ a few percent).
    assert!(mean_recall > 0.3, "pipeline recall {mean_recall} too low");
    let mean_err: f64 =
        truth.iter().zip(&result.neighbors).map(|(t, a)| error_ratio(t, a)).sum::<f64>()
            / truth.len() as f64;
    assert!(mean_err > 0.3, "pipeline error ratio {mean_err} too low");
}

#[test]
fn candidate_sets_feed_all_three_engines_identically() {
    let (data, queries) = corpus();
    let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(40.0));
    let candidates = index.candidates_batch(&queries);
    let serial = shortlist_serial(&data, &queries, &candidates, 10, &SquaredL2);
    let per_query = shortlist_per_query(&data, &queries, &candidates, 10, &SquaredL2, 3);
    let workqueue = shortlist_workqueue(&data, &queries, &candidates, 10, &SquaredL2, 2, 4_096);
    assert_eq!(serial, per_query);
    assert_eq!(serial, workqueue);
}

#[test]
fn flat_storage_is_equivalent_to_table_storage_end_to_end() {
    let (data, queries) = corpus();
    let cfg = BiLevelConfig::paper_default(40.0);
    let table = BiLevelIndex::build(&data, &cfg);
    let flat = FlatIndex::build(&data, &cfg);
    let a = table.candidates_batch(&queries);
    let b = flat.candidates_batch(&queries);
    assert_eq!(a, b, "flat (cuckoo) storage must reproduce table candidates");
}

#[test]
fn exhaustive_width_recovers_exact_knn() {
    let (data, queries) = corpus();
    let truth = ground_truth(&data, &queries, 5, 1);
    // W large enough that every point shares one bucket per table.
    let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(1e7));
    let result = index.query_batch_opts(&queries, &QueryOptions::new(5));
    for (q, (t, a)) in truth.iter().zip(&result.neighbors).enumerate() {
        assert_eq!(
            t.iter().map(|n| n.id).collect::<Vec<_>>(),
            a.iter().map(|n| n.id).collect::<Vec<_>>(),
            "query {q} differs from exact search"
        );
    }
}

#[test]
fn threaded_probe_pipeline_is_deterministic_end_to_end() {
    let (data, queries) = corpus();
    for quantizer in [Quantizer::Zm, Quantizer::E8] {
        for probe in [Probe::Home, Probe::Multi(8), Probe::Hierarchical { min_candidates: 15 }] {
            let cfg = BiLevelConfig::paper_default(40.0).quantizer(quantizer).probe(probe);
            let index = BiLevelIndex::build(&data, &cfg);
            let serial = index.candidates_batch_with(&queries, 1);
            for threads in [2, 4, 8] {
                assert_eq!(
                    serial,
                    index.candidates_batch_with(&queries, threads),
                    "candidate drift at {threads} threads ({quantizer:?}, {probe:?})"
                );
            }
        }
    }
}

#[test]
fn one_engine_selection_governs_probe_and_rank() {
    let (data, queries) = corpus();
    let cfg = BiLevelConfig::paper_default(40.0).probe(Probe::Hierarchical { min_candidates: 20 });
    let index = BiLevelIndex::build(&data, &cfg);
    let k = 10;
    let serial = index.query_batch_opts(&queries, &QueryOptions::new(k));
    for engine in [
        Engine::PerQuery { threads: 4 },
        Engine::WorkQueue { threads: 4, capacity: 4_096 },
        Engine::WorkQueue { threads: 2, capacity: k + 1 }, // smallest legal queue
    ] {
        let got = index.query_batch_opts(&queries, &QueryOptions::new(k).engine(engine));
        assert_eq!(serial.neighbors, got.neighbors, "{engine:?}");
        assert_eq!(serial.candidates, got.candidates, "{engine:?}");
    }
}

#[test]
fn selectivity_counts_match_candidate_sets() {
    let (data, queries) = corpus();
    let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(40.0));
    let candidates = index.candidates_batch(&queries);
    let result = index.query_batch_opts(&queries, &QueryOptions::new(10));
    let sizes: Vec<usize> = candidates.iter().map(Vec::len).collect();
    assert_eq!(result.candidates, sizes);
}
