//! Quality-trend integration tests: the monotonicity and comparative
//! properties the paper's evaluation rests on, checked at test scale.

use bilevel_lsh::{
    evaluate_index, ground_truth, BiLevelConfig, BiLevelIndex, Partition, Quantizer, WidthMode,
};
use lsh::DistanceProfile;
use rptree::SplitRule;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::{Dataset, Neighbor};

struct Scenario {
    data: Dataset,
    queries: Dataset,
    truth: Vec<Vec<Neighbor>>,
    base_w: f32,
}

fn scenario() -> Scenario {
    let all = synth::clustered(&ClusteredSpec::benchmark(32, 2_200), 77);
    let (data, queries) = all.split_at(2_000);
    let truth = ground_truth(&data, &queries, 10, 1);
    let base_w = DistanceProfile::fit(&data, 10, 200).d_knn as f32;
    Scenario { data, queries, truth, base_w }
}

fn mean_metrics(s: &Scenario, cfg: &BiLevelConfig) -> (f64, f64) {
    let index = BiLevelIndex::build(&s.data, cfg);
    let evals = evaluate_index(&index, &s.queries, &s.truth, 10);
    let n = evals.len() as f64;
    (
        evals.iter().map(|e| e.recall).sum::<f64>() / n,
        evals.iter().map(|e| e.selectivity).sum::<f64>() / n,
    )
}

#[test]
fn recall_and_selectivity_grow_with_w() {
    let s = scenario();
    let mut last = (0.0, 0.0);
    for mult in [1.0f32, 4.0, 16.0] {
        let (recall, selectivity) = mean_metrics(&s, &BiLevelConfig::standard(s.base_w * mult));
        assert!(recall + 1e-9 >= last.0, "recall must grow with W");
        assert!(selectivity + 1e-9 >= last.1, "selectivity must grow with W");
        last = (recall, selectivity);
    }
    assert!(last.0 > 0.8, "widest setting should recall most neighbors, got {}", last.0);
}

#[test]
fn more_tables_increase_recall_at_fixed_w() {
    let s = scenario();
    let w = s.base_w * 3.0;
    let (r10, _) = mean_metrics(&s, &BiLevelConfig::standard(w).tables(5));
    let (r30, _) = mean_metrics(&s, &BiLevelConfig::standard(w).tables(20));
    assert!(r30 > r10, "L=20 recall {r30} should beat L=5 recall {r10}");
}

#[test]
fn bilevel_beats_standard_at_matched_low_selectivity() {
    // The headline claim (Figure 5) in its honest form: in the
    // low-selectivity regime (τ around 1% here — wider settings drift out
    // of the regime the claim is about and the comparison becomes noise),
    // the bi-level index extracts more recall per candidate than standard
    // LSH on heterogeneous clustered data.
    let s = scenario();
    let w = s.base_w * 1.5;
    let (std_recall, std_sel) = mean_metrics(&s, &BiLevelConfig::standard(w));
    let bilevel = BiLevelConfig {
        width: WidthMode::Scaled { base: w, k: 10 },
        partition: Partition::RpTree { groups: 32, rule: SplitRule::Max },
        ..BiLevelConfig::standard(w)
    };
    let (bi_recall, bi_sel) = mean_metrics(&s, &bilevel);
    let std_eff = std_recall / std_sel.max(1e-12);
    let bi_eff = bi_recall / bi_sel.max(1e-12);
    assert!(
        bi_eff > std_eff,
        "bi-level recall-per-selectivity {bi_eff:.1} (ρ={bi_recall:.3}, τ={bi_sel:.4}) \
         should beat standard {std_eff:.1} (ρ={std_recall:.3}, τ={std_sel:.4})"
    );
}

#[test]
fn partitioning_reduces_selectivity_at_same_w() {
    let s = scenario();
    let w = s.base_w * 8.0;
    let (_, std_sel) = mean_metrics(&s, &BiLevelConfig::standard(w));
    let bilevel = BiLevelConfig {
        partition: Partition::RpTree { groups: 16, rule: SplitRule::Max },
        ..BiLevelConfig::standard(w)
    };
    let (_, bi_sel) = mean_metrics(&s, &bilevel);
    assert!(
        bi_sel <= std_sel,
        "restricting candidates to the query's group must not raise selectivity \
         (standard {std_sel:.4}, bi-level {bi_sel:.4})"
    );
}

#[test]
fn e8_quantizer_is_competitive_with_zm() {
    // Section VI-B4a: E8 "offers better performance at times"; at minimum it
    // must be in the same quality league at comparable selectivity.
    let s = scenario();
    let w = s.base_w * 4.0;
    let (zm_recall, zm_sel) = mean_metrics(&s, &BiLevelConfig::standard(w));
    let (e8_recall, e8_sel) =
        mean_metrics(&s, &BiLevelConfig::standard(w).quantizer(Quantizer::E8));
    let zm_eff = zm_recall / zm_sel.max(1e-12);
    let e8_eff = e8_recall / e8_sel.max(1e-12);
    assert!(e8_eff > 0.5 * zm_eff, "E8 efficiency {e8_eff:.1} collapsed vs Z^M {zm_eff:.1}");
}
