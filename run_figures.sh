#!/bin/bash
# Reproduces every figure of the paper at container scale.
# Paper scale would be: --n 100000 --queries 100000 --k 500 --reps 10
set -u
cd /root/repo
ARGS="--n 6000 --queries 500 --k 25 --reps 3"
for fig in fig04_shortlist fig05_zm_standard_vs_bilevel fig06_e8_standard_vs_bilevel \
           fig07_zm_multiprobe fig08_e8_multiprobe fig09_zm_hierarchy fig10_e8_hierarchy \
           fig11_zm_all_methods fig12_e8_all_methods fig13a_groups fig13b_dims fig13c_partitioner \
           abl_split_rule abl_width_mode abl_diameter abl_batch abl_curse abl_lattice_density; do
  echo "=== $fig ==="
  timeout 1500 cargo run -q --release -p bench --bin $fig -- $ARGS --out results/$fig.csv \
    > results/$fig.md 2>&1 || echo "$fig FAILED/TIMEOUT"
  echo "done $fig"
done
echo ALL_FIGURES_DONE
